//! A genuinely heterogeneous multidirectional scenario — §2.1's remark
//! that "in general the n models may be of different nature": a class
//! model, a relational schema, and a documentation index kept consistent
//! by one trilateral specification.
//!
//! * every persistent class must have a table (bidirectional),
//! * everything that appears as a class *or* a table must be documented
//!   (source-union dependency `uml | rdb -> doc`),
//! * documentation entries marked `approved` must exist in *both*
//!   technical models (multi-source dependency `doc -> uml`, `doc -> rdb`).
//!
//! Run with: `cargo run --example multi_view`

use mmtf::prelude::*;

const UML: &str = r#"
metamodel UML { class Class { attr name: Str; attr persistent: Bool; } }
"#;

const RDB: &str = r#"
metamodel RDB { class Table { attr name: Str; } }
"#;

const DOC: &str = r#"
metamodel DOC { class Entry { attr topic: Str; attr approved: Bool; } }
"#;

const SPEC: &str = r#"
transformation Views(uml : UML, rdb : RDB, doc : DOC) {
  // Persistent classes ↔ tables (classic bidirectional pair).
  top relation ClassTable {
    n : Str;
    domain uml c : Class { name = n, persistent = true };
    domain rdb t : Table { name = n };
    depend uml -> rdb;
    depend rdb -> uml;
  }
  // Anything named in either technical model must be documented.
  top relation Documented {
    n : Str;
    domain uml c : Class { name = n };
    domain rdb t : Table { name = n };
    domain doc e : Entry { topic = n };
    depend uml | rdb -> doc;
  }
  // Approved documentation must describe something real in both models.
  top relation Approved {
    n : Str;
    domain doc e : Entry { topic = n, approved = true };
    domain uml c : Class { name = n };
    domain rdb t : Table { name = n };
    depend doc -> uml rdb;
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let uml_mm = parse_metamodel(UML)?;
    let rdb_mm = parse_metamodel(RDB)?;
    let doc_mm = parse_metamodel(DOC)?;
    let t = Transformation::from_sources(SPEC, &[UML, RDB, DOC])?;

    let uml = parse_model(
        r#"model uml : UML {
            person = Class { name = "Person", persistent = true }
            helper = Class { name = "Helper", persistent = false }
        }"#,
        &uml_mm,
    )?;
    let rdb = parse_model(
        r#"model rdb : RDB {
            person = Table { name = "Person" }
        }"#,
        &rdb_mm,
    )?;
    // Documentation misses Helper, and approves a stale `Order` entry.
    let doc = parse_model(
        r#"model doc : DOC {
            person = Entry { topic = "Person", approved = true }
            order  = Entry { topic = "Order", approved = true }
        }"#,
        &doc_mm,
    )?;
    let models = [uml, rdb, doc];

    println!("trilateral check:");
    let report = t.check(&models)?;
    println!("{report}\n");
    assert!(!report.consistent());

    // Repairing only the documentation cannot fix the approved-but-stale
    // `Order` entry's demand for a class AND a table … or can it? The doc
    // is a target, so the entry itself may be edited: dropping the
    // approval (or the entry) is a legal documentation-side repair.
    let out = t
        .enforce(&models, Shape::towards(2), EngineKind::Sat)?
        .expect("documentation repairable");
    println!(
        "→Views_DOC repaired the documentation at distance {}:",
        out.cost
    );
    println!("{}\n", out.deltas[2]);
    assert!(t.check(&out.models)?.consistent());

    // Alternatively, propagate the documentation's claims *into* the
    // technical models: Order must gain a class and a table
    // (the multi-target dependency doc -> uml rdb at work).
    let out2 = t
        .enforce(&models, Shape::of(&[0, 1]), EngineKind::Sat)?
        .expect("technical models repairable");
    println!(
        "→Views_UML×RDB instead grows both technical models (distance {}):",
        out2.cost
    );
    for (name, d) in ["uml", "rdb"].iter().zip(&out2.deltas) {
        if !d.is_empty() {
            println!("--- {name} ---\n{d}");
        }
    }
    assert!(t.check(&out2.models)?.consistent());

    println!("\nheterogeneous trilateral consistency: both repair shapes verified.");
    Ok(())
}
