//! The paper's running example end to end: a feature model, `k`
//! configurations, the `F = MF ∧ OF` specification, and all four §3
//! transformation shapes.
//!
//! Run with: `cargo run --example feature_model_sync`

use mmtf::gen::{feature_workload, inject, transformation_source, FeatureSpec, Injection};
use mmtf::prelude::*;

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 3;
    let t = Transformation::from_sources(
        &transformation_source(k),
        &[mmtf::gen::CF_METAMODEL, mmtf::gen::FM_METAMODEL],
    )?;
    let fm_idx = k; // models are cf1 … cfk, fm

    banner("a consistent product line");
    let base = feature_workload(FeatureSpec {
        n_features: 5,
        k_configs: k,
        mandatory_ratio: 0.4,
        select_prob: 0.5,
        seed: 2014,
    });
    println!("{}", t.check(&base.models)?);

    // ── Scenario A (§3): a new mandatory feature appears in FM. ──────
    banner("scenario A: new mandatory feature in FM");
    let mut w = feature_workload(base.spec.clone());
    println!("{}", inject(&mut w, Injection::NewMandatoryInFm));
    println!(
        "single-target →F¹_CF: {}",
        match t.enforce(&w.models, Shape::towards(0), EngineKind::Sat)? {
            Some(_) => "repaired (unexpected!)".into(),
            None => "cannot restore consistency — as §3 predicts".to_string(),
        }
    );
    let out = t
        .enforce(&w.models, Shape::of(&[0, 1, 2]), EngineKind::Sat)?
        .expect("→F_CFᵏ repairs");
    println!("multi-target →F_CFᵏ: repaired at distance {}", out.cost);
    assert!(t.check(&out.models)?.consistent());

    // ── Scenario B (§1): rename a feature in one configuration. ──────
    banner("scenario B: feature renamed in cf1");
    let mut w = feature_workload(base.spec.clone());
    println!(
        "{}",
        inject(&mut w, Injection::RenameInConfig { config: 0 })
    );
    let shape = Shape::all_but(0, k + 1); // →F¹_{FM×CFᵏ⁻¹}
    let out = t
        .enforce(&w.models, shape, EngineKind::Sat)?
        .expect("rename propagates");
    println!(
        "shape {shape} propagates the rename at distance {} ({} models touched)",
        out.cost,
        out.deltas.iter().filter(|d| !d.is_empty()).count()
    );
    assert!(t.check(&out.models)?.consistent());

    // ── Scenario C: a feature selected everywhere becomes mandatory. ─
    banner("scenario C: feature selected in every configuration");
    let mut w = feature_workload(base.spec.clone());
    println!("{}", inject(&mut w, Injection::SelectEverywhere));
    let out = t
        .enforce(&w.models, Shape::towards(fm_idx), EngineKind::Sat)?
        .expect("→F_FM repairs");
    println!("shape →F_FM repairs at distance {}:", out.cost);
    println!("  {}", out.deltas[fm_idx]);
    assert!(t.check(&out.models)?.consistent());

    // ── Scenario D: weighted tuple distance (§3 future work). ────────
    banner("scenario D: weighted distance steers the repair");
    let mut w = feature_workload(base.spec.clone());
    inject(&mut w, Injection::SelectUnknown { config: 1 });
    // All models may change, but FM edits cost 50×.
    let opts = RepairOptions {
        tuple: TupleCost::weighted(vec![1, 1, 1, 50]),
        max_cost: 60,
        ..RepairOptions::default()
    };
    let out = t
        .enforce_with(&w.models, Shape::all(k + 1), EngineKind::Sat, opts)?
        .expect("repairable");
    println!(
        "with FM weighted 50×, the repair edits {} and leaves FM {}",
        if out.deltas[1].is_empty() {
            "other models"
        } else {
            "cf2"
        },
        if out.deltas[fm_idx].is_empty() {
            "untouched"
        } else {
            "changed"
        }
    );
    assert!(out.deltas[fm_idx].is_empty());
    assert!(t.check(&out.models)?.consistent());

    println!("\nall scenarios behaved exactly as the paper predicts.");
    Ok(())
}
