//! Co-evolution (§4 future work): a product line evolving over several
//! steps, with the framework repairing after every update — alternating
//! repair shapes depending on where the update landed.
//!
//! Run with: `cargo run --example co_evolution`

use mmtf::gen::{feature_workload, transformation_source, FeatureSpec};
use mmtf::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 2;
    let t = Transformation::from_sources(
        &transformation_source(k),
        &[mmtf::gen::CF_METAMODEL, mmtf::gen::FM_METAMODEL],
    )?;
    let w = feature_workload(FeatureSpec {
        n_features: 4,
        k_configs: k,
        mandatory_ratio: 0.5,
        select_prob: 0.5,
        seed: 7,
    });
    let mut models = w.models.clone();
    let fm_idx = k;
    let feature_fm = w.fm.class_named("Feature").expect("static");
    let feature_cf = w.cf.class_named("Feature").expect("static");

    println!(
        "step 0: baseline is consistent: {}",
        t.check(&models)?.consistent()
    );

    // Evolution step 1: the product manager adds a mandatory `telemetry`
    // feature to the feature model.
    let id = models[fm_idx].add(feature_fm)?;
    models[fm_idx].set_attr_named(id, "name", Value::str("telemetry"))?;
    models[fm_idx].set_attr_named(id, "mandatory", Value::Bool(true))?;
    println!("\nstep 1: FM gains mandatory `telemetry`");
    let out = t
        .enforce(&models, Shape::of(&[0, 1]), EngineKind::Sat)?
        .expect("→F_CFᵏ repairs");
    println!("  repaired configurations at distance {}", out.cost);
    models = out.models;
    assert!(t.check(&models)?.consistent());

    // Evolution step 2: a customer selects a brand-new `beta` feature in
    // configuration 1 that the feature model does not know yet.
    let id = models[0].add(feature_cf)?;
    models[0].set_attr_named(id, "name", Value::str("beta"))?;
    println!("\nstep 2: cf1 selects unknown `beta`");
    let out = t
        .enforce(&models, Shape::towards(fm_idx), EngineKind::Sat)?
        .expect("→F_FM repairs");
    println!("  feature model co-evolved at distance {}:", out.cost);
    println!("  {}", out.deltas[fm_idx]);
    models = out.models;
    assert!(t.check(&models)?.consistent());

    // Evolution step 3: both configurations end up selecting `beta`;
    // MF forces it to become mandatory.
    let id = models[1].add(feature_cf)?;
    models[1].set_attr_named(id, "name", Value::str("beta"))?;
    println!("\nstep 3: cf2 also selects `beta` — it must become mandatory");
    let out = t
        .enforce(&models, Shape::towards(fm_idx), EngineKind::Sat)?
        .expect("→F_FM repairs");
    println!("  {}", out.deltas[fm_idx]);
    models = out.models;
    let report = t.check(&models)?;
    assert!(report.consistent());

    println!("\nfinal feature model:\n{}", print_model(&models[fm_idx]));
    println!("three co-evolution rounds, consistency restored after each.");
    Ok(())
}
