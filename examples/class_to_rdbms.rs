//! The classic QVT-R case study — object-oriented class models vs.
//! relational schemas — as a *bidirectional* transformation, showing that
//! the framework is conservative over the standard two-model scenario
//! (§2.2) and that nested template patterns work across containment.
//!
//! Run with: `cargo run --example class_to_rdbms`

use mmtf::prelude::*;

const UML: &str = r#"
metamodel UML {
  class Package { attr name: Str; ref classes: Class [0..*] containment; }
  class Class { attr name: Str; attr persistent: Bool; ref attrs: Attribute [0..*] containment; }
  class Attribute { attr name: Str; }
}
"#;

const RDB: &str = r#"
metamodel RDB {
  class Schema { attr name: Str; ref tables: Table [0..*] containment; }
  class Table { attr name: Str; ref cols: Column [0..*] containment; }
  class Column { attr name: Str; }
}
"#;

/// Persistent classes correspond to tables; their attributes to columns.
/// No `depend` clauses: the standard bidirectional semantics applies
/// (conservativity, §2.2).
const C2T: &str = r#"
transformation C2T(uml : UML, rdb : RDB) {
  top relation ClassToTable {
    cn : Str;
    domain uml c : Class { name = cn, persistent = true };
    domain rdb t : Table { name = cn };
  }
  top relation AttrToColumn {
    cn, an : Str;
    domain uml c : Class { name = cn, persistent = true, attrs = a : Attribute { name = an } };
    domain rdb t : Table { name = cn, cols = col : Column { name = an } };
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let uml_mm = parse_metamodel(UML)?;
    let rdb_mm = parse_metamodel(RDB)?;
    let t = Transformation::from_sources(C2T, &[UML, RDB])?;

    let uml = parse_model(
        r#"model uml : UML {
            id   = Attribute { name = "id" }
            mail = Attribute { name = "email" }
            person = Class { name = "Person", persistent = true, attrs = [id, mail] }
            tmp = Class { name = "Scratch", persistent = false }
            pkg = Package { name = "app", classes = [person, tmp] }
        }"#,
        &uml_mm,
    )?;
    // The schema misses Person.email and has a stale table.
    let rdb = parse_model(
        r#"model rdb : RDB {
            cid = Column { name = "id" }
            person = Table { name = "Person", cols = [cid] }
            legacy = Table { name = "Legacy" }
            schema = Schema { name = "app", tables = [person, legacy] }
        }"#,
        &rdb_mm,
    )?;
    let models = [uml, rdb];

    println!("checking the class model against the schema:");
    let report = t.check(&models)?;
    println!("{report}\n");
    assert!(!report.consistent());

    // Forward direction: repair the schema (the classic uml→rdb run).
    let out = t
        .enforce(&models, Shape::towards(1), EngineKind::Sat)?
        .expect("schema repairable");
    println!("→C2T_RDB repaired the schema at distance {}:", out.cost);
    println!("{}\n", out.deltas[1]);
    assert!(t.check(&out.models)?.consistent());
    println!("repaired schema:\n{}", print_model(&out.models[1]));

    // Backward direction: instead repair the class model to match the
    // schema (bidirectionality for free).
    let back = t
        .enforce(&models, Shape::towards(0), EngineKind::Sat)?
        .expect("class model repairable");
    println!(
        "←C2T_UML repaired the class model at distance {}:",
        back.cost
    );
    println!("{}", back.deltas[0]);
    assert!(t.check(&back.models)?.consistent());

    // Conservativity: attaching the standard dependency set explicitly
    // changes nothing for this bidirectional specification.
    let std_t = t.standardized();
    assert_eq!(
        std_t.check(&models)?.consistent(),
        t.check(&models)?.consistent()
    );
    println!("\nstandardized semantics agrees (conservativity, §2.2).");
    Ok(())
}
