//! Quickstart: define metamodels, models and a multidirectional
//! transformation in text, check consistency, and repair.
//!
//! Run with: `cargo run --example quickstart`

use mmtf::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Metamodels (Figure 1 of the paper).
    let cf_mm = parse_metamodel("metamodel CF { class Feature { attr name: Str; } }")?;
    let fm_mm = parse_metamodel(
        "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }",
    )?;

    // 2. The MF relation with the paper's §2.2 checking dependencies.
    let t = Transformation::from_sources(
        r#"
        transformation F(cf1 : CF, cf2 : CF, fm : FM) {
          top relation MF {
            n : Str;
            domain cf1 s1 : Feature { name = n };
            domain cf2 s2 : Feature { name = n };
            domain fm  f  : Feature { name = n, mandatory = true };
            depend cf1 cf2 -> fm;
            depend fm -> cf1 cf2;
          }
        }"#,
        &[
            "metamodel CF { class Feature { attr name: Str; } }",
            "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }",
        ],
    )?;

    // 3. Three models: two configurations and a feature model that
    //    demands `engine` everywhere — but cf2 misses it.
    let cf1 = parse_model(
        r#"model cf1 : CF { f = Feature { name = "engine" } }"#,
        &cf_mm,
    )?;
    let cf2 = parse_model(r#"model cf2 : CF { }"#, &cf_mm)?;
    let fm = parse_model(
        r#"model fm : FM { f = Feature { name = "engine", mandatory = true } }"#,
        &fm_mm,
    )?;
    let models = [cf1, cf2, fm];

    // 4. Check: the FM → CF2 direction is violated.
    let report = t.check(&models)?;
    println!("before repair:\n{report}\n");
    assert!(!report.consistent());

    // 5. Repair towards cf2 (the shape →F²_CF) with the SAT engine.
    let out = t
        .enforce(&models, Shape::towards(1), EngineKind::Sat)?
        .expect("repairable");
    println!("repaired at distance {} — edits:", out.cost);
    for (name, delta) in ["cf1", "cf2", "fm"].iter().zip(&out.deltas) {
        if !delta.is_empty() {
            println!("  {name}: {delta}");
        }
    }
    println!("\nafter repair:\n{}", t.check(&out.models)?);
    assert!(t.check(&out.models)?.consistent());
    println!("\nrepaired cf2:\n{}", print_model(&out.models[1]));
    Ok(())
}
