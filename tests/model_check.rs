//! Exhaustive interleaving exploration of the sync stack (ISSUE 10).
//!
//! Compiled only under `--features model-check`, which swaps the hub's,
//! interner's, and fan-out's primitives for loomlite's instrumented ones
//! (see the `mmt_sync` shim modules).  Each test explores *every* schedule
//! reachable with the default preemption bound and asserts an invariant in
//! all of them; `seeded_*` tests plant a known bug in a local replica of the
//! pattern and assert the checker reports it (failing-before evidence that
//! the exploration has teeth).
//!
//! Run with `cargo test --features model-check --test model_check --
//! --nocapture` to see per-test interleaving counts.
#![cfg(feature = "model-check")]

use std::sync::Arc;

use loomlite::sync::atomic::{AtomicUsize, Ordering};
use loomlite::sync::{Mutex, RwLock};
use loomlite::thread;
use mmtf::core::{HubError, SyncHub, Transformation};
use mmtf::gen::{feature_workload, FeatureSpec, SessionScriptGen, SessionStep};
use mmtf::model::{Model, Sym};
use mmtf::prelude::{DomIdx, DomSet};

/// Tiny shared fixture, built *outside* the model closures so parsing and
/// interning (hundreds of uninteresting lock ops) stay off-model.
fn fixture() -> (Arc<Transformation>, Arc<Vec<Model>>) {
    let t = Transformation::from_sources(
        &mmtf::gen::transformation_source(2),
        &[mmtf::gen::CF_METAMODEL, mmtf::gen::FM_METAMODEL],
    )
    .expect("fixture spec parses");
    let w = feature_workload(FeatureSpec {
        n_features: 2,
        ..FeatureSpec::default()
    });
    (Arc::new(t), Arc::new(w.models))
}

#[test]
fn racing_opens_resolve_to_one_winner() {
    let (t, models) = fixture();
    let iters = loomlite::explore(move || {
        let hub = Arc::new(SyncHub::new());
        hub.register("t", Arc::clone(&t)).expect("fresh registry");
        let mut handles = Vec::new();
        for _ in 0..2 {
            let hub = Arc::clone(&hub);
            let models = Arc::clone(&models);
            handles.push(thread::spawn(move || hub.open("s", "t", &models).is_ok()));
        }
        let wins: Vec<bool> = handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect();
        if wins.iter().filter(|&&w| w).count() != 1 {
            loomlite::fail("racing opens must produce exactly one winner");
        }
        if hub.len() != 1 {
            loomlite::fail("exactly one session registered after the race");
        }
    });
    println!("racing_opens_resolve_to_one_winner: {iters} interleavings");
}

#[test]
fn close_while_with_keeps_the_session_usable() {
    let (t, models) = fixture();
    let iters = loomlite::explore(move || {
        let hub = Arc::new(SyncHub::new());
        hub.register("t", Arc::clone(&t)).expect("fresh registry");
        let handle = hub.open("s", "t", &models).expect("open");
        let reference = handle.with(|s| s.fingerprint());
        let hub2 = Arc::clone(&hub);
        let closer = thread::spawn(move || hub2.close("s").is_ok());
        // The client keeps using its handle while the hub drops the slot.
        let fp = handle.with(|s| s.fingerprint());
        let closed = closer.join().expect("no panics");
        if !closed {
            loomlite::fail("close must find the open session");
        }
        if fp != reference {
            loomlite::fail("session state corrupted by a concurrent close");
        }
        if hub.get("s").is_ok() {
            loomlite::fail("closed session still resolvable by name");
        }
    });
    println!("close_while_with_keeps_the_session_usable: {iters} interleavings");
}

#[test]
fn lint_report_is_never_visible_before_its_transformation() {
    let (t, _) = fixture();
    let iters = loomlite::explore(move || {
        let hub = Arc::new(SyncHub::new());
        let hub2 = Arc::clone(&hub);
        let t2 = Arc::clone(&t);
        let writer = thread::spawn(move || {
            hub2.register("t", t2).expect("fresh registry");
        });
        // register() fills two registries under separate write locks
        // (transformations first, then lint_reports).  A reader in the gap
        // may see the transformation without its report — but never the
        // report without the transformation.
        let report_seen = hub.lint_report("t").is_ok();
        let t_seen = hub.transformation("t").is_ok();
        if report_seen && !t_seen {
            loomlite::fail("lint report visible before its transformation");
        }
        writer.join().expect("no panics");
        if hub.lint_report("t").is_err() || hub.transformation("t").is_err() {
            loomlite::fail("registration must be complete after join");
        }
    });
    println!("lint_report_is_never_visible_before_its_transformation: {iters} interleavings");
}

#[test]
fn snapshot_enumeration_vs_live_edit_sees_consistent_states() {
    let (t, models) = fixture();
    let iters = loomlite::explore(move || {
        let hub = Arc::new(SyncHub::new());
        hub.register("t", Arc::clone(&t)).expect("fresh registry");
        let handle = hub.open("s", "t", &models).expect("open");
        let before = handle.with(|s| s.fingerprint());
        let editor_handle = Arc::clone(&handle);
        let editor = thread::spawn(move || {
            editor_handle.with(|s| {
                let targets = DomSet::from_iter([DomIdx(0), DomIdx(1)]);
                let mut gen = SessionScriptGen::new(targets, 3, 42);
                loop {
                    match gen.next_step(s.models()) {
                        SessionStep::Edit { model, op } => {
                            s.apply(model, op).expect("edit applies");
                            break;
                        }
                        SessionStep::Repair { .. } => continue,
                    }
                }
                s.fingerprint()
            })
        });
        // The persist walk: enumerate handles, lock each, read state.
        let mut snapshot = Vec::new();
        for h in hub.sessions() {
            snapshot.push(h.with(|s| s.fingerprint()));
        }
        let after = editor.join().expect("no panics");
        // Each snapshotted fingerprint is the pre- or post-edit state,
        // never a torn intermediate.
        for fp in snapshot {
            if fp != before && fp != after {
                loomlite::fail("snapshot observed a torn session state");
            }
        }
    });
    println!("snapshot_enumeration_vs_live_edit_sees_consistent_states: {iters} interleavings");
}

#[test]
fn snapshot_enumeration_vs_concurrent_open() {
    let (t, models) = fixture();
    let iters = loomlite::explore(move || {
        let hub = Arc::new(SyncHub::new());
        hub.register("t", Arc::clone(&t)).expect("fresh registry");
        hub.open("s1", "t", &models).expect("open s1");
        let hub2 = Arc::clone(&hub);
        let models2 = Arc::clone(&models);
        let opener = thread::spawn(move || {
            hub2.open("s2", "t", &models2).expect("open s2");
        });
        // Restore/persist-shaped walk racing the open: the walk must see a
        // clean prefix of the registry (1 or 2 sessions), lock each handle
        // without deadlock, and never observe a half-inserted slot.
        let seen = hub.sessions();
        if seen.is_empty() || seen.len() > 2 {
            loomlite::fail("enumeration saw an impossible session count");
        }
        for h in &seen {
            let _ = h.with(|s| s.fingerprint());
        }
        opener.join().expect("no panics");
        if hub.len() != 2 {
            loomlite::fail("both sessions must exist after join");
        }
    });
    println!("snapshot_enumeration_vs_concurrent_open: {iters} interleavings");
}

#[test]
fn pooled_map_fan_out_fills_every_slot_in_order() {
    let iters = loomlite::explore(|| {
        let items = [10usize, 20, 30];
        let out = mmtf::enforce::pooled_map_modeled(&items, 2, |i, &x| (i, x * 2));
        if out != vec![(0, 20), (1, 40), (2, 60)] {
            loomlite::fail("fan-out lost or reordered a slot write");
        }
    });
    println!("pooled_map_fan_out_fills_every_slot_in_order: {iters} interleavings");
}

#[test]
fn interner_races_yield_one_symbol_per_string() {
    let iters = loomlite::explore(|| {
        let mut handles = Vec::new();
        for _ in 0..2 {
            handles.push(thread::spawn(|| Sym::new("model-check-race-probe")));
        }
        let syms: Vec<Sym> = handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect();
        if syms[0] != syms[1] {
            loomlite::fail("racing interns of one string produced distinct symbols");
        }
        if Sym::new("model-check-race-probe") != syms[0] {
            loomlite::fail("later intern disagrees with the raced winner");
        }
    });
    println!("interner_races_yield_one_symbol_per_string: {iters} interleavings");
}

// ---------------------------------------------------------------------------
// Seeded-bug selftests: plant the bug the discipline forbids in a local
// replica of the hub pattern and assert the checker *reports* it.  These are
// the failing-before tests: delete the discipline and this is what the
// model checker would say about the real hub.
// ---------------------------------------------------------------------------

/// A hub replica with the lock-order inversion LC1 forbids: `close` takes
/// the registry write lock and *then* the session mutex, while clients take
/// the session mutex and then the registry read lock.
struct BuggyHub {
    registry: RwLock<Vec<&'static str>>,
    session: Mutex<u32>,
}

#[test]
fn seeded_lock_order_inversion_is_caught() {
    let res = loomlite::check(|| {
        let hub = Arc::new(BuggyHub {
            registry: RwLock::new(vec!["s"]),
            session: Mutex::new(0),
        });
        let hub2 = Arc::clone(&hub);
        let closer = thread::spawn(move || {
            // BUG: registry write guard spans the session lock (LC1/LC2).
            let mut reg = hub2.registry.write().expect("registry");
            let mut s = hub2.session.lock().expect("session");
            *s += 1;
            reg.pop();
        });
        {
            // Client order: session first, then registry — the inversion.
            let s = hub.session.lock().expect("session");
            let reg = hub.registry.read().expect("registry");
            let _ = (*s, reg.len());
        }
        closer.join().expect("no panics");
    });
    let msg = res.expect_err("the seeded inversion must deadlock some schedule");
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn seeded_lost_violation_count_is_caught() {
    // The S1 regression fix keeps per-check violation counters; this is the
    // buggy version of that bookkeeping (unsynchronised read-modify-write).
    // The checker must find the schedule where one increment is lost.
    let res = loomlite::check(|| {
        let violations = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let v = Arc::clone(&violations);
            handles.push(thread::spawn(move || {
                let seen = v.load(Ordering::SeqCst);
                v.store(seen + 1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        if violations.load(Ordering::SeqCst) != 2 {
            loomlite::fail("violation count lost an update");
        }
    });
    let msg = res.expect_err("the seeded lost update must be found");
    assert!(msg.contains("lost an update"), "unexpected failure: {msg}");
}

/// Duplicate-session errors must come out of the race loser, exercised via
/// the typed error (not just `is_ok`), pinning the public contract.
#[test]
fn race_loser_gets_duplicate_session_error() {
    let (t, models) = fixture();
    let iters = loomlite::explore(move || {
        let hub = Arc::new(SyncHub::new());
        hub.register("t", Arc::clone(&t)).expect("fresh registry");
        let hub2 = Arc::clone(&hub);
        let models2 = Arc::clone(&models);
        let racer = thread::spawn(move || hub2.open("s", "t", &models2));
        let mine = hub.open("s", "t", &models);
        let theirs = racer.join().expect("no panics");
        match (&mine, &theirs) {
            (Ok(_), Err(HubError::DuplicateSession(name)))
            | (Err(HubError::DuplicateSession(name)), Ok(_)) => {
                if name != "s" {
                    loomlite::fail("duplicate-session error names the wrong session");
                }
            }
            _ => loomlite::fail("expected exactly one winner and one DuplicateSession"),
        }
    });
    println!("race_loser_gets_duplicate_session_error: {iters} interleavings");
}
