//! ISSUE 8: the shipped corpus is lint-clean of errors.
//!
//! Every spec under `examples/data/` and every [`Scenario`] spec runs
//! through the static-analysis pass. None may carry error findings
//! (registration would reject them); the known warning findings are
//! asserted exactly so a lint regression — new noise or a silently
//! vanished analysis — fails here first.

use mmtf::gen::scenario::all_scenarios;
use mmtf::lint::{lint, LintCode, LintOptions, LintReport};
use mmtf::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn data_file(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("examples/data");
    p.push(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn lint_data_spec(spec: &str, mms: &[&str]) -> LintReport {
    let metamodels: Vec<Arc<Metamodel>> = mms
        .iter()
        .map(|m| parse_metamodel(&data_file(m)).expect("shipped metamodel parses"))
        .collect();
    let hir = parse_and_resolve(&data_file(spec), &metamodels).expect("shipped spec resolves");
    lint(&hir, &LintOptions::default())
}

fn codes(report: &LintReport) -> Vec<&'static str> {
    report.lints.iter().map(|l| l.code.code()).collect()
}

/// No shipped example spec has lint errors — they all register.
#[test]
fn example_specs_have_no_errors() {
    for (spec, mms) in [
        ("F.qvtr", &["CF.mm", "FM.mm"][..]),
        ("W2C.qvtr", &["World.mm", "Company.mm"][..]),
        ("C2T.qvtr", &["UML.mm", "RDB.mm"][..]),
    ] {
        let report = lint_data_spec(spec, mms);
        assert_eq!(
            report.errors(),
            0,
            "{spec} has lint errors:\n{}",
            report.render_text()
        );
    }
}

/// No scenario spec has lint errors (the corpus stays registrable).
#[test]
fn scenario_specs_have_no_errors() {
    for s in all_scenarios() {
        let w = s.workload(0);
        let report = lint(&w.hir, &LintOptions::default());
        assert_eq!(
            report.errors(),
            0,
            "scenario {} has lint errors:\n{}",
            s.name(),
            report.render_text()
        );
    }
}

/// The ISSUE 8 acceptance findings: class2rdbms trips the grounding-
/// blowup estimate (its nested attribute templates are exactly the
/// exponential-slack case the paper's prototype chokes on), and the
/// multi-relation scenarios carry real repair-conflict pairs.
#[test]
fn known_findings_are_reported() {
    let c2r = all_scenarios()
        .into_iter()
        .find(|s| s.name() == "class2rdbms")
        .expect("class2rdbms scenario exists");
    let report = lint(&c2r.workload(0).hir, &LintOptions::default());
    let found = codes(&report);
    assert!(
        found.contains(&"MMT020"),
        "class2rdbms must trip the grounding-cost lint:\n{}",
        report.render_text()
    );
    assert!(
        found.contains(&"MMT010"),
        "class2rdbms must report a repair-conflict pair:\n{}",
        report.render_text()
    );

    // The paper's own feature-model spec: MF and OF both write the
    // feature model, so repairing one can dirty the other.
    let fm2cfs = all_scenarios()
        .into_iter()
        .find(|s| s.name() == "fm2cfs")
        .expect("fm2cfs scenario exists");
    let report = lint(&fm2cfs.workload(0).hir, &LintOptions::default());
    assert!(
        codes(&report).contains(&"MMT010"),
        "fm2cfs must report a repair-conflict pair:\n{}",
        report.render_text()
    );
}

/// Pinning: the corpus' intentional findings are all warnings or infos,
/// so allowing the three expected codes leaves every report clean. This
/// is the `--allow` workflow a CI gate would use.
#[test]
fn corpus_is_clean_under_pinned_allows() {
    let opts = LintOptions {
        allow: vec![
            LintCode::RepairConflict,
            LintCode::BidirectionalCoupling,
            LintCode::GroundingBlowup,
        ],
    };
    for s in all_scenarios() {
        let report = lint(&s.workload(0).hir, &opts);
        assert!(
            report.is_clean(),
            "scenario {} has findings beyond the pinned set:\n{}",
            s.name(),
            report.render_text()
        );
    }
    for (spec, mms) in [
        ("F.qvtr", &["CF.mm", "FM.mm"][..]),
        ("W2C.qvtr", &["World.mm", "Company.mm"][..]),
        ("C2T.qvtr", &["UML.mm", "RDB.mm"][..]),
    ] {
        let metamodels: Vec<Arc<Metamodel>> = mms
            .iter()
            .map(|m| parse_metamodel(&data_file(m)).unwrap())
            .collect();
        let hir = parse_and_resolve(&data_file(spec), &metamodels).unwrap();
        let report = lint(&hir, &opts);
        assert!(
            report.is_clean(),
            "{spec} has findings beyond the pinned set:\n{}",
            report.render_text()
        );
    }
}
