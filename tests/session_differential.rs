//! Differential and journal property testing of the stateful session
//! layer (ISSUE 4):
//!
//! * **warmth** — [`SyncSession::repair`] must be byte-identical (cost +
//!   printed models + rendered deltas) to the stateless
//!   [`Transformation::enforce_with`] on the same tuple, under both
//!   search oracles and the SAT engine, with `jobs ∈ {1, 2}`;
//! * **journal replay** — replaying [`SyncSession::journal_script`]
//!   over the seed tuple reproduces the live tuple byte for byte, and
//!   `rollback_all` restores the seed exactly (via `Delta::inverse`);
//! * **fingerprint** — the incrementally maintained session fingerprint
//!   equals a from-scratch [`state_fingerprint`] at every step.

use mmtf::core::{SessionOptions, Shape, Transformation};
use mmtf::dist::Delta;
use mmtf::enforce::search::state_fingerprint;
use mmtf::enforce::RepairOptions;
use mmtf::gen::scenario::scenario_named;
use mmtf::gen::{feature_workload, FeatureSpec, SessionScriptGen, SessionStep};
use mmtf::model::text::print_model;
use mmtf::model::Model;
use mmtf::prelude::{DomSet, EngineKind};

fn fixture(seed: u64) -> (Transformation, Vec<Model>) {
    let w = feature_workload(FeatureSpec {
        n_features: 5,
        k_configs: 2,
        mandatory_ratio: 0.4,
        select_prob: 0.4,
        seed,
    });
    let t = Transformation::from_sources(
        &mmtf::gen::transformation_source(2),
        &[mmtf::gen::CF_METAMODEL, mmtf::gen::FM_METAMODEL],
    )
    .unwrap();
    (t, w.models)
}

fn prints(models: &[Model]) -> Vec<String> {
    models.iter().map(print_model).collect()
}

fn deltas_text(deltas: &[Delta]) -> Vec<String> {
    deltas.iter().map(|d| d.to_string()).collect()
}

/// Drives one session + one stateless mirror through a generated
/// script, asserting warm ≡ cold at every repair checkpoint.
fn assert_session_matches_stateless(
    engine: EngineKind,
    incremental_oracle: bool,
    jobs: usize,
    seed: u64,
) {
    let (t, seed_models) = fixture(seed);
    let targets = DomSet::from_iter([mmtf::deps::DomIdx(0), mmtf::deps::DomIdx(1)]);
    assert_session_matches_stateless_on(
        &t,
        &seed_models,
        targets,
        engine,
        incremental_oracle,
        jobs,
        seed,
    );
}

/// The scenario-generic core of the warmth differential: any
/// transformation, any seed tuple, any repair-target set.
fn assert_session_matches_stateless_on(
    t: &Transformation,
    seed_models: &[Model],
    targets: DomSet,
    engine: EngineKind,
    incremental_oracle: bool,
    jobs: usize,
    seed: u64,
) {
    let repair = RepairOptions {
        incremental_oracle,
        jobs,
        ..RepairOptions::default()
    };
    let opts = SessionOptions {
        engine,
        repair: repair.clone(),
    };
    let mut session = t.session_with(seed_models, opts).unwrap();
    let mut stateless: Vec<Model> = seed_models.to_vec();
    let mut gen = SessionScriptGen::new(targets, 3, seed.wrapping_mul(31).wrapping_add(7));
    let full = DomSet::full(t.arity());
    let ctx = |step: usize| {
        format!("engine={engine:?} incremental={incremental_oracle} jobs={jobs} seed={seed} step={step}")
    };
    for step_no in 0..18 {
        match gen.next_step(session.models()) {
            SessionStep::Edit { model, op } => {
                session.apply(model, op).unwrap();
                let mut d = Delta::new();
                d.push(op);
                d.apply(&mut stateless[model.index()]).unwrap();
            }
            SessionStep::Repair { targets } => {
                let shape = Shape::from_targets(targets);
                let warm = session.repair(shape);
                let cold = t.enforce_with(&stateless, shape, engine, repair.clone());
                match (warm, cold) {
                    (Ok(None), Ok(None)) => {}
                    (Ok(Some(w)), Ok(Some(c))) => {
                        assert_eq!(w.cost, c.cost, "{}", ctx(step_no));
                        assert_eq!(
                            deltas_text(&w.deltas),
                            deltas_text(&c.deltas),
                            "{}",
                            ctx(step_no)
                        );
                        assert_eq!(
                            prints(session.models()),
                            prints(&c.models),
                            "{}",
                            ctx(step_no)
                        );
                        stateless = c.models;
                    }
                    (Err(w), Err(c)) => {
                        assert_eq!(w.to_string(), c.to_string(), "{}", ctx(step_no));
                    }
                    (w, c) => panic!(
                        "{}: warm and cold disagree: warm={:?} cold={:?}",
                        ctx(step_no),
                        w.map(|o| o.map(|r| r.cost)),
                        c.map(|o| o.map(|r| r.cost)),
                    ),
                }
            }
        }
        // The mirror stayed in lockstep and the fingerprint is exact.
        assert_eq!(
            prints(session.models()),
            prints(&stateless),
            "{}",
            ctx(step_no)
        );
        assert_eq!(
            session.fingerprint(),
            state_fingerprint(session.models(), full),
            "{}",
            ctx(step_no)
        );
    }
}

/// The warmth differential, full matrix: both search oracles and the
/// SAT engine, jobs ∈ {1, 2}.
#[test]
fn warm_repair_is_byte_identical_to_stateless_enforce() {
    for seed in [1u64, 2, 3] {
        for jobs in [1usize, 2] {
            assert_session_matches_stateless(EngineKind::Search, true, jobs, seed);
            assert_session_matches_stateless(EngineKind::Search, false, jobs, seed);
            assert_session_matches_stateless(EngineKind::Sat, true, jobs, seed);
        }
    }
}

/// More seeds on the hot configuration (warm incremental search).
#[test]
fn warm_incremental_search_over_more_seeds() {
    for seed in [4u64, 5, 6, 7, 8] {
        assert_session_matches_stateless(EngineKind::Search, true, 1, seed);
    }
}

/// The scenario sweep: warm ≡ cold byte-identity over one named
/// corpus scenario, under both search oracles and the SAT engine.
fn scenario_sweep(name: &str) {
    let sc = scenario_named(name).expect("known scenario");
    for seed in [1u64, 2] {
        let w = sc.workload(seed);
        let t = Transformation::from_hir(w.hir.clone());
        let targets = sc.repair_targets();
        assert_session_matches_stateless_on(
            &t,
            &w.models,
            targets,
            EngineKind::Search,
            true,
            1,
            seed,
        );
        assert_session_matches_stateless_on(
            &t,
            &w.models,
            targets,
            EngineKind::Search,
            false,
            1,
            seed,
        );
    }
    // One SAT pass per scenario (grounding is the expensive path).
    let w = sc.workload(1);
    let t = Transformation::from_hir(w.hir.clone());
    assert_session_matches_stateless_on(
        &t,
        &w.models,
        sc.repair_targets(),
        EngineKind::Sat,
        true,
        1,
        1,
    );
}

#[test]
fn scenario_fm2cfs_warm_equals_cold() {
    scenario_sweep("fm2cfs");
}

#[test]
fn scenario_company_warm_equals_cold() {
    scenario_sweep("company");
}

#[test]
fn scenario_class2rdbms_warm_equals_cold() {
    scenario_sweep("class2rdbms");
}

/// Journal replay + rollback: over random scripts with repair
/// checkpoints, the journal reproduces the live tuple byte for byte
/// from the seed, and rolling everything back restores the seed.
#[test]
fn journal_replays_and_rolls_back_exactly() {
    for seed in [11u64, 12, 13, 14] {
        let (t, seed_models) = fixture(seed);
        let mut session = t.session(&seed_models).unwrap();
        let targets = DomSet::from_iter([mmtf::deps::DomIdx(0), mmtf::deps::DomIdx(1)]);
        let mut gen = SessionScriptGen::new(targets, 4, seed);
        for _ in 0..20 {
            match gen.next_step(session.models()) {
                SessionStep::Edit { model, op } => {
                    session.apply(model, op).unwrap();
                }
                SessionStep::Repair { targets } => {
                    // May be unrepairable within bounds; both outcomes
                    // are fine for the replay property.
                    let _ = session.repair(Shape::from_targets(targets)).unwrap();
                }
            }
        }
        // Replay the journal over a copy of the seed tuple.
        let script = session.journal_script();
        let mut replayed = seed_models.clone();
        for (m, delta) in replayed.iter_mut().zip(&script) {
            delta.apply(m).unwrap();
        }
        for (i, (r, live)) in replayed.iter().zip(session.models()).enumerate() {
            assert_eq!(print_model(r), print_model(live), "seed={seed} model {i}");
            assert_eq!(r.id_bound(), live.id_bound(), "seed={seed} model {i}");
            assert!(r.graph_eq(live), "seed={seed} model {i}");
        }
        // Roll everything back: the seed object graphs return.
        let entries = session.journal().len();
        assert_eq!(session.rollback_all().unwrap(), entries);
        assert!(session.journal().is_empty());
        for (i, (orig, live)) in seed_models.iter().zip(session.models()).enumerate() {
            assert_eq!(
                print_model(orig),
                print_model(live),
                "seed={seed} model {i}"
            );
            assert!(orig.graph_eq(live), "seed={seed} model {i}");
        }
        assert!(session.status().consistent, "seed={seed}");
    }
}

/// `repair_batch_warm` over forked session checkers matches per-root
/// `repair_warm` and the stateless batch, at 1 and 2 workers.
#[test]
fn warm_batch_matches_stateless_batch() {
    use mmtf::enforce::{RepairEngine, SearchEngine};
    let (t, seed_models) = fixture(21);
    let targets = DomSet::from_iter([mmtf::deps::DomIdx(0), mmtf::deps::DomIdx(1)]);
    // Build several drifted sessions (different edit prefixes).
    let mut roots = Vec::new();
    let mut tuples = Vec::new();
    for seed in [31u64, 32, 33, 34] {
        let mut session = t.session(&seed_models).unwrap();
        let mut gen = SessionScriptGen::new(targets, 0, seed);
        for _ in 0..3 {
            if let SessionStep::Edit { model, op } = gen.next_step(session.models()) {
                session.apply(model, op).unwrap();
            }
        }
        tuples.push(session.models().to_vec());
        roots.push((session.checker().fork(), targets));
    }
    for jobs in [1usize, 2] {
        let engine = SearchEngine::new(RepairOptions {
            jobs,
            ..RepairOptions::default()
        });
        let warm = engine.repair_batch_warm(&roots);
        for (i, (out, tuple)) in warm.iter().zip(&tuples).enumerate() {
            let cold = engine.repair(t.hir_arc(), tuple, targets);
            match (out, &cold) {
                (Ok(None), Ok(None)) => {}
                (Ok(Some(w)), Ok(Some(c))) => {
                    assert_eq!(w.cost, c.cost, "jobs={jobs} root {i}");
                    assert_eq!(prints(&w.models), prints(&c.models), "jobs={jobs} root {i}");
                    assert_eq!(
                        deltas_text(&w.deltas),
                        deltas_text(&c.deltas),
                        "jobs={jobs} root {i}"
                    );
                }
                (w, c) => panic!("jobs={jobs} root {i}: {w:?} vs {c:?}"),
            }
        }
    }
}
