//! Scale differential smoke tests: the incremental structures stay
//! exactly equivalent to their from-scratch counterparts at model sizes
//! two orders of magnitude beyond the unit-test workloads (≥10⁴
//! objects, seeded edit scripts).
//!
//! These are release-only (`#[cfg_attr(debug_assertions, ignore)]`):
//! debug builds already differential-test the same properties at small
//! sizes (`delta_differential.rs`, plus the checker's internal
//! `assert_counters`), and a 10⁵-object full evaluation in an
//! unoptimized build would dominate the tier-1 suite. CI runs them in
//! the release scale-smoke step.

use mmtf::check::{CheckOptions, Checker, DeltaChecker, ModelIndex};
use mmtf::deps::DomIdx;
use mmtf::dist::{Delta, EditOp};
use mmtf::gen::{feature_workload, random_edits, FeatureSpec};
use mmtf::model::{ClassId, Model};
use mmtf::qvtr::Hir;
use std::collections::HashSet;
use std::sync::Arc;

const OPTS: CheckOptions = CheckOptions {
    memoize: true,
    max_violations: usize::MAX,
};

/// Incremental and from-scratch reports agree on `models` (same
/// verdicts, same violation multiset, same tuples).
fn assert_agrees(checker: &DeltaChecker, models: &[Model], ctx: &str) {
    let scratch = Checker::with_options(checker.hir(), models, OPTS)
        .unwrap()
        .check()
        .unwrap();
    let inc = checker.report();
    assert_eq!(inc.checks.len(), scratch.checks.len(), "{ctx}");
    for (a, b) in inc.checks.iter().zip(&scratch.checks) {
        assert_eq!(a.relation, b.relation, "{ctx}");
        assert_eq!(a.dep, b.dep, "{ctx}");
        assert_eq!(
            a.holds, b.holds,
            "{ctx}: {} {} disagree",
            a.relation_name, a.dep
        );
        let mut va: Vec<String> = a.violations.iter().map(|v| v.to_string()).collect();
        let mut vb: Vec<String> = b.violations.iter().map(|v| v.to_string()).collect();
        va.sort();
        vb.sort();
        assert_eq!(va, vb, "{ctx}: {} {}", a.relation_name, a.dep);
    }
    for (x, y) in checker.models().iter().zip(models) {
        assert!(x.graph_eq(y), "{ctx}: model tuples diverged");
    }
}

/// Drives `n_edits` seeded random edits per target model through a
/// warm [`DeltaChecker`] (mirroring them on a plain tuple), then
/// differential-checks the final state against a scratch [`Checker`].
fn run_scale_script(hir: &Arc<Hir>, seed_models: &[Model], n_edits: usize, seed: u64, ctx: &str) {
    let mut models = seed_models.to_vec();
    let mut checker = DeltaChecker::with_options(hir, &models, OPTS).unwrap();
    for (target, model) in models.iter_mut().enumerate() {
        let edits = random_edits(model, n_edits, seed + target as u64);
        for op in edits {
            checker.apply(DomIdx(target as u8), &op).unwrap();
            let mut mirror = Delta::new();
            mirror.push(op);
            mirror.apply(model).unwrap();
        }
    }
    assert_agrees(&checker, &models, ctx);
}

/// n = 10⁴ per model, edit scripts on every model of the tuple.
#[test]
#[cfg_attr(debug_assertions, ignore = "scale smoke: run with --release")]
fn delta_checker_matches_scratch_at_10k() {
    let w = feature_workload(FeatureSpec {
        n_features: 10_000,
        k_configs: 2,
        mandatory_ratio: 0.3,
        select_prob: 0.4,
        seed: 41,
    });
    run_scale_script(&w.hir, &w.models, 40, 0x5CA1E, "10k script");
}

/// n = 10⁵ on the tuple, 100 edits on the feature model: the CI
/// scale-smoke workload. Also bounds wall-clock sanity — the whole
/// script must beat a from-scratch re-check per edit by construction,
/// so a hang or accidental O(n)-per-edit regression times out the step.
#[test]
#[cfg_attr(debug_assertions, ignore = "scale smoke: run with --release")]
fn delta_checker_matches_scratch_at_100k() {
    let w = feature_workload(FeatureSpec {
        n_features: 100_000,
        k_configs: 2,
        mandatory_ratio: 0.3,
        select_prob: 0.4,
        seed: 43,
    });
    let mut models = w.models.to_vec();
    let mut checker = DeltaChecker::with_options(&w.hir, &models, OPTS).unwrap();
    let edits = random_edits(&models[0], 100, 0xBEEF);
    for op in edits {
        checker.apply(DomIdx(0), &op).unwrap();
        let mut mirror = Delta::new();
        mirror.push(op);
        mirror.apply(&mut models[0]).unwrap();
    }
    assert_agrees(&checker, &models, "100k script");
}

/// Point-updated [`ModelIndex`] iterates identically to a fresh
/// rebuild: class extents (ascending), attribute buckets (ascending),
/// and cached lengths — across a random edit script and a
/// tombstone-heavy phase that deletes half the live objects.
#[test]
#[cfg_attr(debug_assertions, ignore = "scale smoke: run with --release")]
fn model_index_point_updates_match_rebuild_at_scale() {
    let w = feature_workload(FeatureSpec {
        n_features: 10_000,
        k_configs: 2,
        mandatory_ratio: 0.3,
        select_prob: 0.4,
        seed: 47,
    });
    let mut model = w.models[0].clone();
    let mut index = ModelIndex::build(&model);
    let apply = |model: &mut Model, index: &mut ModelIndex, op: &EditOp| match *op {
        // Same maintenance order as `DeltaChecker::apply`.
        EditOp::AddObj { id, class } => {
            model.add_at(id, class).unwrap();
            index.add_obj(model, id);
        }
        EditOp::DelObj { id, .. } => {
            index.remove_obj(model, id);
            model.delete(id).unwrap();
        }
        EditOp::SetAttr {
            id,
            attr,
            value,
            old,
        } => {
            model.set_attr(id, attr, value).unwrap();
            index.update_attr(id, attr, old, value);
        }
        EditOp::AddLink { src, r, dst } => {
            model.add_link(src, r, dst).unwrap();
        }
        EditOp::DelLink { src, r, dst } => {
            model.remove_link(src, r, dst).unwrap();
        }
    };
    for op in random_edits(&model, 300, 0xD1FF) {
        apply(&mut model, &mut index, &op);
    }
    assert_index_matches_rebuild(&index, &model, "after edit script");
    // Tombstone-heavy: delete every other live object. Link scrub can
    // remove further state, but extents and attribute buckets must keep
    // matching a rebuild over the swiss-cheese id space.
    let victims: Vec<_> = model.objects().map(|(id, _)| id).step_by(2).collect();
    for id in victims {
        index.remove_obj(&model, id);
        model.delete(id).unwrap();
    }
    assert_index_matches_rebuild(&index, &model, "after mass deletion");
}

fn assert_index_matches_rebuild(index: &ModelIndex, model: &Model, ctx: &str) {
    let rebuilt = ModelIndex::build(model);
    let meta = model.metamodel();
    for c in 0..meta.class_count() as u32 {
        let class = ClassId(c);
        let a: Vec<_> = index.extent_iter(class).collect();
        let b: Vec<_> = rebuilt.extent_iter(class).collect();
        assert_eq!(a, b, "{ctx}: extent of class {c} diverged");
        assert_eq!(index.extent_len(class), a.len(), "{ctx}: extent_len {c}");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "{ctx}: extent {c} order");
    }
    // Every (attr, value) pair live in the model, each checked once.
    let mut seen = HashSet::new();
    for (_, obj) in model.objects() {
        for (slot, &attr) in meta.class(obj.class).all_attrs.iter().enumerate() {
            let value = obj.attrs[slot];
            if !seen.insert((attr, value)) {
                continue;
            }
            let a: Vec<_> = index.by_attr_iter(attr, value).collect();
            let b: Vec<_> = rebuilt.by_attr_iter(attr, value).collect();
            assert_eq!(a, b, "{ctx}: bucket ({attr:?}, {value}) diverged");
            assert_eq!(
                index.by_attr_len(attr, value),
                a.len(),
                "{ctx}: by_attr_len ({attr:?}, {value})"
            );
            assert!(
                a.windows(2).all(|w| w[0] < w[1]),
                "{ctx}: bucket ({attr:?}, {value}) order"
            );
        }
    }
}
