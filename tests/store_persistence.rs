//! Persistence property testing of the WAL-backed session store
//! (ISSUE 6): over generated edit/repair scripts, a session that is
//! persisted, dropped, and reopened mid-flight must be observably
//! identical — status, fingerprint, rendered journal, and the final
//! written tuple, byte for byte — to one uninterrupted in-memory
//! session, under both search oracles and the SAT engine. Plus the
//! `rollback(n)` edge cases: saturation past the journal start,
//! rolling back across a persisted/recovered boundary, and
//! rollback-then-new-edits reusing the committed WAL prefix.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use mmtf::core::{SessionOptions, Shape, SyncSession, SyncStatus, Transformation};
use mmtf::enforce::RepairOptions;
use mmtf::gen::scenario::scenario_named;
use mmtf::gen::{feature_workload, FeatureSpec, SessionScriptGen, SessionStep};
use mmtf::model::text::print_model;
use mmtf::model::Model;
use mmtf::prelude::{DomSet, EngineKind, PersistentSession};
use mmtf::store::render_entry;

fn fixture(seed: u64) -> (Arc<Transformation>, Vec<Model>) {
    let w = feature_workload(FeatureSpec {
        n_features: 5,
        k_configs: 2,
        mandatory_ratio: 0.4,
        select_prob: 0.4,
        seed,
    });
    let t = Transformation::from_sources(
        &mmtf::gen::transformation_source(2),
        &[mmtf::gen::CF_METAMODEL, mmtf::gen::FM_METAMODEL],
    )
    .unwrap();
    (Arc::new(t), w.models)
}

#[derive(Debug, PartialEq)]
struct Snapshot {
    fingerprint: u64,
    status: SyncStatus,
    models: Vec<String>,
    journal: Vec<String>,
}

impl Snapshot {
    fn of(session: &SyncSession) -> Snapshot {
        Snapshot {
            fingerprint: session.fingerprint(),
            status: session.status(),
            models: session.models().iter().map(print_model).collect(),
            journal: session.journal().iter().map(render_entry).collect(),
        }
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmt-store-persist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Drives an uninterrupted reference session and a durable session
/// through the *same* generated script, persisting + dropping +
/// reopening the durable one at every `reopen_every` steps, and
/// asserts they are observably identical after every step.
fn assert_persisted_equals_uninterrupted(
    engine: EngineKind,
    incremental_oracle: bool,
    seed: u64,
    tag: &str,
) {
    let (t, seed_models) = fixture(seed);
    let targets = DomSet::from_iter([mmtf::deps::DomIdx(0), mmtf::deps::DomIdx(1)]);
    assert_persisted_equals_uninterrupted_on(
        &t,
        &seed_models,
        targets,
        engine,
        incremental_oracle,
        seed,
        tag,
    );
}

/// The scenario-generic core of the persistence differential: any
/// transformation, any seed tuple, any repair-target set.
#[allow(clippy::too_many_arguments)]
fn assert_persisted_equals_uninterrupted_on(
    t: &Arc<Transformation>,
    seed_models: &[Model],
    targets: DomSet,
    engine: EngineKind,
    incremental_oracle: bool,
    seed: u64,
    tag: &str,
) {
    let opts = SessionOptions {
        engine,
        repair: RepairOptions {
            incremental_oracle,
            ..RepairOptions::default()
        },
    };
    let mut live = SyncSession::with_options(Arc::clone(t), seed_models, opts.clone()).unwrap();
    let mut durable = SyncSession::with_options(Arc::clone(t), seed_models, opts.clone()).unwrap();
    let dir = scratch(tag);
    let mut store = PersistentSession::create(&dir, &durable).unwrap();

    let mut gen = SessionScriptGen::new(targets, 3, seed.wrapping_mul(31).wrapping_add(7));
    let ctx = |step: usize| {
        format!("engine={engine:?} incremental={incremental_oracle} seed={seed} step={step}")
    };
    for step_no in 0..18 {
        // The generator is fed the *reference* models; both sessions
        // apply the identical step.
        match gen.next_step(live.models()) {
            SessionStep::Edit { model, op } => {
                live.apply(model, op).unwrap();
                durable.apply(model, op).unwrap();
            }
            SessionStep::Repair { targets } => {
                let shape = Shape::from_targets(targets);
                let a = live.repair(shape).unwrap();
                let b = durable.repair(shape).unwrap();
                assert_eq!(a.is_some(), b.is_some(), "{}", ctx(step_no));
            }
        }
        store.commit(&durable).unwrap();
        assert_eq!(
            Snapshot::of(&durable),
            Snapshot::of(&live),
            "{}",
            ctx(step_no)
        );

        if step_no % 6 == 4 {
            // Crash: forget the warm session entirely and recover it
            // from disk.
            drop(durable);
            drop(store);
            let (s, recovered) = PersistentSession::open(&dir, t, opts.clone())
                .unwrap_or_else(|e| panic!("{}: reopen failed: {e}", ctx(step_no)));
            store = s;
            durable = recovered;
            assert_eq!(
                Snapshot::of(&durable),
                Snapshot::of(&live),
                "{}: recovered session diverges",
                ctx(step_no)
            );
        }
    }
    // The final written tuple is byte-identical, and so is the
    // human-facing report.
    assert_eq!(live.report().to_string(), durable.report().to_string());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn search_incremental_survives_reopen() {
    for seed in [3, 17] {
        assert_persisted_equals_uninterrupted(EngineKind::Search, true, seed, "search-inc");
    }
}

#[test]
fn search_scratch_oracle_survives_reopen() {
    for seed in [3, 17] {
        assert_persisted_equals_uninterrupted(EngineKind::Search, false, seed, "search-cold");
    }
}

#[test]
fn sat_engine_survives_reopen() {
    for seed in [3, 17] {
        assert_persisted_equals_uninterrupted(EngineKind::Sat, true, seed, "sat");
    }
}

/// The scenario sweep: persist-reopen ≡ uninterrupted over one named
/// corpus scenario, crash-recovering mid-script, under the warm search
/// oracle and the SAT engine.
fn scenario_sweep(name: &str) {
    let sc = scenario_named(name).expect("known scenario");
    for seed in [3u64, 17] {
        let w = sc.workload(seed);
        let t = Arc::new(Transformation::from_hir(w.hir.clone()));
        assert_persisted_equals_uninterrupted_on(
            &t,
            &w.models,
            sc.repair_targets(),
            EngineKind::Search,
            true,
            seed,
            &format!("scn-{name}-search-{seed}"),
        );
    }
    let w = sc.workload(3);
    let t = Arc::new(Transformation::from_hir(w.hir.clone()));
    assert_persisted_equals_uninterrupted_on(
        &t,
        &w.models,
        sc.repair_targets(),
        EngineKind::Sat,
        true,
        3,
        &format!("scn-{name}-sat"),
    );
}

#[test]
fn scenario_fm2cfs_survives_reopen() {
    scenario_sweep("fm2cfs");
}

#[test]
fn scenario_company_survives_reopen() {
    scenario_sweep("company");
}

#[test]
fn scenario_class2rdbms_survives_reopen() {
    scenario_sweep("class2rdbms");
}

/// Applies `n` deterministic generated edit steps (repair steps are
/// executed too, to keep the script realistic).
fn drive(session: &mut SyncSession, gen: &mut SessionScriptGen, steps: usize) {
    for _ in 0..steps {
        match gen.next_step(session.models()) {
            SessionStep::Edit { model, op } => {
                session.apply(model, op).unwrap();
            }
            SessionStep::Repair { targets } => {
                session.repair(Shape::from_targets(targets)).unwrap();
            }
        }
    }
}

fn targets() -> DomSet {
    DomSet::from_iter([mmtf::deps::DomIdx(0), mmtf::deps::DomIdx(1)])
}

#[test]
fn rollback_past_the_journal_start_saturates_and_persists() {
    let (t, seed_models) = fixture(41);
    let opts = SessionOptions::default();
    let mut session =
        SyncSession::with_options(Arc::clone(&t), &seed_models, opts.clone()).unwrap();
    let seed_state = Snapshot::of(&session);
    let dir = scratch("rb-saturate");
    let mut store = PersistentSession::create(&dir, &session).unwrap();
    let mut gen = SessionScriptGen::new(targets(), 3, 99);
    drive(&mut session, &mut gen, 7);
    store.commit(&session).unwrap();
    let entries = session.journal().len();
    assert!(entries > 0);

    // Rolling back far past the start saturates at the seed …
    session.rollback(entries + 100).unwrap();
    assert_eq!(Snapshot::of(&session), seed_state);
    store.commit(&session).unwrap();
    // … and the persisted WAL shrinks to just its header.
    assert_eq!(fs::metadata(dir.join("wal")).unwrap().len(), 8);
    let (_, reopened) = PersistentSession::open(&dir, &t, opts).unwrap();
    assert_eq!(Snapshot::of(&reopened), seed_state);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rollback_across_a_recovered_boundary() {
    let (t, seed_models) = fixture(43);
    let opts = SessionOptions::default();

    // Reference: one uninterrupted session doing 6 steps, rolling back
    // 4 entries, then doing 3 more steps.
    let mut reference =
        SyncSession::with_options(Arc::clone(&t), &seed_models, opts.clone()).unwrap();
    let mut gen_a = SessionScriptGen::new(targets(), 3, 7);
    drive(&mut reference, &mut gen_a, 10);
    let persisted_entries = reference.journal().len();
    assert!(persisted_entries >= 4, "fixture too quiet");

    // Durable twin: same 6 steps, persist, *recover*, then roll back
    // through entries that were written before the crash.
    let mut durable =
        SyncSession::with_options(Arc::clone(&t), &seed_models, opts.clone()).unwrap();
    let dir = scratch("rb-boundary");
    let mut store = PersistentSession::create(&dir, &durable).unwrap();
    let mut gen_b = SessionScriptGen::new(targets(), 3, 7);
    drive(&mut durable, &mut gen_b, 10);
    store.commit(&durable).unwrap();
    drop(durable);
    drop(store);
    let (mut store, mut durable) = PersistentSession::open(&dir, &t, opts.clone()).unwrap();

    reference.rollback(4).unwrap();
    durable.rollback(4).unwrap();
    store.commit(&durable).unwrap();
    assert_eq!(Snapshot::of(&durable), Snapshot::of(&reference));

    // Fresh ids allocated after the rollback must agree too — the
    // recovered session's id allocator saw the full history.
    let mut gen_a2 = SessionScriptGen::new(targets(), 3, 13);
    let mut gen_b2 = SessionScriptGen::new(targets(), 3, 13);
    drive(&mut reference, &mut gen_a2, 3);
    drive(&mut durable, &mut gen_b2, 3);
    store.commit(&durable).unwrap();
    assert_eq!(Snapshot::of(&durable), Snapshot::of(&reference));

    let (_, reopened) = PersistentSession::open(&dir, &t, opts).unwrap();
    assert_eq!(Snapshot::of(&reopened), Snapshot::of(&reference));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rollback_then_new_edits_reuses_the_committed_wal_prefix() {
    let (t, seed_models) = fixture(47);
    let opts = SessionOptions::default();
    let mut session =
        SyncSession::with_options(Arc::clone(&t), &seed_models, opts.clone()).unwrap();
    let dir = scratch("rb-tail");
    let mut store = PersistentSession::create(&dir, &session).unwrap();
    let mut gen = SessionScriptGen::new(targets(), 3, 21);
    drive(&mut session, &mut gen, 6);
    store.commit(&session).unwrap();
    let entries = session.journal().len();
    assert!(entries >= 3, "fixture too quiet");
    let before = fs::read(dir.join("wal")).unwrap();

    // Rewind two entries, then write fresh history.
    session.rollback(2).unwrap();
    drive(&mut session, &mut gen, 3);
    store.commit(&session).unwrap();
    let after = fs::read(dir.join("wal")).unwrap();

    // The first `entries - 2` records were untouched on disk: commit
    // diffs against the live journal instead of rewriting the file.
    let keep = {
        // Walk the framing to find where record `entries - 2` ends.
        let mut off = 8usize;
        for _ in 0..entries - 2 {
            let len = u32::from_le_bytes(before[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + len;
        }
        off
    };
    assert_eq!(
        &after[..keep],
        &before[..keep],
        "commit rewrote the shared WAL prefix"
    );
    assert_ne!(after, before);

    let (_, reopened) = PersistentSession::open(&dir, &t, opts).unwrap();
    assert_eq!(Snapshot::of(&reopened), Snapshot::of(&session));
    let _ = fs::remove_dir_all(&dir);
}
