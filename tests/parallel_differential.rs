//! Differential testing of the parallel repair layer: `repair_batch`
//! and the parallel search frontier must be **byte-identical** to the
//! sequential engine for every worker count, across the PR 2
//! random-edit scenarios.

use mmtf::dist::Delta;
use mmtf::gen::{feature_workload, random_edits, FeatureSpec};
use mmtf::model::text::print_model;
use mmtf::prelude::*;

/// The PR 2 random-edit scenarios: seeded feature workloads driven into
/// arbitrary states by seeded random edit scripts on every component.
fn random_edit_requests() -> (std::sync::Arc<Hir>, Vec<RepairRequest>) {
    let mut requests = Vec::new();
    let mut hir = None;
    for seed in 0..8u64 {
        let w = feature_workload(FeatureSpec {
            n_features: 3,
            k_configs: 2,
            mandatory_ratio: 0.4,
            select_prob: 0.4,
            seed: seed * 11 + 1,
        });
        hir.get_or_insert(w.hir.clone());
        let mut models = w.models;
        // One short edit script on one component per request (cycling
        // through the tuple): enough to reach arbitrary inconsistent
        // states while keeping minimal repairs within the cost bound.
        let m = (seed as usize) % models.len();
        let mut delta = Delta::new();
        for op in random_edits(&models[m], 2, seed * 31 + m as u64) {
            delta.push(op);
        }
        delta.apply(&mut models[m]).expect("generated edits replay");
        requests.push(RepairRequest {
            models,
            targets: mmtf::deps::DomSet::full(3),
        });
    }
    (hir.expect("at least one scenario"), requests)
}

/// Bounds that keep adversarial random states cheap: differential
/// equality — not repair depth — is what this suite exercises.
fn bounded(incremental: bool) -> RepairOptions {
    RepairOptions {
        incremental_oracle: incremental,
        max_cost: 8,
        max_states: 20_000,
        ..RepairOptions::default()
    }
}

/// Renders an outcome canonically: cost, every model's exact textual
/// form, and the edit scripts. Two outcomes render equal iff they are
/// byte-identical.
fn render(out: &Result<Option<RepairOutcome>, mmtf::enforce::RepairError>) -> String {
    match out {
        Err(e) => format!("error: {e:?}"),
        Ok(None) => "unrepairable".into(),
        Ok(Some(o)) => {
            let mut s = format!("cost {}\n", o.cost);
            for m in &o.models {
                s.push_str(&print_model(m));
                s.push('\n');
            }
            for d in &o.deltas {
                s.push_str(&d.to_string());
                s.push('\n');
            }
            s
        }
    }
}

/// `repair_batch` with 1, 2 and 4 workers returns byte-identical
/// outcomes to the sequential engine, for both search oracles.
#[test]
fn search_batch_is_byte_identical_to_sequential() {
    let (hir, requests) = random_edit_requests();
    for incremental in [true, false] {
        let base_opts = bounded(incremental);
        // Ground truth: the sequential engine, request by request.
        let sequential: Vec<String> = requests
            .iter()
            .map(|r| {
                render(&SearchEngine::new(base_opts.clone()).repair(&hir, &r.models, r.targets))
            })
            .collect();
        assert!(
            sequential.iter().any(|s| s.starts_with("cost")),
            "the scenario set must contain repairable requests"
        );
        for jobs in [1usize, 2, 4] {
            let engine = SearchEngine::new(RepairOptions {
                jobs,
                ..base_opts.clone()
            });
            let batch = engine.repair_batch(&hir, &requests);
            assert_eq!(batch.len(), requests.len());
            for (i, out) in batch.iter().enumerate() {
                assert_eq!(
                    render(out),
                    sequential[i],
                    "incremental={incremental} jobs={jobs} request {i}"
                );
            }
        }
    }
}

/// The SAT engine's batch fan-out is outcome-preserving too.
#[test]
fn sat_batch_is_byte_identical_to_sequential() {
    let (hir, requests) = random_edit_requests();
    let sequential: Vec<String> = requests
        .iter()
        .map(|r| render(&SatEngine::new(bounded(true)).repair(&hir, &r.models, r.targets)))
        .collect();
    for jobs in [2usize, 4] {
        let engine = SatEngine::new(RepairOptions {
            jobs,
            ..bounded(true)
        });
        let batch = engine.repair_batch(&hir, &requests);
        for (i, out) in batch.iter().enumerate() {
            assert_eq!(render(out), sequential[i], "jobs={jobs} request {i}");
        }
    }
}

/// The parallel search *frontier* (jobs > 1 inside one repair) is
/// byte-identical to the sequential frontier on every scenario.
#[test]
fn parallel_frontier_is_byte_identical_to_sequential() {
    let (hir, requests) = random_edit_requests();
    for (i, r) in requests.iter().enumerate() {
        let sequential =
            render(&SearchEngine::new(bounded(true)).repair(&hir, &r.models, r.targets));
        for jobs in [2usize, 4] {
            let engine = SearchEngine::new(RepairOptions {
                jobs,
                ..bounded(true)
            });
            let parallel = render(&engine.repair(&hir, &r.models, r.targets));
            assert_eq!(parallel, sequential, "jobs={jobs} request {i}");
        }
    }
}

/// Batch costs agree with the SAT oracle wherever both engines find a
/// repair (the engines explore different candidate spaces, so
/// repairability itself may differ on adversarial random states; cost
/// agreement on common successes is the §3 least-change contract).
#[test]
fn batch_costs_agree_with_sat_oracle() {
    let (hir, requests) = random_edit_requests();
    let search = SearchEngine::new(RepairOptions {
        jobs: 4,
        ..bounded(true)
    });
    let sat = SatEngine::new(bounded(true));
    let batch = search.repair_batch(&hir, &requests);
    for (i, (req, out)) in requests.iter().zip(&batch).enumerate() {
        let (Ok(Some(a)), Ok(Some(b))) = (out, &sat.repair(&hir, &req.models, req.targets)) else {
            continue;
        };
        assert_eq!(a.cost, b.cost, "request {i}: search vs sat minimal cost");
        let t = Transformation::from_hir(hir.clone());
        assert!(t.check(&a.models).unwrap().consistent(), "request {i}");
    }
}
