//! End-to-end reproduction of every claim in the paper, exercised through
//! the public facade only. Each test cites the section it reproduces.

use mmtf::gen::scenario::{scenario_named, COMPANY_METAMODEL, WORLD_METAMODEL};
use mmtf::gen::{
    feature_workload, inject, transformation_source, FeatureSpec, Injection, CF_METAMODEL,
    FM_METAMODEL,
};
use mmtf::model::Value;
use mmtf::prelude::*;

fn paper_t(k: usize) -> Transformation {
    Transformation::from_sources(&transformation_source(k), &[CF_METAMODEL, FM_METAMODEL])
        .expect("paper transformation resolves")
}

/// §2.1: the standard checking semantics cannot express MF — the
/// universal quantification over sibling configurations creates an
/// empty-range loophole that accepts an inconsistent triple.
#[test]
fn s21_standard_semantics_loophole() {
    let t = paper_t(2);
    let std_t = t.standardized();
    // fm demands `engine` everywhere; both configurations are empty.
    let cf = parse_metamodel(CF_METAMODEL).unwrap();
    let fm = parse_metamodel(FM_METAMODEL).unwrap();
    let models = [
        parse_model("model cf1 : CF { }", &cf).unwrap(),
        parse_model("model cf2 : CF { }", &cf).unwrap(),
        parse_model(
            r#"model fm : FM { f = Feature { name = "engine", mandatory = true } }"#,
            &fm,
        )
        .unwrap(),
    ];
    assert!(
        std_t.check(&models).unwrap().consistent(),
        "standard semantics must accept (the loophole)"
    );
    assert!(
        !t.check(&models).unwrap().consistent(),
        "extended dependencies must reject"
    );
}

/// §2.2: conservativity — a relation carrying the standard dependency set
/// behaves exactly like the unextended standard, across random workloads
/// and injections.
#[test]
fn s22_conservativity_on_random_workloads() {
    for seed in 0..20u64 {
        let mut w = feature_workload(FeatureSpec {
            n_features: 5,
            k_configs: 2,
            mandatory_ratio: 0.4,
            select_prob: 0.5,
            seed,
        });
        let t = Transformation::from_hir(w.hir.clone());
        let std_t = t.standardized();
        let double_std = std_t.standardized();
        // standardizing twice is idempotent on verdicts; the standardized
        // transformation agrees with itself re-derived.
        for round in 0..2 {
            let a = std_t.check(&w.models).unwrap().consistent();
            let b = double_std.check(&w.models).unwrap().consistent();
            assert_eq!(a, b, "seed={seed} round={round}");
            if round == 0 {
                inject(
                    &mut w,
                    if seed % 2 == 0 {
                        Injection::NewMandatoryInFm
                    } else {
                        Injection::SelectUnknown { config: 0 }
                    },
                );
            }
        }
    }
}

/// §2.3: the derived dependency forms — transitivity, multi-target and
/// source-union entailment — through the public dependency API.
#[test]
fn s23_entailment_rules() {
    let mut d = DepSet::new(3);
    d.add(Dep::of(&[0], 1)).unwrap();
    d.add(Dep::of(&[1], 2)).unwrap();
    assert!(d.entails(Dep::of(&[0], 2)), "transitivity");

    let mut d = DepSet::new(3);
    d.add(Dep::of(&[0], 1)).unwrap();
    d.add(Dep::of(&[0], 2)).unwrap();
    assert!(
        d.entails_multi(
            DomSet::single(DomIdx(0)),
            DomSet::from_iter([DomIdx(1), DomIdx(2)])
        ),
        "{{M1→M2, M1→M3}} ⊢ M1 → M2M3"
    );

    let mut d = DepSet::new(3);
    d.add(Dep::of(&[0], 2)).unwrap();
    d.add(Dep::of(&[1], 2)).unwrap();
    assert!(
        d.entails_union(
            &[DomSet::single(DomIdx(0)), DomSet::single(DomIdx(1))],
            DomIdx(2)
        ),
        "{{M1→M3, M2→M3}} ⊢ M1|M2 → M3"
    );
}

/// §2.3: the reversed-call typing error, surfaced by the front-end.
#[test]
fn s23_reversed_call_is_a_static_error() {
    let src = r#"
transformation T(a : CF, b : CF) {
  relation S {
    n : Str;
    domain a x : Feature { name = n };
    domain b y : Feature { name = n };
    depend b -> a;
  }
  top relation R {
    m : Str;
    domain a u : Feature { name = m };
    domain b v : Feature { name = m };
    depend a -> b;
    where { S(u, v) }
  }
}
"#;
    let err = Transformation::from_sources(src, &[CF_METAMODEL]).unwrap_err();
    assert!(err.to_string().contains("direction"), "{err}");
}

/// §3: the four transformation shapes on the paper's own update
/// scenarios, with both engines.
#[test]
fn s3_shapes_and_scenarios() {
    let k = 2;
    let t = paper_t(k);
    let fm_idx = k;
    let spec = FeatureSpec {
        n_features: 4,
        k_configs: k,
        mandatory_ratio: 0.5,
        select_prob: 0.5,
        seed: 11,
    };
    for engine in [EngineKind::Search, EngineKind::Sat] {
        // (a) New mandatory feature in FM: single-CF fails, →F_CFᵏ works.
        let mut w = feature_workload(spec.clone());
        inject(&mut w, Injection::NewMandatoryInFm);
        assert!(
            t.enforce(&w.models, Shape::towards(0), engine)
                .unwrap()
                .is_none(),
            "{engine:?}: single-target must fail"
        );
        let out = t
            .enforce(&w.models, Shape::of(&[0, 1]), engine)
            .unwrap()
            .expect("multi-target works");
        assert!(t.check(&out.models).unwrap().consistent());

        // (b) Rename in one configuration: →Fⁱ_{FM×CFᵏ⁻¹} propagates.
        let mut w = feature_workload(spec.clone());
        inject(&mut w, Injection::RenameInConfig { config: 0 });
        let out = t
            .enforce(&w.models, Shape::all_but(0, k + 1), engine)
            .unwrap()
            .expect("rename propagates");
        assert!(t.check(&out.models).unwrap().consistent());

        // (c) Selected everywhere: →F_FM makes it mandatory.
        let mut w = feature_workload(spec.clone());
        inject(&mut w, Injection::SelectEverywhere);
        let out = t
            .enforce(&w.models, Shape::towards(fm_idx), engine)
            .unwrap()
            .expect("towards FM works");
        assert!(t.check(&out.models).unwrap().consistent());
    }
}

/// §3: least change — the repaired tuple is at minimal distance; both
/// engines report the same minimum.
#[test]
fn s3_least_change_minimality() {
    let t = paper_t(2);
    let spec = FeatureSpec {
        n_features: 3,
        k_configs: 2,
        mandatory_ratio: 0.4,
        select_prob: 0.4,
        seed: 23,
    };
    for injection in [
        Injection::NewMandatoryInFm,
        Injection::SelectEverywhere,
        Injection::SelectUnknown { config: 1 },
    ] {
        let mut w = feature_workload(spec.clone());
        inject(&mut w, injection);
        let a = t
            .enforce(&w.models, Shape::all(3), EngineKind::Search)
            .unwrap()
            .expect("repairable");
        let b = t
            .enforce(&w.models, Shape::all(3), EngineKind::Sat)
            .unwrap()
            .expect("repairable");
        assert_eq!(a.cost, b.cost, "{injection:?}");
        // The reported cost matches the recomputed tuple distance.
        let recomputed: u64 = a.deltas.iter().map(|d| d.cost(&CostModel::default())).sum();
        assert_eq!(a.cost, recomputed, "{injection:?}");
    }
}

/// §3 (future work, implemented): weighted tuple distances prioritize
/// some models over others.
#[test]
fn s3_weighted_distance() {
    let t = paper_t(2);
    let mut w = feature_workload(FeatureSpec {
        n_features: 3,
        k_configs: 2,
        mandatory_ratio: 0.3,
        select_prob: 0.5,
        seed: 31,
    });
    inject(&mut w, Injection::SelectUnknown { config: 0 });
    let opts = RepairOptions {
        tuple: TupleCost::weighted(vec![1, 1, 100]),
        max_cost: 50,
        ..RepairOptions::default()
    };
    let out = t
        .enforce_with(&w.models, Shape::all(3), EngineKind::Sat, opts)
        .unwrap()
        .expect("repairable");
    assert!(out.deltas[2].is_empty(), "expensive FM must stay untouched");
    assert!(t.check(&out.models).unwrap().consistent());
}

/// The Company HR synchronization history (the classic bx example the
/// scenario corpus ports): hire a person, repair in both directions,
/// then push a salary beyond the cap and watch the least-change repair
/// clamp it — while the reverse direction is provably unrepairable.
/// Exact minimal costs are asserted on both engines.
#[test]
fn company_hr_history_repairs_both_directions() {
    let sc = scenario_named("company").expect("corpus scenario");
    let w = sc.workload(5);
    let t = Transformation::from_hir(w.hir.clone());
    assert!(t.check(&w.models).unwrap().consistent(), "seed tuple");

    // Step 1: hire "dana" on the world side only.
    let mut hired = w.models.clone();
    let person = hired[0].metamodel().clone().class_named("Person").unwrap();
    let id = hired[0].add(person).unwrap();
    hired[0]
        .set_attr_named(id, "name", Value::str("dana"))
        .unwrap();
    assert!(!t.check(&hired).unwrap().consistent(), "hire breaks sync");

    let mut accepted = None;
    for engine in [EngineKind::Search, EngineKind::Sat] {
        // Forward: materialize dana as an Employee. Cost 2 = AddObj +
        // SetAttr name; the salary stays at its Int default (0), which
        // both engines must price as free.
        let fwd = t
            .enforce(&hired, Shape::towards(1), engine)
            .unwrap()
            .expect("hire propagates");
        assert_eq!(fwd.cost, 2, "{engine:?} hire forward");
        assert!(fwd.deltas[0].is_empty(), "{engine:?}: world is frozen");
        assert!(t.check(&fwd.models).unwrap().consistent(), "{engine:?}");
        // Backward: the cheapest world-side fix is to retract the hire.
        let back = t
            .enforce(&hired, Shape::towards(0), engine)
            .unwrap()
            .expect("hire retracts");
        assert_eq!(back.cost, 1, "{engine:?} hire backward");
        assert!(
            back.models[0].graph_eq(&w.models[0]),
            "{engine:?}: back to seed"
        );
        if engine == EngineKind::Search {
            accepted = Some(fwd.models);
        }
    }

    // Step 2: accept the hire, then promote emp0 beyond the salary cap.
    let mut promoted = accepted.unwrap();
    let emp = promoted[1]
        .metamodel()
        .clone()
        .class_named("Employee")
        .unwrap();
    let eid = {
        let m = &promoted[1];
        m.objects()
            .find(|(oid, o)| {
                o.class == emp && m.attr_named(*oid, "name").unwrap() == Value::str("emp0")
            })
            .map(|(oid, _)| oid)
            .unwrap()
    };
    promoted[1]
        .set_attr_named(eid, "salary", Value::Int(12))
        .unwrap();
    assert!(!t.check(&promoted).unwrap().consistent(), "over the cap");
    let opts = RepairOptions {
        max_cost: 4,
        ..RepairOptions::default()
    };
    for engine in [EngineKind::Search, EngineKind::Sat] {
        // Towards company: one SetAttr clamps the salary back in range.
        let clamp = t
            .enforce_with(&promoted, Shape::towards(1), engine, opts.clone())
            .unwrap()
            .expect("clamp works");
        assert_eq!(clamp.cost, 1, "{engine:?} clamp");
        let fixed = clamp.models[1].attr_named(eid, "salary").unwrap();
        match fixed {
            Value::Int(s) => assert!((0..=9).contains(&s), "{engine:?}: clamped to {s}"),
            other => panic!("{engine:?}: salary became {other:?}"),
        }
        assert!(t.check(&clamp.models).unwrap().consistent(), "{engine:?}");
        // Towards world: SalaryCap only depends world → company, and
        // PersonToEmployee pins every Employee to a Person, so no edit
        // of the world model alone can absorb an over-cap salary.
        let stuck = t
            .enforce_with(&promoted, Shape::towards(0), engine, opts.clone())
            .unwrap();
        assert!(stuck.is_none(), "{engine:?}: no world-side fix exists");
    }
}

/// Negative-pattern expressiveness probe (cf. arXiv:0805.4745 on
/// negative application conditions): domain templates in this QVT-R
/// fragment are strictly positive — objects are only ever bound by
/// matching, never by *absence*. Negation exists solely as the `not`
/// expression operator over already-bound witnesses. This test pins
/// both halves of that boundary.
#[test]
fn negative_patterns_are_out_of_the_positive_fragment() {
    // (a) `not` over bound attribute values parses, resolves and
    // checks: "no employee may be named like their salary cap" style
    // constraints are in the fragment.
    let src = r#"
transformation N(world : World, company : Company) {
  top relation NotForbidden {
    n : Str;
    domain world p : Person { name = n };
    domain company e : Employee { name = n };
    where { not (n = "forbidden") }
    depend world -> company;
    depend company -> world;
  }
}
"#;
    let t = Transformation::from_sources(src, &[WORLD_METAMODEL, COMPANY_METAMODEL]).unwrap();
    let world_mm = parse_metamodel(WORLD_METAMODEL).unwrap();
    let company_mm = parse_metamodel(COMPANY_METAMODEL).unwrap();
    let ok = [
        parse_model(
            r#"model w : World { p = Person { name = "ada" } }"#,
            &world_mm,
        )
        .unwrap(),
        parse_model(
            r#"model c : Company { e = Employee { name = "ada", salary = 1 } }"#,
            &company_mm,
        )
        .unwrap(),
    ];
    assert!(t.check(&ok).unwrap().consistent());
    let bad = [
        parse_model(
            r#"model w : World { p = Person { name = "forbidden" } }"#,
            &world_mm,
        )
        .unwrap(),
        parse_model(
            r#"model c : Company { e = Employee { name = "forbidden", salary = 1 } }"#,
            &company_mm,
        )
        .unwrap(),
    ];
    assert!(!t.check(&bad).unwrap().consistent(), "`not` must bite");

    // (b) A negative *object template* — "a Person for which no
    // Employee exists" — has no syntax: `not` is an expression
    // operator, not a domain qualifier, so the natural NAC spelling is
    // a front-end error rather than a silently positive match.
    let nac = r#"
transformation N(world : World, company : Company) {
  top relation NoGhosts {
    n : Str;
    domain world p : Person { name = n };
    not domain company e : Employee { name = n };
  }
}
"#;
    assert!(
        Transformation::from_sources(nac, &[WORLD_METAMODEL, COMPANY_METAMODEL]).is_err(),
        "negative domain templates must be rejected, not misread"
    );
}
