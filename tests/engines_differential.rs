//! Randomized differential testing of the two enforcement engines and
//! the checking engine, across seeded workloads and injections.

use mmtf::dist::Delta;
use mmtf::gen::scenario::scenario_named;
use mmtf::gen::{feature_workload, inject, random_edits, FeatureSpec, Injection};
use mmtf::prelude::*;

/// Both engines agree on repairability and minimal cost across a grid of
/// random workloads; every repaired tuple re-checks as consistent and the
/// untouched models are bit-identical.
#[test]
fn engines_agree_across_random_workloads() {
    let injections = [
        Injection::NewMandatoryInFm,
        Injection::RenameInConfig { config: 0 },
        Injection::SelectEverywhere,
        Injection::SelectUnknown { config: 0 },
    ];
    for seed in 0..6u64 {
        for (i, &injection) in injections.iter().enumerate() {
            let mut w = feature_workload(FeatureSpec {
                n_features: 3 + (seed as usize % 2),
                k_configs: 2,
                mandatory_ratio: 0.4,
                select_prob: 0.4,
                seed: seed * 13 + i as u64,
            });
            let t = Transformation::from_hir(w.hir.clone());
            inject(&mut w, injection);
            let shape = Shape::all(3);
            let a = t
                .enforce(&w.models, shape, EngineKind::Search)
                .expect("search runs");
            let b = t
                .enforce(&w.models, shape, EngineKind::Sat)
                .expect("sat runs");
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!(
                        x.cost, y.cost,
                        "seed={seed} injection={injection:?}: minimal costs differ"
                    );
                    for out in [x, y] {
                        assert!(
                            t.check(&out.models).unwrap().consistent(),
                            "seed={seed} {injection:?}"
                        );
                        for m in &out.models {
                            assert!(mmtf::model::conformance::is_conformant(m));
                        }
                    }
                }
                (None, None) => {}
                _ => panic!(
                    "seed={seed} injection={injection:?}: engines disagree ({:?} vs {:?})",
                    a.as_ref().map(|o| o.cost),
                    b.as_ref().map(|o| o.cost)
                ),
            }
        }
    }
}

/// The scenario sweep: search ≡ SAT (repairability + minimal cost)
/// over one named corpus scenario. Each seed drifts one model with
/// random edits and repairs under both `all` and `all_but` shapes;
/// repair of the undrifted seed tuple must additionally be a cost-0
/// no-op on both engines.
fn scenario_sweep(name: &str) {
    let sc = scenario_named(name).expect("known scenario");
    for seed in 0..4u64 {
        let w = sc.workload(seed);
        let arity = w.models.len();
        let t = Transformation::from_hir(w.hir.clone());

        // Idempotence on the consistent seed tuple.
        for engine in [EngineKind::Search, EngineKind::Sat] {
            let out = t
                .enforce(&w.models, Shape::all(arity), engine)
                .unwrap()
                .expect("consistent tuple repairs trivially");
            assert_eq!(out.cost, 0, "{name} seed={seed} {engine:?}");
            for (orig, new) in w.models.iter().zip(&out.models) {
                assert!(orig.graph_eq(new), "{name} seed={seed} {engine:?}");
            }
        }

        // Drift one model, then compare engines across shapes.
        let target = (seed as usize) % arity;
        let mut models = w.models.clone();
        let mut drift = Delta::new();
        for op in random_edits(&models[target], 1 + (seed as usize % 2), seed * 7 + 3) {
            drift.push(op);
        }
        drift.apply(&mut models[target]).unwrap();
        for shape in [Shape::all(arity), Shape::all_but(target, arity)] {
            let ctx = format!("{name} seed={seed} target={target} shape={shape:?}");
            let a = t
                .enforce(&models, shape, EngineKind::Search)
                .expect("search runs");
            let b = t
                .enforce(&models, shape, EngineKind::Sat)
                .expect("sat runs");
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.cost, y.cost, "{ctx}: minimal costs differ");
                    for out in [x, y] {
                        assert!(t.check(&out.models).unwrap().consistent(), "{ctx}");
                        for m in &out.models {
                            assert!(mmtf::model::conformance::is_conformant(m), "{ctx}");
                        }
                    }
                }
                (None, None) => {}
                _ => panic!(
                    "{ctx}: engines disagree ({:?} vs {:?})",
                    a.as_ref().map(|o| o.cost),
                    b.as_ref().map(|o| o.cost)
                ),
            }
        }
    }
}

#[test]
fn scenario_fm2cfs_engines_agree() {
    scenario_sweep("fm2cfs");
}

#[test]
fn scenario_company_engines_agree() {
    scenario_sweep("company");
}

#[test]
fn scenario_class2rdbms_engines_agree() {
    scenario_sweep("class2rdbms");
}

/// Regression: porting the Company scenario surfaced a SAT-side pricing
/// gap — the grounded Int domain only contained the default 0 when no
/// other Int value was observed, so a fresh object could not *keep* its
/// zeroed attribute and SAT charged a phantom `SetAttr` (cost 3 vs the
/// search engine's 2 on the hire-forward repair). The domain now always
/// includes the default, mirroring the empty-string rule.
#[test]
fn fresh_objects_keep_default_int_attrs_on_both_engines() {
    use mmtf::gen::scenario::Scenario;
    use mmtf::model::Value;
    let sc = mmtf::gen::scenario::CompanyHr;
    let w = sc.workload(5);
    let t = Transformation::from_hir(w.hir.clone());
    let mut hired = w.models.clone();
    let person = hired[0].metamodel().clone().class_named("Person").unwrap();
    let id = hired[0].add(person).unwrap();
    hired[0]
        .set_attr_named(id, "name", Value::str("dana"))
        .unwrap();
    let search = t
        .enforce(&hired, Shape::towards(1), EngineKind::Search)
        .unwrap()
        .expect("repairable");
    let sat = t
        .enforce(&hired, Shape::towards(1), EngineKind::Sat)
        .unwrap()
        .expect("repairable");
    assert_eq!(
        search.cost, 2,
        "AddObj + SetAttr name; default salary is free"
    );
    assert_eq!(sat.cost, search.cost, "SAT must not price the Int default");
    let texts =
        |out: &RepairOutcome| -> Vec<String> { out.deltas.iter().map(|d| d.to_string()).collect() };
    assert_eq!(texts(&search), texts(&sat));
}

/// The checker's memoized and unmemoized modes agree on every directional
/// verdict across random (possibly inconsistent) workloads.
#[test]
fn memoization_is_observationally_equivalent() {
    for seed in 0..10u64 {
        let mut w = feature_workload(FeatureSpec {
            n_features: 6,
            k_configs: 3,
            mandatory_ratio: 0.3,
            select_prob: 0.5,
            seed,
        });
        if seed % 2 == 0 {
            inject(&mut w, Injection::SelectEverywhere);
        }
        let t = Transformation::from_hir(w.hir.clone());
        let on = t
            .check_with(
                &w.models,
                CheckOptions {
                    memoize: true,
                    max_violations: 16,
                },
            )
            .unwrap();
        let off = t
            .check_with(
                &w.models,
                CheckOptions {
                    memoize: false,
                    max_violations: 16,
                },
            )
            .unwrap();
        assert_eq!(on.consistent(), off.consistent(), "seed={seed}");
        for (a, b) in on.checks.iter().zip(&off.checks) {
            assert_eq!(
                a.holds, b.holds,
                "seed={seed} {} {}",
                a.relation_name, a.dep
            );
        }
    }
}

/// Repair is idempotent: repairing an already-consistent tuple costs zero
/// and changes nothing.
#[test]
fn repair_is_idempotent_on_consistent_tuples() {
    for seed in [1u64, 5, 9] {
        let w = feature_workload(FeatureSpec {
            n_features: 4,
            k_configs: 2,
            mandatory_ratio: 0.5,
            select_prob: 0.3,
            seed,
        });
        let t = Transformation::from_hir(w.hir.clone());
        for engine in [EngineKind::Search, EngineKind::Sat] {
            let out = t
                .enforce(&w.models, Shape::all(3), engine)
                .unwrap()
                .expect("consistent tuple repairs trivially");
            assert_eq!(out.cost, 0, "seed={seed} {engine:?}");
            for (orig, new) in w.models.iter().zip(&out.models) {
                assert!(orig.graph_eq(new), "seed={seed} {engine:?}");
            }
        }
    }
}

/// The deltas reported by a repair replay onto the originals to produce
/// exactly the repaired models.
#[test]
fn reported_deltas_replay() {
    let mut w = feature_workload(FeatureSpec {
        n_features: 4,
        k_configs: 2,
        mandatory_ratio: 0.5,
        select_prob: 0.4,
        seed: 77,
    });
    let t = Transformation::from_hir(w.hir.clone());
    inject(&mut w, Injection::NewMandatoryInFm);
    for engine in [EngineKind::Search, EngineKind::Sat] {
        let out = t
            .enforce(&w.models, Shape::of(&[0, 1]), engine)
            .unwrap()
            .expect("repairable");
        for ((orig, new), delta) in w.models.iter().zip(&out.models).zip(&out.deltas) {
            let mut replay = orig.clone();
            delta.apply(&mut replay).expect("delta applies");
            assert!(replay.graph_eq(new), "{engine:?}");
        }
    }
}

/// Search and SAT agree on minimal *weighted* tuple distances — PR 1
/// only differentially tested the uniform case. Also cross-checks the
/// reported cost against an independent `tuple_distance` recomputation
/// over the returned deltas, and runs the search engine under both
/// oracles (incremental and from-scratch).
#[test]
fn engines_agree_under_weighted_tuple_costs() {
    let injections = [
        Injection::NewMandatoryInFm,
        Injection::RenameInConfig { config: 0 },
        Injection::SelectEverywhere,
        Injection::SelectUnknown { config: 1 },
    ];
    let weights = vec![1u64, 3, 7];
    for seed in 0..4u64 {
        for (i, &injection) in injections.iter().enumerate() {
            let mut w = feature_workload(FeatureSpec {
                n_features: 3,
                k_configs: 2,
                mandatory_ratio: 0.5,
                select_prob: 0.3,
                seed: seed * 17 + i as u64,
            });
            let t = Transformation::from_hir(w.hir.clone());
            inject(&mut w, injection);
            let opts = RepairOptions {
                tuple: TupleCost::weighted(weights.clone()),
                max_cost: 40,
                ..RepairOptions::default()
            };
            let scratch_opts = RepairOptions {
                incremental_oracle: false,
                ..opts.clone()
            };
            let shape = Shape::all(3);
            let inc = t
                .enforce_with(&w.models, shape, EngineKind::Search, opts.clone())
                .expect("incremental search runs");
            let scr = t
                .enforce_with(&w.models, shape, EngineKind::Search, scratch_opts)
                .expect("scratch search runs");
            let sat = t
                .enforce_with(&w.models, shape, EngineKind::Sat, opts.clone())
                .expect("sat runs");
            let costs: Vec<Option<u64>> = [&inc, &scr, &sat]
                .iter()
                .map(|o| o.as_ref().map(|x| x.cost))
                .collect();
            assert_eq!(
                costs[0], costs[1],
                "seed={seed} {injection:?}: oracles disagree"
            );
            assert_eq!(
                costs[0], costs[2],
                "seed={seed} {injection:?}: search vs sat disagree"
            );
            for out in [&inc, &scr, &sat].into_iter().flatten() {
                assert!(
                    t.check(&out.models).unwrap().consistent(),
                    "seed={seed} {injection:?}"
                );
                // The reported weighted cost is the weighted tuple
                // distance from the *injected* tuple (the repair input).
                let recomputed = mmtf::dist::tuple_distance(
                    &w.models,
                    &out.models,
                    &CostModel::default(),
                    &TupleCost::weighted(weights.clone()),
                )
                .unwrap();
                assert_eq!(out.cost, recomputed, "seed={seed} {injection:?}");
            }
        }
    }
}

/// An explicit tuple weighting of the wrong arity is an error on both
/// engines, not a silently mispriced repair.
#[test]
fn mismatched_tuple_arity_is_rejected() {
    let w = feature_workload(FeatureSpec {
        n_features: 3,
        k_configs: 2,
        mandatory_ratio: 0.5,
        select_prob: 0.3,
        seed: 1,
    });
    let t = Transformation::from_hir(w.hir.clone());
    let opts = RepairOptions {
        tuple: TupleCost::weighted(vec![1, 100]), // arity 2 for a 3-tuple
        ..RepairOptions::default()
    };
    for engine in [EngineKind::Search, EngineKind::Sat] {
        let err = t
            .enforce_with(&w.models, Shape::all(3), engine, opts.clone())
            .unwrap_err();
        assert!(
            err.to_string().contains("arity"),
            "{engine:?}: unexpected error {err}"
        );
    }
}
