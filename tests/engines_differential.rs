//! Randomized differential testing of the two enforcement engines and
//! the checking engine, across seeded workloads and injections.

use mmtf::gen::{feature_workload, inject, FeatureSpec, Injection};
use mmtf::prelude::*;

/// Both engines agree on repairability and minimal cost across a grid of
/// random workloads; every repaired tuple re-checks as consistent and the
/// untouched models are bit-identical.
#[test]
fn engines_agree_across_random_workloads() {
    let injections = [
        Injection::NewMandatoryInFm,
        Injection::RenameInConfig { config: 0 },
        Injection::SelectEverywhere,
        Injection::SelectUnknown { config: 0 },
    ];
    for seed in 0..6u64 {
        for (i, &injection) in injections.iter().enumerate() {
            let mut w = feature_workload(FeatureSpec {
                n_features: 3 + (seed as usize % 2),
                k_configs: 2,
                mandatory_ratio: 0.4,
                select_prob: 0.4,
                seed: seed * 13 + i as u64,
            });
            let t = Transformation::from_hir(w.hir.clone());
            inject(&mut w, injection);
            let shape = Shape::all(3);
            let a = t
                .enforce(&w.models, shape, EngineKind::Search)
                .expect("search runs");
            let b = t
                .enforce(&w.models, shape, EngineKind::Sat)
                .expect("sat runs");
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!(
                        x.cost, y.cost,
                        "seed={seed} injection={injection:?}: minimal costs differ"
                    );
                    for out in [x, y] {
                        assert!(
                            t.check(&out.models).unwrap().consistent(),
                            "seed={seed} {injection:?}"
                        );
                        for m in &out.models {
                            assert!(mmtf::model::conformance::is_conformant(m));
                        }
                    }
                }
                (None, None) => {}
                _ => panic!(
                    "seed={seed} injection={injection:?}: engines disagree ({:?} vs {:?})",
                    a.as_ref().map(|o| o.cost),
                    b.as_ref().map(|o| o.cost)
                ),
            }
        }
    }
}

/// The checker's memoized and unmemoized modes agree on every directional
/// verdict across random (possibly inconsistent) workloads.
#[test]
fn memoization_is_observationally_equivalent() {
    for seed in 0..10u64 {
        let mut w = feature_workload(FeatureSpec {
            n_features: 6,
            k_configs: 3,
            mandatory_ratio: 0.3,
            select_prob: 0.5,
            seed,
        });
        if seed % 2 == 0 {
            inject(&mut w, Injection::SelectEverywhere);
        }
        let t = Transformation::from_hir(w.hir.clone());
        let on = t
            .check_with(
                &w.models,
                CheckOptions {
                    memoize: true,
                    max_violations: 16,
                },
            )
            .unwrap();
        let off = t
            .check_with(
                &w.models,
                CheckOptions {
                    memoize: false,
                    max_violations: 16,
                },
            )
            .unwrap();
        assert_eq!(on.consistent(), off.consistent(), "seed={seed}");
        for (a, b) in on.checks.iter().zip(&off.checks) {
            assert_eq!(
                a.holds, b.holds,
                "seed={seed} {} {}",
                a.relation_name, a.dep
            );
        }
    }
}

/// Repair is idempotent: repairing an already-consistent tuple costs zero
/// and changes nothing.
#[test]
fn repair_is_idempotent_on_consistent_tuples() {
    for seed in [1u64, 5, 9] {
        let w = feature_workload(FeatureSpec {
            n_features: 4,
            k_configs: 2,
            mandatory_ratio: 0.5,
            select_prob: 0.3,
            seed,
        });
        let t = Transformation::from_hir(w.hir.clone());
        for engine in [EngineKind::Search, EngineKind::Sat] {
            let out = t
                .enforce(&w.models, Shape::all(3), engine)
                .unwrap()
                .expect("consistent tuple repairs trivially");
            assert_eq!(out.cost, 0, "seed={seed} {engine:?}");
            for (orig, new) in w.models.iter().zip(&out.models) {
                assert!(orig.graph_eq(new), "seed={seed} {engine:?}");
            }
        }
    }
}

/// The deltas reported by a repair replay onto the originals to produce
/// exactly the repaired models.
#[test]
fn reported_deltas_replay() {
    let mut w = feature_workload(FeatureSpec {
        n_features: 4,
        k_configs: 2,
        mandatory_ratio: 0.5,
        select_prob: 0.4,
        seed: 77,
    });
    let t = Transformation::from_hir(w.hir.clone());
    inject(&mut w, Injection::NewMandatoryInFm);
    for engine in [EngineKind::Search, EngineKind::Sat] {
        let out = t
            .enforce(&w.models, Shape::of(&[0, 1]), engine)
            .unwrap()
            .expect("repairable");
        for ((orig, new), delta) in w.models.iter().zip(&out.models).zip(&out.deltas) {
            let mut replay = orig.clone();
            delta.apply(&mut replay).expect("delta applies");
            assert!(replay.graph_eq(new), "{engine:?}");
        }
    }
}
