//! Fault injection against the WAL-backed session store (ISSUE 6):
//!
//! * **torn writes** — cutting the journal at every record boundary
//!   and at offsets *inside* a record header / payload must recover
//!   exactly the longest committed prefix: fingerprint, status,
//!   printed models, and rendered journal all equal an in-memory
//!   reference session replayed to that prefix;
//! * **bit rot** — flipping any single byte of the store either still
//!   recovers a committed prefix (bitwise equal to the reference) or
//!   fails with a *typed* [`StoreError`]. There is no third outcome:
//!   recovery never silently diverges from what was committed.
//!
//! The WAL format is part of the store's public contract (documented
//! in `mmt_store`): an 8-byte magic, then per record a little-endian
//! `u32` payload length, a `u32` CRC-32, and the UTF-8 payload. The
//! harness re-parses that framing here so it can aim its faults.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mmtf::core::{JournalEntry, SessionOptions, Shape, SyncSession, SyncStatus, Transformation};
use mmtf::gen::{feature_workload, FeatureSpec, SessionScriptGen, SessionStep};
use mmtf::model::text::print_model;
use mmtf::model::Model;
use mmtf::prelude::{DomSet, PersistentSession, StoreError};
use mmtf::store::render_entry;

const WAL_HEADER: usize = 8;

fn fixture(seed: u64) -> (Arc<Transformation>, Vec<Model>) {
    let w = feature_workload(FeatureSpec {
        n_features: 5,
        k_configs: 2,
        mandatory_ratio: 0.4,
        select_prob: 0.4,
        seed,
    });
    let t = Transformation::from_sources(
        &mmtf::gen::transformation_source(2),
        &[mmtf::gen::CF_METAMODEL, mmtf::gen::FM_METAMODEL],
    )
    .unwrap();
    (Arc::new(t), w.models)
}

/// Everything observable about a session, for bitwise comparison.
#[derive(Debug, PartialEq)]
struct Snapshot {
    fingerprint: u64,
    status: SyncStatus,
    models: Vec<String>,
    journal: Vec<String>,
}

impl Snapshot {
    fn of(session: &SyncSession) -> Snapshot {
        Snapshot {
            fingerprint: session.fingerprint(),
            status: session.status(),
            models: session.models().iter().map(print_model).collect(),
            journal: session.journal().iter().map(render_entry).collect(),
        }
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmt-store-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Copies `src` (a committed store) to `dst`, substituting `wal` for
/// the journal bytes — the crash simulator.
fn clone_store(src: &Path, dst: &Path, wal: &[u8]) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst.join("seed")).unwrap();
    for entry in fs::read_dir(src.join("seed")).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join("seed").join(entry.file_name())).unwrap();
    }
    fs::write(dst.join("wal"), wal).unwrap();
    fs::copy(src.join("manifest"), dst.join("manifest")).unwrap();
}

/// Walks the WAL framing and returns the byte offset where each
/// record *ends* (so `ends[k]` = length of a journal holding exactly
/// `k + 1` records).
fn record_ends(wal: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = WAL_HEADER;
    while wal.len() - off >= 8 {
        let len = u32::from_le_bytes(wal[off..off + 4].try_into().unwrap()) as usize;
        assert!(wal.len() >= off + 8 + len, "committed WAL has a torn tail");
        off += 8 + len;
        ends.push(off);
    }
    assert_eq!(off, wal.len(), "trailing garbage in a committed WAL");
    ends
}

/// Drives a session through `steps` generated steps with a commit
/// after every step, returning the transformation, the committed
/// store directory, and the reference snapshot for every journal
/// prefix (`refs[k]` = the session after replaying `k` entries).
fn committed_store(
    tag: &str,
    seed: u64,
    steps: usize,
) -> (Arc<Transformation>, PathBuf, Vec<Snapshot>) {
    let (t, seed_models) = fixture(seed);
    let opts = SessionOptions::default();
    let mut session =
        SyncSession::with_options(Arc::clone(&t), &seed_models, opts.clone()).unwrap();
    let dir = scratch(tag);
    let mut store = PersistentSession::create(&dir, &session).unwrap();

    let targets = DomSet::from_iter([mmtf::deps::DomIdx(0), mmtf::deps::DomIdx(1)]);
    let mut gen = SessionScriptGen::new(targets, 3, seed.wrapping_mul(31).wrapping_add(7));
    for _ in 0..steps {
        match gen.next_step(session.models()) {
            SessionStep::Edit { model, op } => {
                session.apply(model, op).unwrap();
            }
            SessionStep::Repair { targets } => {
                let shape = Shape::from_targets(targets);
                session.repair(shape).unwrap();
            }
        }
        store.commit(&session).unwrap();
    }
    assert!(
        session.journal().len() >= 4,
        "fixture too quiet: only {} journal entries",
        session.journal().len()
    );

    // Reference: an uninterrupted in-memory session replayed to every
    // prefix of the committed journal.
    let entries: Vec<JournalEntry> = session.journal().to_vec();
    let mut refs = Vec::with_capacity(entries.len() + 1);
    let mut replayed =
        SyncSession::with_options(Arc::clone(&t), &seed_models, opts.clone()).unwrap();
    refs.push(Snapshot::of(&replayed));
    for entry in &entries {
        replayed.replay_entry(entry.clone()).unwrap();
        refs.push(Snapshot::of(&replayed));
    }
    assert_eq!(
        refs.last().unwrap(),
        &Snapshot::of(&session),
        "replay_entry does not reproduce the live session"
    );
    (t, dir, refs)
}

#[test]
fn every_truncation_recovers_the_longest_committed_prefix() {
    let (t, dir, refs) = committed_store("trunc", 11, 14);
    let wal = fs::read(dir.join("wal")).unwrap();
    let ends = record_ends(&wal);
    assert_eq!(ends.len() + 1, refs.len());

    // Cut points: every record boundary, plus offsets inside each
    // record's header and payload, plus the last byte before a
    // boundary (a maximally torn record).
    let mut cuts: Vec<usize> = vec![WAL_HEADER, wal.len()];
    let mut start = WAL_HEADER;
    for &end in &ends {
        cuts.extend([
            start + 3,
            start + 8,
            start + (end - start) / 2,
            end - 1,
            end,
        ]);
        start = end;
    }
    cuts.retain(|&c| (WAL_HEADER..=wal.len()).contains(&c));
    cuts.sort_unstable();
    cuts.dedup();

    let crash = scratch("trunc-crash");
    for cut in cuts {
        // A cut at offset `cut` commits every record that ends at or
        // before it; anything after is a torn tail.
        let committed = ends.iter().take_while(|&&e| e <= cut).count();
        clone_store(&dir, &crash, &wal[..cut]);
        let (_, recovered) = PersistentSession::open(&crash, &t, SessionOptions::default())
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        assert_eq!(
            Snapshot::of(&recovered),
            refs[committed],
            "cut at {cut}: recovered state is not the {committed}-entry prefix"
        );
        // Recovery must also have repaired the file on disk: reopening
        // the *same* store sees the identical committed prefix.
        let (_, again) = PersistentSession::open(&crash, &t, SessionOptions::default()).unwrap();
        assert_eq!(
            Snapshot::of(&again),
            refs[committed],
            "cut at {cut}: second open diverged"
        );
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&crash);
}

#[test]
fn every_byte_flip_recovers_a_prefix_or_fails_typed() {
    let (t, dir, refs) = committed_store("flip", 23, 12);
    let wal = fs::read(dir.join("wal")).unwrap();
    let ends = record_ends(&wal);

    let crash = scratch("flip-crash");
    let mut recovered_full = 0usize;
    let mut recovered_prefix = 0usize;
    let mut rejected = 0usize;
    for off in 0..wal.len() {
        let mut bytes = wal.clone();
        bytes[off] ^= 0x40;
        clone_store(&dir, &crash, &bytes);
        match PersistentSession::open(&crash, &t, SessionOptions::default()) {
            Ok((_, session)) => {
                // A flip may shrink the committed prefix (e.g. by
                // inflating a length field into a torn tail) but must
                // never invent state: whatever came back has to be
                // bitwise equal to *some* committed prefix of the
                // reference — and at least every record before the
                // flipped byte.
                let k = session.journal().len();
                let intact = ends.iter().take_while(|&&e| e <= off).count();
                assert!(
                    k >= intact,
                    "flip at {off}: lost {} committed records before the fault",
                    intact - k
                );
                assert_eq!(
                    Snapshot::of(&session),
                    refs[k],
                    "flip at {off}: recovered state diverges from the {k}-entry prefix"
                );
                if k == ends.len() {
                    recovered_full += 1;
                } else {
                    recovered_prefix += 1;
                }
            }
            Err(
                StoreError::Corrupt { .. }
                | StoreError::Version { .. }
                | StoreError::ShortRead { .. },
            ) => rejected += 1,
            Err(other) => panic!("flip at {off}: untyped store failure: {other}"),
        }
    }
    // The harness must actually exercise both outcomes (and magic
    // flips must not slip through as full recoveries).
    assert!(rejected > 0, "no flip was ever rejected");
    assert!(
        recovered_prefix > 0,
        "no flip ever shortened the committed prefix"
    );
    assert!(
        recovered_full < wal.len(),
        "every flip recovered in full — faults are not landing"
    );
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&crash);
}

#[test]
fn seed_and_manifest_rot_is_typed_not_silent() {
    let (t, dir, _) = committed_store("rot", 5, 8);

    // Garbage in a seed file: typed corruption, not a panic.
    let seed0 = dir.join("seed").join("0.seed");
    let mut text = fs::read_to_string(&seed0).unwrap();
    text.push_str("+ @0 : class#99\n");
    fs::write(&seed0, text).unwrap();
    match PersistentSession::open(&dir, &t, SessionOptions::default()) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("rotten seed: expected Corrupt, got {other:?}"),
    }

    // A store written by a different spec refuses to open.
    let manifest = fs::read_to_string(dir.join("manifest")).unwrap();
    let forged: String = manifest
        .lines()
        .map(|l| {
            if let Some(rest) = l.strip_prefix("spec ") {
                format!("spec {}\n", rest.chars().rev().collect::<String>())
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    fs::write(dir.join("manifest"), forged).unwrap();
    match PersistentSession::open(&dir, &t, SessionOptions::default()) {
        Err(StoreError::SpecMismatch { .. }) => {}
        other => panic!("forged spec: expected SpecMismatch, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}
