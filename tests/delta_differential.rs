//! Differential property testing of the incremental checker: across
//! seeded random edit sequences from `mmt-gen`, a [`DeltaChecker`]
//! tracking the edits one by one must agree with a from-scratch
//! [`Checker`] rebuilt on the edited tuple — same per-check verdicts,
//! same violation multiset — after *every* edit.

use mmtf::check::{CheckOptions, Checker, DeltaChecker};
use mmtf::deps::DomIdx;
use mmtf::dist::{Delta, EditOp};
use mmtf::gen::scenario::scenario_named;
use mmtf::gen::{feature_workload, random_edits, FeatureSpec};
use mmtf::model::text::{parse_metamodel, parse_model};
use mmtf::model::Model;
use mmtf::qvtr::{parse_and_resolve, Hir};

const OPTS: CheckOptions = CheckOptions {
    memoize: true,
    max_violations: usize::MAX,
};

/// Incremental and from-scratch reports agree on `models`.
fn assert_agrees(checker: &DeltaChecker, models: &[Model], ctx: &str) {
    let scratch = Checker::with_options(checker.hir(), models, OPTS)
        .unwrap()
        .check()
        .unwrap();
    let inc = checker.report();
    assert_eq!(inc.checks.len(), scratch.checks.len(), "{ctx}");
    for (a, b) in inc.checks.iter().zip(&scratch.checks) {
        assert_eq!(a.relation, b.relation, "{ctx}");
        assert_eq!(a.dep, b.dep, "{ctx}");
        assert_eq!(
            a.holds, b.holds,
            "{ctx}: {} {} disagree\nincremental:\n{inc}\nscratch:\n{scratch}",
            a.relation_name, a.dep
        );
        let mut va: Vec<String> = a.violations.iter().map(|v| v.to_string()).collect();
        let mut vb: Vec<String> = b.violations.iter().map(|v| v.to_string()).collect();
        va.sort();
        vb.sort();
        assert_eq!(va, vb, "{ctx}: {} {}", a.relation_name, a.dep);
    }
    // The checker's own tuple must mirror the externally edited one.
    for (x, y) in checker.models().iter().zip(models) {
        assert!(x.graph_eq(y), "{ctx}: model tuples diverged");
    }
}

/// Runs one random edit sequence against `target`, checking agreement
/// after every single op.
fn run_sequence(
    hir: &std::sync::Arc<Hir>,
    models: &[Model],
    target: usize,
    n_edits: usize,
    seed: u64,
) {
    let mut models = models.to_vec();
    let mut checker = DeltaChecker::with_options(hir, &models, OPTS).unwrap();
    let edits = random_edits(&models[target], n_edits, seed);
    for (i, op) in edits.iter().enumerate() {
        checker.apply(DomIdx(target as u8), op).unwrap();
        let mut mirror = Delta::new();
        mirror.push(*op);
        mirror.apply(&mut models[target]).unwrap();
        assert_agrees(
            &checker,
            &models,
            &format!("seed={seed} target={target} edit {i} ({op})"),
        );
    }
}

/// ≥100 random edit sequences over the paper's feature workload (the
/// ISSUE 2 acceptance bar), verified edit by edit.
#[test]
fn delta_checker_matches_scratch_on_random_feature_edits() {
    let mut sequences = 0u32;
    for seed in 0..12u64 {
        let w = feature_workload(FeatureSpec {
            n_features: 4 + (seed as usize % 3),
            k_configs: 2,
            mandatory_ratio: 0.4,
            select_prob: 0.4,
            seed,
        });
        for target in 0..w.models.len() {
            for n_edits in [2usize, 5, 8] {
                run_sequence(
                    &w.hir,
                    &w.models,
                    target,
                    n_edits,
                    seed * 1000 + target as u64 * 10 + n_edits as u64,
                );
                sequences += 1;
            }
        }
    }
    assert!(sequences >= 100, "only {sequences} sequences exercised");
}

/// The same property over a reference-heavy metamodel, so link edits
/// (and deletion scrub) go through the incremental path too.
#[test]
fn delta_checker_matches_scratch_on_random_link_edits() {
    let uml = parse_metamodel(
        "metamodel UML { class Class { attr name: Str; ref attrs: Attribute [0..*] containment; } class Attribute { attr name: Str; } }",
    )
    .unwrap();
    let rdb = parse_metamodel(
        "metamodel RDB { class Table { attr name: Str; ref cols: Column [0..*] containment; } class Column { attr name: Str; } }",
    )
    .unwrap();
    let src = r#"
transformation C2T(uml : UML, rdb : RDB) {
  top relation AttrToCol {
    cn, an : Str;
    domain uml c : Class { name = cn, attrs = a : Attribute { name = an } };
    domain rdb t : Table { name = cn, cols = col : Column { name = an } };
  }
}
"#;
    let hir = std::sync::Arc::new(parse_and_resolve(src, &[uml.clone(), rdb.clone()]).unwrap());
    let m_uml = parse_model(
        r#"model u : UML {
            a1 = Attribute { name = "id" }
            a2 = Attribute { name = "age" }
            c1 = Class { name = "Person", attrs = [a1, a2] }
            c2 = Class { name = "Order", attrs = [] }
        }"#,
        &uml,
    )
    .unwrap();
    let m_rdb = parse_model(
        r#"model r : RDB {
            col1 = Column { name = "id" }
            col2 = Column { name = "age" }
            t1 = Table { name = "Person", cols = [col1, col2] }
        }"#,
        &rdb,
    )
    .unwrap();
    let models = [m_uml, m_rdb];
    for seed in 0..10u64 {
        for target in 0..2usize {
            run_sequence(&hir, &models, target, 10, seed * 31 + target as u64);
        }
    }
}

/// The scenario sweep: the incremental ≡ from-scratch property over
/// one named corpus scenario, seeded random edit sequences against
/// every model of the tuple, agreement checked after every single op.
fn scenario_sweep(name: &str) {
    let sc = scenario_named(name).expect("known scenario");
    for seed in 0..4u64 {
        let w = sc.workload(seed);
        for target in 0..w.models.len() {
            run_sequence(
                &w.hir,
                &w.models,
                target,
                6,
                seed * 101 + target as u64 * 17 + 5,
            );
        }
    }
}

#[test]
fn scenario_fm2cfs_incremental_matches_scratch() {
    scenario_sweep("fm2cfs");
}

#[test]
fn scenario_company_incremental_matches_scratch() {
    scenario_sweep("company");
}

#[test]
fn scenario_class2rdbms_incremental_matches_scratch() {
    scenario_sweep("class2rdbms");
}

/// Batch application: a whole [`Delta`] applied via `apply_delta`
/// agrees with the scratch checker on the final state.
#[test]
fn delta_checker_applies_whole_scripts() {
    let w = feature_workload(FeatureSpec {
        n_features: 6,
        k_configs: 3,
        mandatory_ratio: 0.4,
        select_prob: 0.4,
        seed: 5,
    });
    for target in 0..w.models.len() {
        let mut models = w.models.clone();
        let mut checker = DeltaChecker::with_options(&w.hir, &models, OPTS).unwrap();
        let mut script = Delta::new();
        for op in random_edits(&models[target], 12, 77 + target as u64) {
            script.push(op);
        }
        checker.apply_delta(DomIdx(target as u8), &script).unwrap();
        script.apply(&mut models[target]).unwrap();
        assert_agrees(&checker, &models, &format!("batch target={target}"));
        // Sanity on the dist-side read-set helper: the script's write-set
        // is non-empty and every written object is in the edited model's
        // id space.
        let touched = script.touched_objs();
        assert!(!touched.is_empty());
        for o in touched {
            assert!((o.index()) < models[target].id_bound());
        }
    }
}

/// The incremental oracle's skip accounting: edits to one configuration
/// must leave the checks that never read it untouched.
#[test]
fn edits_skip_unrelated_checks() {
    let w = feature_workload(FeatureSpec {
        n_features: 6,
        k_configs: 3,
        mandatory_ratio: 0.5,
        select_prob: 0.4,
        seed: 11,
    });
    let mut checker = DeltaChecker::with_options(&w.hir, &w.models, OPTS).unwrap();
    // Rename a feature in cf1: MF fm→cf2, MF fm→cf3, OF cf2→fm and
    // OF cf3→fm never read cf1.
    let edits = random_edits(&w.models[0], 6, 99);
    for op in &edits {
        checker.apply(DomIdx(0), op).unwrap();
    }
    let stats = checker.delta_stats();
    assert!(stats.edits > 0);
    assert!(
        stats.checks_skipped >= stats.edits * 4,
        "expected ≥4 skipped checks per cf1 edit, got {stats:?}"
    );
}

/// The §3 repair loop driven entirely through the incremental checker:
/// inject, watch it flag the violation, repair, watch it recover —
/// against EditOps produced by `Delta::between` (the dist-side diff).
#[test]
fn delta_checker_tracks_diff_scripts() {
    let w = feature_workload(FeatureSpec {
        n_features: 5,
        k_configs: 2,
        mandatory_ratio: 0.5,
        select_prob: 0.3,
        seed: 21,
    });
    let mut broken = w.models.clone();
    let feature_fm = w.fm.class_named("Feature").unwrap();
    let id = broken[2].add(feature_fm).unwrap();
    broken[2]
        .set_attr_named(id, "name", mmtf::model::Value::str("$new"))
        .unwrap();
    broken[2]
        .set_attr_named(id, "mandatory", mmtf::model::Value::Bool(true))
        .unwrap();

    let mut checker = DeltaChecker::with_options(&w.hir, &w.models, OPTS).unwrap();
    assert!(checker.consistent());
    let break_script = Delta::between(&w.models[2], &broken[2]).unwrap();
    checker.apply_delta(DomIdx(2), &break_script).unwrap();
    assert!(!checker.consistent());
    assert_agrees(&checker, &broken, "after injected diff");
    // Count violating bindings through the search-facing API.
    let mut violations = 0;
    checker.for_each_violation(usize::MAX, |_, _, _| violations += 1);
    assert!(violations > 0);
    // Undo via the reverse diff.
    let undo = Delta::between(&broken[2], &w.models[2]).unwrap();
    checker.apply_delta(DomIdx(2), &undo).unwrap();
    assert!(checker.consistent());
    assert_agrees(&checker, &w.models, "after undo diff");
    assert!(matches!(
        break_script.ops()[0],
        EditOp::AddObj { .. } | EditOp::DelObj { .. } | EditOp::SetAttr { .. }
    ));
}
