//! Concurrency coverage for the multi-tenant [`SyncHub`] (ISSUE 5):
//!
//! * N threads drive **distinct** named sessions over one shared
//!   `Arc<Transformation>` — every session's outcome (fingerprint,
//!   status, journal, printed tuple) is byte-identical to a
//!   single-threaded reference run of the same script;
//! * open/close races on one name resolve to exactly one winner per
//!   round, and a handle closed under a client keeps working.
//!
//! The suite is run under `RUST_TEST_THREADS=4` in CI (the
//! `concurrent-tests` job), stacking test-level parallelism on top of
//! the threads spawned here.

use mmtf::core::{HubError, SyncHub, Transformation};
use mmtf::gen::{feature_workload, FeatureSpec, SessionScriptGen, SessionStep};
use mmtf::model::text::print_model;
use mmtf::model::Model;
use mmtf::prelude::{DomIdx, DomSet, Shape};
use std::sync::Arc;

const N_SESSIONS: usize = 8;

fn fixture() -> (Transformation, Vec<Model>) {
    let t = Transformation::from_sources(
        &mmtf::gen::transformation_source(2),
        &[mmtf::gen::CF_METAMODEL, mmtf::gen::FM_METAMODEL],
    )
    .unwrap();
    let w = feature_workload(FeatureSpec {
        n_features: 5,
        ..FeatureSpec::default()
    });
    (t, w.models)
}

/// One deterministic per-session workload: seeded drift with repair
/// checkpoints, exactly what a client would pump through the serve
/// protocol. Returns the session's observable outcome.
fn drive(session: &mut mmtf::core::SyncSession, seed: u64) -> (u64, bool, usize, Vec<String>) {
    let targets = DomSet::from_iter([DomIdx(0), DomIdx(1)]);
    let mut gen = SessionScriptGen::new(targets, 3, seed);
    for _ in 0..12 {
        match gen.next_step(session.models()) {
            SessionStep::Edit { model, op } => {
                session.apply(model, op).unwrap();
            }
            SessionStep::Repair { targets } => {
                let _ = session.repair(Shape::from_targets(targets)).unwrap();
            }
        }
    }
    (
        session.fingerprint(),
        session.status().consistent,
        session.journal().len(),
        session.models().iter().map(print_model).collect(),
    )
}

/// N threads, N distinct sessions, one shared transformation: results
/// equal the single-threaded reference byte for byte.
#[test]
fn concurrent_sessions_match_single_threaded_reference() {
    let (t, models) = fixture();

    // Reference pass: the same N scripts, driven sequentially.
    let reference: Vec<_> = (0..N_SESSIONS)
        .map(|i| {
            let mut session = t.session(&models).unwrap();
            drive(&mut session, 1000 + i as u64)
        })
        .collect();

    let hub = Arc::new(SyncHub::new());
    let shared = hub.register("F", t).unwrap();
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N_SESSIONS)
            .map(|i| {
                let hub = Arc::clone(&hub);
                let models = &models;
                s.spawn(move || {
                    let name = format!("client-{i}");
                    let handle = hub.open(&name, "F", models).unwrap();
                    handle.with(|session| drive(session, 1000 + i as u64))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (got, want)) in outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(got, want, "session {i} diverged from the reference run");
    }
    assert_eq!(hub.len(), N_SESSIONS);
    // Every session shares the one registered transformation.
    for name in hub.list() {
        let h = hub.get(&name).unwrap();
        assert!(Arc::ptr_eq(h.transformation(), &shared));
    }
}

/// Racing opens of one name admit exactly one winner; racing closes
/// admit exactly one closer; a closed handle keeps serving its holder.
#[test]
fn open_close_races_resolve_to_one_winner() {
    let (t, models) = fixture();
    let hub = Arc::new(SyncHub::new());
    hub.register("F", t).unwrap();

    for round in 0..6 {
        let opened: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let hub = Arc::clone(&hub);
                    let models = &models;
                    s.spawn(move || match hub.open("contested", "F", models) {
                        Ok(_) => true,
                        Err(HubError::DuplicateSession(_)) => false,
                        Err(e) => panic!("unexpected open error: {e}"),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&won| won)
                .count()
        });
        assert_eq!(opened, 1, "round {round}: exactly one open wins");
        assert_eq!(hub.list(), ["contested"]);

        let survivor = hub.get("contested").unwrap();
        let closed: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let hub = Arc::clone(&hub);
                    s.spawn(move || match hub.close("contested") {
                        Ok(_) => true,
                        Err(HubError::UnknownSession(_)) => false,
                        Err(e) => panic!("unexpected close error: {e}"),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&won| won)
                .count()
        });
        assert_eq!(closed, 1, "round {round}: exactly one close wins");
        assert!(hub.is_empty());
        // The drained handle still answers after its slot is gone.
        assert!(survivor.with(|session| session.status().consistent));
    }
}
