//! Concurrency coverage for the multi-tenant [`SyncHub`] (ISSUE 5):
//!
//! * N threads drive **distinct** named sessions over one shared
//!   `Arc<Transformation>` — every session's outcome (fingerprint,
//!   status, journal, printed tuple) is byte-identical to a
//!   single-threaded reference run of the same script;
//! * open/close races on one name resolve to exactly one winner per
//!   round, and a handle closed under a client keeps working.
//!
//! The suite is run under `RUST_TEST_THREADS=4` in CI (the
//! `concurrent-tests` job), stacking test-level parallelism on top of
//! the threads spawned here.

use mmtf::core::{HubError, SessionOptions, SyncHub, Transformation};
use mmtf::gen::{feature_workload, FeatureSpec, SessionScriptGen, SessionStep};
use mmtf::model::text::print_model;
use mmtf::model::Model;
use mmtf::prelude::{DomIdx, DomSet, Shape};
use mmtf::store::HubStore;
use std::sync::Arc;

const N_SESSIONS: usize = 8;

fn fixture() -> (Transformation, Vec<Model>) {
    let t = Transformation::from_sources(
        &mmtf::gen::transformation_source(2),
        &[mmtf::gen::CF_METAMODEL, mmtf::gen::FM_METAMODEL],
    )
    .unwrap();
    let w = feature_workload(FeatureSpec {
        n_features: 5,
        ..FeatureSpec::default()
    });
    (t, w.models)
}

/// One deterministic per-session workload: seeded drift with repair
/// checkpoints, exactly what a client would pump through the serve
/// protocol. Returns the session's observable outcome.
fn drive(session: &mut mmtf::core::SyncSession, seed: u64) -> (u64, bool, usize, Vec<String>) {
    let targets = DomSet::from_iter([DomIdx(0), DomIdx(1)]);
    let mut gen = SessionScriptGen::new(targets, 3, seed);
    for _ in 0..12 {
        match gen.next_step(session.models()) {
            SessionStep::Edit { model, op } => {
                session.apply(model, op).unwrap();
            }
            SessionStep::Repair { targets } => {
                let _ = session.repair(Shape::from_targets(targets)).unwrap();
            }
        }
    }
    (
        session.fingerprint(),
        session.status().consistent,
        session.journal().len(),
        session.models().iter().map(print_model).collect(),
    )
}

/// N threads, N distinct sessions, one shared transformation: results
/// equal the single-threaded reference byte for byte.
#[test]
fn concurrent_sessions_match_single_threaded_reference() {
    let (t, models) = fixture();

    // Reference pass: the same N scripts, driven sequentially.
    let reference: Vec<_> = (0..N_SESSIONS)
        .map(|i| {
            let mut session = t.session(&models).unwrap();
            drive(&mut session, 1000 + i as u64)
        })
        .collect();

    let hub = Arc::new(SyncHub::new());
    let shared = hub.register("F", t).unwrap();
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N_SESSIONS)
            .map(|i| {
                let hub = Arc::clone(&hub);
                let models = &models;
                s.spawn(move || {
                    let name = format!("client-{i}");
                    let handle = hub.open(&name, "F", models).unwrap();
                    handle.with(|session| drive(session, 1000 + i as u64))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (got, want)) in outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(got, want, "session {i} diverged from the reference run");
    }
    assert_eq!(hub.len(), N_SESSIONS);
    // Every session shares the one registered transformation.
    for name in hub.list() {
        let h = hub.get(&name).unwrap();
        assert!(Arc::ptr_eq(h.transformation(), &shared));
    }
}

/// Racing opens of one name admit exactly one winner; racing closes
/// admit exactly one closer; a closed handle keeps serving its holder.
#[test]
fn open_close_races_resolve_to_one_winner() {
    let (t, models) = fixture();
    let hub = Arc::new(SyncHub::new());
    hub.register("F", t).unwrap();

    for round in 0..6 {
        let opened: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let hub = Arc::clone(&hub);
                    let models = &models;
                    s.spawn(move || match hub.open("contested", "F", models) {
                        Ok(_) => true,
                        Err(HubError::DuplicateSession(_)) => false,
                        Err(e) => panic!("unexpected open error: {e}"),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&won| won)
                .count()
        });
        assert_eq!(opened, 1, "round {round}: exactly one open wins");
        assert_eq!(hub.list(), ["contested"]);

        let survivor = hub.get("contested").unwrap();
        let closed: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let hub = Arc::clone(&hub);
                    s.spawn(move || match hub.close("contested") {
                        Ok(_) => true,
                        Err(HubError::UnknownSession(_)) => false,
                        Err(e) => panic!("unexpected close error: {e}"),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&won| won)
                .count()
        });
        assert_eq!(closed, 1, "round {round}: exactly one close wins");
        assert!(hub.is_empty());
        // The drained handle still answers after its slot is gone.
        assert!(survivor.with(|session| session.status().consistent));
    }
}

/// Closing a session *while* its holder is mid-repair must not perturb
/// the repair outcome: the worker's full drive (edits + repair
/// checkpoints) stays byte-identical to a single-threaded reference run
/// even when the hub drops the slot under it. Mirrored in the loomlite
/// suite (`close_while_with_keeps_the_session_usable`), which explores
/// the same window exhaustively on a smaller fixture.
#[test]
fn close_while_repair_keeps_the_survivor_byte_identical() {
    let (t, models) = fixture();
    let hub = Arc::new(SyncHub::new());
    let shared = hub.register("F", t).unwrap();

    for round in 0..4u64 {
        let seed = 500 + round;
        let reference = {
            let mut session = shared.session(&models).unwrap();
            drive(&mut session, seed)
        };

        let handle = hub.open("contested", "F", &models).unwrap();
        let outcome = std::thread::scope(|s| {
            let worker = {
                let handle = Arc::clone(&handle);
                s.spawn(move || handle.with(|session| drive(session, seed)))
            };
            let closer = {
                let hub = Arc::clone(&hub);
                s.spawn(move || hub.close("contested").is_ok())
            };
            assert!(closer.join().unwrap(), "close must find the session");
            worker.join().unwrap()
        });
        assert_eq!(
            outcome, reference,
            "round {round}: close-under-repair perturbed the session"
        );
        assert!(hub.is_empty());
    }
}

/// Restoring a snapshot into a hub whose *other* sessions are live and
/// being driven: the restore adopts exactly the persisted sessions at
/// their persisted states, the live session's outcome stays
/// byte-identical to an undisturbed reference, and the hub ends with
/// the union. Mirrored in the loomlite suite
/// (`snapshot_enumeration_vs_concurrent_open`), which explores the
/// registry-walk-vs-insert window exhaustively.
#[test]
fn restore_from_while_sessions_are_driven() {
    let (t, models) = fixture();
    let dir = std::env::temp_dir().join(format!("mmt-hub-restore-race-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Build the snapshot: two sessions at distinct, known states.
    let source = SyncHub::new();
    source.register("F", t.clone()).unwrap();
    let mut persisted = Vec::new();
    for i in 0..2u64 {
        let name = format!("stored-{i}");
        let handle = source.open(&name, "F", &models).unwrap();
        let outcome = handle.with(|session| drive(session, 2000 + i));
        persisted.push((name, outcome));
    }
    source.persist_to(&dir).unwrap();

    let reference = {
        let mut session = t.session(&models).unwrap();
        drive(&mut session, 3000)
    };

    let hub = Arc::new(SyncHub::new());
    hub.register("F", t).unwrap();
    let live = hub.open("live", "F", &models).unwrap();
    let (live_outcome, adopted) = std::thread::scope(|s| {
        let driver = {
            let live = Arc::clone(&live);
            s.spawn(move || live.with(|session| drive(session, 3000)))
        };
        let restorer = {
            let hub = Arc::clone(&hub);
            let dir = dir.clone();
            s.spawn(move || hub.restore_from(&dir, &SessionOptions::default()).unwrap())
        };
        (driver.join().unwrap(), restorer.join().unwrap())
    });

    assert_eq!(
        live_outcome, reference,
        "restore disturbed the live session"
    );
    assert_eq!(adopted.len(), persisted.len());
    for (name, outcome) in &persisted {
        let handle = hub.get(name).unwrap();
        let restored = handle.with(|session| {
            (
                session.fingerprint(),
                session.status().consistent,
                session.journal().len(),
                session.models().iter().map(print_model).collect::<Vec<_>>(),
            )
        });
        assert_eq!(&restored, outcome, "{name} restored to a different state");
    }
    let mut names = hub.list();
    names.sort();
    assert_eq!(names, ["live", "stored-0", "stored-1"]);
    std::fs::remove_dir_all(&dir).ok();
}

/// The poisoning policy (see [`SessionHandle::lock`]'s rustdoc): a
/// client panicking inside `with` — after completed session calls —
/// leaves the fingerprint/journal replay invariant intact. Proven
/// differentially: a fresh session replayed from the survivor's seed
/// tuple + journal reproduces its fingerprint, journal length, and
/// printed models byte for byte.
///
/// [`SessionHandle::lock`]: mmtf::core::SessionHandle::lock
#[test]
fn panic_inside_with_leaves_a_replayable_session() {
    let (t, models) = fixture();
    let hub = Arc::new(SyncHub::new());
    let shared = hub.register("F", t).unwrap();
    let handle = hub.open("survivor", "F", &models).unwrap();
    handle.with(|session| drive(session, 77));

    // The client applies one more committed edit, then dies before
    // returning — the mutex poisons, the session must not.
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle.with(|session| {
            let targets = DomSet::from_iter([DomIdx(0), DomIdx(1)]);
            let mut gen = SessionScriptGen::new(targets, 3, 78);
            loop {
                match gen.next_step(session.models()) {
                    SessionStep::Edit { model, op } => {
                        session.apply(model, op).unwrap();
                        break;
                    }
                    SessionStep::Repair { .. } => continue,
                }
            }
            panic!("client bug after a committed edit");
        })
    }));
    assert!(unwound.is_err(), "the seeded client panic must propagate");

    // The handle recovers, and the survivor's state replays exactly.
    let (fp, journal, seed, printed) = handle.with(|session| {
        (
            session.fingerprint(),
            session.journal().to_vec(),
            session.seed_models().unwrap(),
            session.models().iter().map(print_model).collect::<Vec<_>>(),
        )
    });
    let mut fresh = shared.session(&seed).unwrap();
    for entry in journal {
        fresh.replay_entry(entry).unwrap();
    }
    assert_eq!(fresh.fingerprint(), fp, "replayed fingerprint diverged");
    assert_eq!(
        fresh.models().iter().map(print_model).collect::<Vec<_>>(),
        printed,
        "replayed models diverged"
    );
    // Still fully usable: drive it further and repair to consistency.
    let consistent = handle.with(|session| {
        let targets = DomSet::from_iter([DomIdx(0), DomIdx(1)]);
        let _ = session.repair(Shape::from_targets(targets)).unwrap();
        session.status().consistent
    });
    assert!(consistent, "survivor must repair to consistency");
}
