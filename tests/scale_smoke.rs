//! Scale smoke tests: the checking engine handles workloads well beyond
//! the paper's illustrative sizes, and the engines stay within sane
//! budgets at moderate repair scales.

use mmtf::gen::{feature_workload, inject, FeatureSpec, Injection};
use mmtf::prelude::*;
use std::time::Instant;

#[test]
fn checking_scales_to_hundreds_of_features() {
    let w = feature_workload(FeatureSpec {
        n_features: 300,
        k_configs: 4,
        mandatory_ratio: 0.3,
        select_prob: 0.4,
        seed: 1,
    });
    let t = Transformation::from_hir(w.hir.clone());
    let start = Instant::now();
    let report = t.check(&w.models).unwrap();
    let elapsed = start.elapsed();
    assert!(report.consistent());
    // Generous bound: a laptop-scale budget even in debug builds.
    assert!(
        elapsed.as_secs() < 30,
        "checking 300 features x 4 configs took {elapsed:?}"
    );
}

#[test]
fn sat_repair_handles_moderate_scopes() {
    let mut w = feature_workload(FeatureSpec {
        n_features: 12,
        k_configs: 2,
        mandatory_ratio: 0.3,
        select_prob: 0.4,
        seed: 2,
    });
    let t = Transformation::from_hir(w.hir.clone());
    inject(&mut w, Injection::NewMandatoryInFm);
    let out = t
        .enforce(&w.models, Shape::of(&[0, 1]), EngineKind::Sat)
        .unwrap()
        .expect("repairable");
    assert!(t.check(&out.models).unwrap().consistent());
}

#[test]
fn many_configurations() {
    // The paper's k-ary scenario with k = 6 configurations.
    let k = 6;
    let mut w = feature_workload(FeatureSpec {
        n_features: 6,
        k_configs: k,
        mandatory_ratio: 0.4,
        select_prob: 0.4,
        seed: 3,
    });
    let t = Transformation::from_hir(w.hir.clone());
    assert!(t.check(&w.models).unwrap().consistent());
    inject(&mut w, Injection::NewMandatoryInFm);
    // Repairing all k configurations at once. The SAT engine is the one
    // built for this scale (6 interdependent targets) — exactly why the
    // paper routes enforcement through a model finder.
    let shape = Shape::of(&(0..k).collect::<Vec<_>>());
    let out = t
        .enforce(&w.models, shape, EngineKind::Sat)
        .unwrap()
        .expect("repairable");
    assert!(t.check(&out.models).unwrap().consistent());
    // Each configuration was touched at most twice (add + name).
    for d in &out.deltas[..k] {
        assert!(d.len() <= 2);
    }
}
