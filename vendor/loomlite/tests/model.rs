//! Self-tests: the checker must pass correct models across every
//! interleaving and *catch* seeded concurrency bugs (lost update, deadlock).

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::Arc;

use loomlite::sync::atomic::{AtomicUsize, Ordering};
use loomlite::sync::{Mutex, RwLock};
use loomlite::{thread, Builder};

#[test]
fn mutex_counter_invariant_holds_everywhere() {
    let iters = loomlite::explore(|| {
        let c = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = c.clone();
            handles.push(thread::spawn(move || {
                let mut g = c.lock().expect("model mutex does not poison");
                *g += 1;
            }));
        }
        for h in handles {
            h.join().expect("model threads do not panic");
        }
        let v = *c.lock().expect("model mutex does not poison");
        if v != 2 {
            loomlite::fail("increments lost");
        }
    });
    assert!(iters >= 2, "expected multiple interleavings, got {iters}");
}

#[test]
fn lost_update_is_caught() {
    // Non-atomic read-modify-write over an atomic cell: the classic lost
    // update.  Some interleaving must end with count == 1, and the model
    // must report it.
    let res = loomlite::check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = c.clone();
            handles.push(thread::spawn(move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().expect("model threads do not panic");
        }
        if c.load(Ordering::SeqCst) != 2 {
            loomlite::fail("lost update");
        }
    });
    let msg = res.expect_err("the lost update must be found");
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

#[test]
fn abba_deadlock_is_caught() {
    let res = loomlite::check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let h = thread::spawn(move || {
            let _ga = a2.lock().expect("model mutex does not poison");
            let _gb = b2.lock().expect("model mutex does not poison");
        });
        {
            let _gb = b.lock().expect("model mutex does not poison");
            let _ga = a.lock().expect("model mutex does not poison");
        }
        h.join().expect("model threads do not panic");
    });
    let msg = res.expect_err("the AB-BA deadlock must be found");
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn rwlock_readers_coexist_writers_exclude() {
    loomlite::explore(|| {
        let l = Arc::new(RwLock::new(0u32));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let l = l.clone();
            readers.push(thread::spawn(move || {
                *l.read().expect("model rwlock does not poison")
            }));
        }
        let lw = l.clone();
        let w = thread::spawn(move || {
            *lw.write().expect("model rwlock does not poison") += 1;
        });
        for r in readers {
            let seen = r.join().expect("model threads do not panic");
            // A reader sees the value before or after the single write.
            if seen > 1 {
                loomlite::fail("reader saw torn state");
            }
        }
        w.join().expect("model threads do not panic");
        if *l.read().expect("model rwlock does not poison") != 1 {
            loomlite::fail("write lost");
        }
    });
}

#[test]
fn preemption_bound_zero_is_sequential() {
    let b = Builder {
        preemption_bound: Some(0),
        ..Builder::default()
    };
    let iters = b.explore(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let h = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        h.join().expect("model threads do not panic");
    });
    // No preemptions allowed: the one schedule runs each thread to
    // completion in spawn order.
    assert_eq!(iters, 1, "bound 0 must yield a single interleaving");
}

#[test]
fn both_orders_of_a_race_are_observed() {
    // Accumulate observations across runs via state captured outside the
    // model closure: the racing store lands before or after the main load.
    let seen: Arc<std::sync::Mutex<HashSet<usize>>> =
        Arc::new(std::sync::Mutex::new(HashSet::new()));
    let seen2 = seen.clone();
    loomlite::explore(move || {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = flag.clone();
        let h = thread::spawn(move || {
            f2.store(1, Ordering::SeqCst);
        });
        let observed = flag.load(Ordering::SeqCst);
        h.join().expect("model threads do not panic");
        seen2.lock().expect("harness mutex").insert(observed);
    });
    let seen = seen.lock().expect("harness mutex");
    assert!(
        seen.contains(&0) && seen.contains(&1),
        "exploration must cover both orders, saw {seen:?}"
    );
}

#[test]
fn scoped_threads_join_in_model() {
    loomlite::explore(|| {
        let done = StdAtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    // Raw std atomic: not a scheduling point, just a probe
                    // that the scope really joined its children.
                    done.fetch_add(1, StdOrdering::SeqCst);
                    thread::yield_now();
                });
            }
        });
        if done.load(StdOrdering::SeqCst) != 2 {
            loomlite::fail("scope exited before its children finished");
        }
    });
}

#[test]
fn off_model_primitives_behave_like_std() {
    // Outside explore() the same types delegate to std and really run
    // concurrently.
    let c = Arc::new(Mutex::new(0u32));
    let l = Arc::new(RwLock::new(0u32));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let c = c.clone();
        let l = l.clone();
        handles.push(thread::spawn(move || {
            *c.lock().expect("unpoisoned") += 1;
            *l.write().expect("unpoisoned") += 1;
        }));
    }
    for h in handles {
        h.join().expect("no panics");
    }
    assert_eq!(*c.lock().expect("unpoisoned"), 4);
    assert_eq!(*l.read().expect("unpoisoned"), 4);
}

#[test]
fn off_model_poisoning_matches_std() {
    let m = Arc::new(Mutex::new(7u32));
    let m2 = m.clone();
    let h = thread::spawn(move || {
        let _g = m2.lock().expect("unpoisoned");
        panic!("poison it");
    });
    assert!(h.join().is_err());
    // Poisoned off-model: Err carrying the guard, recoverable via
    // into_inner — exactly the std contract the hub relies on.
    let v = *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    assert_eq!(v, 7);
}
