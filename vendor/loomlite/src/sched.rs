//! Deterministic-interleaving scheduler: one token, DFS over recorded choices.
//!
//! Exactly one model thread runs at a time; the token is handed off at
//! *scheduling points* (before every visible sync operation).  Each point where
//! more than one thread is runnable becomes a recorded [`Choice`]; after a run
//! completes, the driver backtracks the deepest non-exhausted choice and
//! replays the prefix, giving exhaustive coverage of the bounded schedule
//! space.  Preemptions (switching away from a runnable active thread) are
//! bounded to keep the space tractable.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Monotonic run counter; lets long-lived primitives (globals) detect that a
/// new run started and lazily reset their scheduling metadata.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Sentinel panic payload used to silently unwind model threads when the
/// execution aborts (failure or deadlock).  Raised with `resume_unwind`, so
/// the panic hook never fires for it.
pub(crate) struct Abort;

/// Unwind the current model thread without invoking the panic hook.
pub(crate) fn abort_unwind() -> ! {
    std::panic::resume_unwind(Box::new(Abort))
}

/// Best-effort extraction of a human-readable message from a panic payload.
pub(crate) fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

struct TState {
    status: Status,
    joiners: Vec<usize>,
}

/// One decision point: the runnable alternatives seen there (active thread
/// first) and which index the current run takes.
struct Choice {
    alternatives: Vec<usize>,
    index: usize,
}

pub(crate) struct ExecState {
    threads: Vec<TState>,
    active: usize,
    unfinished: usize,
    schedule: Vec<Choice>,
    pos: usize,
    preemptions: usize,
    bound: Option<usize>,
    ops: usize,
    max_ops: usize,
    abort: bool,
    failure: Option<String>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    fn fail(&mut self, msg: &str) {
        if self.failure.is_none() {
            self.failure = Some(msg.to_string());
        }
        self.abort = true;
    }

    /// Pick the next thread to run.  `me_unavailable` is true when the caller
    /// is blocking or finishing (so it must not be chosen).  Returns `None`
    /// when no thread is runnable.
    fn pick(&mut self, me: usize, me_unavailable: bool) -> Option<usize> {
        let me_runnable = !me_unavailable && self.threads[me].status == Status::Runnable;
        let mut alts: Vec<usize> = Vec::new();
        if me_runnable {
            alts.push(me);
        }
        let capped = me_runnable && self.bound.is_some_and(|b| self.preemptions >= b);
        if !capped {
            for (id, t) in self.threads.iter().enumerate() {
                if id != me && t.status == Status::Runnable {
                    alts.push(id);
                }
            }
        }
        if alts.is_empty() {
            return None;
        }
        let chosen = if alts.len() == 1 {
            alts[0]
        } else if self.pos < self.schedule.len() {
            let c = &self.schedule[self.pos];
            self.pos += 1;
            if c.alternatives != alts {
                self.fail("nondeterministic model: schedule replay diverged");
                alts[0]
            } else {
                c.alternatives[c.index]
            }
        } else {
            self.schedule.push(Choice {
                alternatives: alts.clone(),
                index: 0,
            });
            self.pos += 1;
            alts[0]
        };
        if me_runnable && chosen != me {
            self.preemptions += 1;
        }
        Some(chosen)
    }
}

/// Shared state of one model execution (all runs of one `explore` call).
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cond: Condvar,
}

impl Execution {
    pub(crate) fn new(bound: Option<usize>, max_ops: usize) -> Self {
        Execution {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                active: 0,
                unfinished: 0,
                schedule: Vec::new(),
                pos: 0,
                preemptions: 0,
                bound,
                ops: 0,
                max_ops,
                abort: false,
                failure: None,
                os_handles: Vec::new(),
            }),
            cond: Condvar::new(),
        }
    }

    fn guard(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reset per-run state (the recorded schedule survives; it is the DFS
    /// cursor).  Returns the new run epoch.
    pub(crate) fn reset_for_run(&self) -> u64 {
        let mut st = self.guard();
        st.threads.clear();
        st.active = 0;
        st.unfinished = 0;
        st.pos = 0;
        st.preemptions = 0;
        st.ops = 0;
        st.abort = false;
        RUN_COUNTER.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Register a new model thread; returns its id.  The caller must hold the
    /// token (or be the driver setting up thread 0).
    pub(crate) fn register(&self) -> usize {
        let mut st = self.guard();
        let id = st.threads.len();
        st.threads.push(TState {
            status: Status::Runnable,
            joiners: Vec::new(),
        });
        st.unfinished += 1;
        id
    }

    pub(crate) fn add_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.guard().os_handles.push(h);
    }

    /// Scheduling point: count the op, consult/extend the schedule, and hand
    /// the token over if another thread is chosen.
    pub(crate) fn switch(&self, me: usize) {
        let mut st = self.guard();
        if st.abort {
            drop(st);
            abort_unwind()
        }
        st.ops += 1;
        if st.ops > st.max_ops {
            self.fail_now(
                st,
                "operation budget exceeded; shrink the model or the preemption bound",
            )
        }
        let next = st
            .pick(me, false)
            .expect("active thread is always runnable at a switch point");
        if next != me {
            st.active = next;
            self.cond.notify_all();
            self.wait_active(st, me);
        }
    }

    /// Block the calling thread (it already enqueued itself on a primitive's
    /// wait list) and hand the token to some runnable thread.  Returns when
    /// rescheduled.  Detects whole-model deadlock.
    pub(crate) fn block(&self, me: usize) {
        let mut st = self.guard();
        if st.abort {
            drop(st);
            abort_unwind()
        }
        st.threads[me].status = Status::Blocked;
        match st.pick(me, true) {
            Some(next) => {
                st.active = next;
                self.cond.notify_all();
                self.wait_active(st, me);
            }
            None => self.fail_now(st, "deadlock: all threads blocked"),
        }
    }

    /// Mark the given (blocked) threads runnable again.  Does not hand the
    /// token over; the woken threads compete at later scheduling points.
    pub(crate) fn wake(&self, ids: &[usize]) {
        let mut st = self.guard();
        for &id in ids {
            if st.threads[id].status == Status::Blocked {
                st.threads[id].status = Status::Runnable;
            }
        }
    }

    /// Wait until `target` finishes, with a scheduling point first.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        self.switch(me);
        loop {
            let mut st = self.guard();
            if st.abort {
                drop(st);
                abort_unwind()
            }
            if st.threads[target].status == Status::Finished {
                return;
            }
            st.threads[target].joiners.push(me);
            drop(st);
            self.block(me);
        }
    }

    /// Mark the calling thread finished, wake joiners, pass the token on.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.guard();
        st.threads[me].status = Status::Finished;
        st.unfinished -= 1;
        let joiners = std::mem::take(&mut st.threads[me].joiners);
        for j in joiners {
            if st.threads[j].status == Status::Blocked {
                st.threads[j].status = Status::Runnable;
            }
        }
        if st.abort || st.unfinished == 0 {
            self.cond.notify_all();
            return;
        }
        match st.pick(me, true) {
            Some(next) => {
                st.active = next;
                self.cond.notify_all();
            }
            None => {
                st.fail("deadlock: all remaining threads blocked");
                self.cond.notify_all();
            }
        }
    }

    /// Record a failure from outside the token discipline (panic payloads).
    pub(crate) fn fail_external(&self, msg: &str) {
        let mut st = self.guard();
        st.fail(msg);
        self.cond.notify_all();
    }

    /// Record a failure, abort every thread, and unwind the caller.
    pub(crate) fn fail_now(&self, mut st: MutexGuard<'_, ExecState>, msg: &str) -> ! {
        st.fail(msg);
        self.cond.notify_all();
        drop(st);
        abort_unwind()
    }

    pub(crate) fn fail_current(&self, msg: &str) -> ! {
        let st = self.guard();
        self.fail_now(st, msg)
    }

    /// First wait of a freshly spawned thread: park until scheduled.
    pub(crate) fn wait_initial(&self, me: usize) {
        let st = self.guard();
        self.wait_active(st, me);
    }

    fn wait_active(&self, mut st: MutexGuard<'_, ExecState>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                abort_unwind()
            }
            if st.active == me && st.threads[me].status == Status::Runnable {
                return;
            }
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Driver side: wait for every model thread of the current run to finish,
    /// then take the OS handles so they can be joined.
    pub(crate) fn wait_run_complete(&self) -> Vec<std::thread::JoinHandle<()>> {
        let mut st = self.guard();
        while st.unfinished > 0 {
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        std::mem::take(&mut st.os_handles)
    }

    pub(crate) fn take_failure(&self) -> Option<String> {
        self.guard().failure.take()
    }

    /// Advance the DFS: bump the deepest non-exhausted choice, dropping
    /// exhausted suffix choices.  Returns false when the space is explored.
    pub(crate) fn backtrack(&self) -> bool {
        let mut st = self.guard();
        loop {
            match st.schedule.last_mut() {
                None => return false,
                Some(c) if c.index + 1 < c.alternatives.len() => {
                    c.index += 1;
                    return true;
                }
                Some(_) => {
                    st.schedule.pop();
                }
            }
        }
    }
}

/// Per-thread model context: which execution/thread/run this OS thread plays.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) id: usize,
    pub(crate) run: u64,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(c: Option<Ctx>) {
    CTX.with(|cell| *cell.borrow_mut() = c);
}

/// Body wrapper for every model thread: park until scheduled, run the user
/// closure under `catch_unwind`, record panics as model failures (the `Abort`
/// sentinel stays silent), then finish.
pub(crate) fn run_thread<T>(
    exec: Arc<Execution>,
    id: usize,
    run: u64,
    f: impl FnOnce() -> T,
    slot: Option<Arc<Mutex<Option<T>>>>,
) {
    set_ctx(Some(Ctx {
        exec: exec.clone(),
        id,
        run,
    }));
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.wait_initial(id);
        f()
    }));
    match res {
        Ok(v) => {
            if let Some(s) = slot {
                *s.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            }
        }
        Err(p) => {
            if p.downcast_ref::<Abort>().is_none() {
                exec.fail_external(&payload_msg(p.as_ref()));
            }
        }
    }
    set_ctx(None);
    exec.finish(id);
}
