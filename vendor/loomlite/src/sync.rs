//! Instrumented sync primitives: `std::sync`-compatible API, model-aware.
//!
//! Outside a model run every type delegates straight to its `std::sync`
//! counterpart (same poisoning behaviour).  Inside a model run the scheduling
//! metadata (who holds the lock, who waits) is consulted under the execution
//! token, so acquisition order becomes a recorded scheduling decision; the
//! underlying `std` primitive is then acquired uncontended purely to hold the
//! data.  Model-side state is keyed by run epoch so global primitives (e.g. a
//! global interner) lazily reset between runs.

use std::sync::{LockResult, PoisonError, TryLockError};

use crate::sched::{ctx, Ctx};

#[derive(Default)]
struct PrimState {
    run: u64,
    /// Writer / exclusive holder present.
    locked: bool,
    /// Shared readers (RwLock only).
    readers: usize,
    waiters: Vec<usize>,
}

type Meta = std::sync::Mutex<PrimState>;

fn meta_guard(meta: &Meta, run: u64) -> std::sync::MutexGuard<'_, PrimState> {
    let mut ps = meta.lock().unwrap_or_else(PoisonError::into_inner);
    if ps.run != run {
        *ps = PrimState {
            run,
            ..PrimState::default()
        };
    }
    ps
}

/// Release helper shared by the guard `Drop` impls.  `dec_reader` selects
/// shared-release (RwLock read) vs exclusive-release semantics.
fn model_release(meta: &Meta, dec_reader: bool) {
    let Some(c) = ctx() else { return };
    let waiters = {
        let mut ps = meta.lock().unwrap_or_else(PoisonError::into_inner);
        if ps.run != c.run {
            return;
        }
        if dec_reader {
            ps.readers -= 1;
        } else {
            ps.locked = false;
        }
        std::mem::take(&mut ps.waiters)
    };
    c.exec.wake(&waiters);
    if !std::thread::panicking() {
        c.exec.switch(c.id);
    }
}

fn model_acquire(meta: &Meta, c: &Ctx, shared: bool) {
    c.exec.switch(c.id);
    loop {
        let mut ps = meta_guard(meta, c.run);
        let free = if shared {
            !ps.locked
        } else {
            !ps.locked && ps.readers == 0
        };
        if free {
            if shared {
                ps.readers += 1;
            } else {
                ps.locked = true;
            }
            return;
        }
        ps.waiters.push(c.id);
        drop(ps);
        c.exec.block(c.id);
    }
}

/// A mutual-exclusion lock with the `std::sync::Mutex` surface.
pub struct Mutex<T: ?Sized> {
    meta: Meta,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub fn new(t: T) -> Self {
        Mutex {
            meta: Meta::default(),
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking (in-model: a scheduling decision).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(c) = ctx() {
            model_acquire(&self.meta, &c, false);
            let g = match self.inner.try_lock() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("loomlite mutex: model grants exclusive access")
                }
            };
            Ok(MutexGuard {
                inner: Some(g),
                meta: Some(&self.meta),
            })
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    meta: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    meta: None,
                })),
            }
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]; releases the model-side hold on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    meta: Option<&'a Meta>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(m) = self.meta {
            model_release(m, false);
        }
    }
}

/// A reader-writer lock with the `std::sync::RwLock` surface.
pub struct RwLock<T: ?Sized> {
    meta: Meta,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new unlocked rwlock.
    pub fn new(t: T) -> Self {
        RwLock {
            meta: Meta::default(),
            inner: std::sync::RwLock::new(t),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some(c) = ctx() {
            model_acquire(&self.meta, &c, true);
            let g = match self.inner.try_read() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("loomlite rwlock: model admits readers")
                }
            };
            Ok(RwLockReadGuard {
                inner: Some(g),
                meta: Some(&self.meta),
            })
        } else {
            match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: Some(g),
                    meta: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    inner: Some(p.into_inner()),
                    meta: None,
                })),
            }
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some(c) = ctx() {
            model_acquire(&self.meta, &c, false);
            let g = match self.inner.try_write() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("loomlite rwlock: model grants exclusive access")
                }
            };
            Ok(RwLockWriteGuard {
                inner: Some(g),
                meta: Some(&self.meta),
            })
        } else {
            match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: Some(g),
                    meta: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    inner: Some(p.into_inner()),
                    meta: None,
                })),
            }
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    meta: Option<&'a Meta>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(m) = self.meta {
            model_release(m, true);
        }
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    meta: Option<&'a Meta>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(m) = self.meta {
            model_release(m, false);
        }
    }
}

/// Model-aware atomics (sequentially consistent under the model: the token
/// serialises every access, with a scheduling point before each op).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched::ctx;

    fn point() {
        if let Some(c) = ctx() {
            c.exec.switch(c.id);
        }
    }

    macro_rules! int_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $t:ty) => {
            $(#[$doc])*
            #[derive(Default, Debug)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub fn new(v: $t) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                /// Load the current value.
                pub fn load(&self, o: Ordering) -> $t {
                    point();
                    self.inner.load(o)
                }

                /// Store a new value.
                pub fn store(&self, v: $t, o: Ordering) {
                    point();
                    self.inner.store(v, o)
                }

                /// Swap in a new value, returning the previous one.
                pub fn swap(&self, v: $t, o: Ordering) -> $t {
                    point();
                    self.inner.swap(v, o)
                }

                /// Add to the value, returning the previous one.
                pub fn fetch_add(&self, v: $t, o: Ordering) -> $t {
                    point();
                    self.inner.fetch_add(v, o)
                }

                /// Subtract from the value, returning the previous one.
                pub fn fetch_sub(&self, v: $t, o: Ordering) -> $t {
                    point();
                    self.inner.fetch_sub(v, o)
                }

                /// Compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    cur: $t,
                    new: $t,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$t, $t> {
                    point();
                    self.inner.compare_exchange(cur, new, ok, err)
                }

                /// Mutable access without synchronisation.
                pub fn get_mut(&mut self) -> &mut $t {
                    self.inner.get_mut()
                }

                /// Consume the atomic, returning the value.
                pub fn into_inner(self) -> $t {
                    self.inner.into_inner()
                }
            }
        };
    }

    int_atomic!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    int_atomic!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    int_atomic!(
        /// Model-aware `AtomicU32`.
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );

    /// Model-aware `AtomicBool`.
    #[derive(Default, Debug)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Create a new atomic bool.
        pub fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Load the current value.
        pub fn load(&self, o: Ordering) -> bool {
            point();
            self.inner.load(o)
        }

        /// Store a new value.
        pub fn store(&self, v: bool, o: Ordering) {
            point();
            self.inner.store(v, o)
        }

        /// Swap in a new value, returning the previous one.
        pub fn swap(&self, v: bool, o: Ordering) -> bool {
            point();
            self.inner.swap(v, o)
        }

        /// Compare-and-exchange.
        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            ok: Ordering,
            err: Ordering,
        ) -> Result<bool, bool> {
            point();
            self.inner.compare_exchange(cur, new, ok, err)
        }
    }
}
