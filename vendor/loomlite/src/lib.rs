//! Offline stand-in for [loom](https://github.com/tokio-rs/loom): a
//! deterministic-interleaving model checker over instrumented sync
//! primitives.
//!
//! A model is a closure that spawns threads via [`thread`] and synchronises
//! via [`sync`].  [`explore`] runs the closure under a serialising scheduler
//! that enumerates every interleaving reachable with a bounded number of
//! preemptions (DFS over recorded scheduling choices), returning the number
//! of distinct interleavings executed.  Any thread panic, detected deadlock,
//! or explicit [`fail`] aborts exploration and fails the model.
//!
//! The same primitive types work *outside* a model too, delegating to
//! `std::sync` / `std::thread` with identical semantics (including lock
//! poisoning), which lets production code be ported onto them behind a thin
//! shim module and only pay instrumentation costs inside model tests.
//!
//! Caveats of the stand-in (vs real loom): atomics are sequentially
//! consistent (no weak-memory modelling), there is no `UnsafeCell` tracking,
//! and global primitives keep their *data* across runs (their scheduling
//! metadata resets per run) — models over globals must assert per-run
//! invariants that tolerate accumulated state, as the interner tests do.

mod sched;
pub mod sync;
pub mod thread;

use std::sync::{Arc, Mutex, PoisonError};

use sched::Execution;

/// Serialises model executions process-wide: models may touch global state
/// (the interner) and must not observe each other's threads.
static MODEL_LOCK: Mutex<()> = Mutex::new(());

/// Exploration parameters.
pub struct Builder {
    /// Maximum number of preemptions per run (`None` = unbounded).  Two is
    /// the classic sweet spot: most concurrency bugs need at most two.
    pub preemption_bound: Option<usize>,
    /// Iteration budget: exceeding it fails the model (space too large).
    pub max_iterations: usize,
    /// Per-run operation budget: exceeding it fails the model (livelock or
    /// runaway model).
    pub max_ops: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(2),
            max_iterations: 200_000,
            max_ops: 100_000,
        }
    }
}

impl Builder {
    /// Explore every schedule of `f`; `Ok(n)` is the interleaving count,
    /// `Err(msg)` the first failure (panic, deadlock, budget, [`fail`]).
    pub fn check<F>(&self, f: F) -> Result<usize, String>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let _serial = MODEL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let exec = Arc::new(Execution::new(self.preemption_bound, self.max_ops));
        let mut iters = 0usize;
        loop {
            iters += 1;
            if iters > self.max_iterations {
                return Err(format!(
                    "iteration budget ({}) exceeded; shrink the model or the preemption bound",
                    self.max_iterations
                ));
            }
            let run = exec.reset_for_run();
            let id = exec.register();
            debug_assert_eq!(id, 0, "thread 0 is registered first each run");
            let exec2 = exec.clone();
            let f2 = f.clone();
            let h = std::thread::Builder::new()
                .name("loomlite-0".to_string())
                .spawn(move || sched::run_thread(exec2, id, run, move || f2(), None))
                .expect("loomlite: OS thread spawn failed");
            exec.add_os_handle(h);
            for h in exec.wait_run_complete() {
                let _ = h.join();
            }
            if let Some(msg) = exec.take_failure() {
                return Err(msg);
            }
            if !exec.backtrack() {
                return Ok(iters);
            }
        }
    }

    /// Like [`Builder::check`] but panics on failure; returns the
    /// interleaving count.
    pub fn explore<F>(&self, f: F) -> usize
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.check(f) {
            Ok(n) => n,
            Err(msg) => panic!("loomlite: model failed: {msg}"),
        }
    }
}

/// Explore with default bounds; panics on failure, returns the count.
pub fn explore<F>(f: F) -> usize
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().explore(f)
}

/// Explore with default bounds; `Err` carries the first failure message.
pub fn check<F>(f: F) -> Result<usize, String>
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

/// Loom-compatible alias for [`explore`], discarding the count.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let _ = explore(f);
}

/// Fail the current model run with a message (preferred over `panic!` inside
/// models: the failure aborts exploration without tripping the panic hook).
/// Outside a model this simply panics.
pub fn fail(msg: &str) -> ! {
    match sched::ctx() {
        Some(c) => c.exec.fail_current(msg),
        None => panic!("{msg}"),
    }
}

/// True when the calling thread is currently executing inside a model run.
pub fn is_modeled() -> bool {
    sched::ctx().is_some()
}
