//! Model-aware threading: `spawn`, `yield_now`, and scoped threads.
//!
//! Off-model everything delegates to `std::thread`.  In-model, spawned
//! threads register with the execution and park until the scheduler hands
//! them the token; joins become scheduling decisions.  Scoped threads are
//! joined *in-model* before the underlying `std::thread::scope` performs its
//! implicit OS-level join (otherwise the OS join would block while the child
//! still waits for the token).

use std::cell::RefCell;
use std::sync::{Arc, Mutex, PoisonError};

use crate::sched::{abort_unwind, ctx, payload_msg, run_thread, Abort, Execution};

/// Yield the current thread: in-model this is a pure scheduling point.
pub fn yield_now() {
    match ctx() {
        Some(c) => c.exec.switch(c.id),
        None => std::thread::yield_now(),
    }
}

struct ModelJoin<T> {
    exec: Arc<Execution>,
    id: usize,
    slot: Arc<Mutex<Option<T>>>,
}

/// Handle to a spawned thread, mirroring `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    std: Option<std::thread::JoinHandle<T>>,
    model: Option<ModelJoin<T>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(h) = self.std {
            return h.join();
        }
        let m = self.model.expect("join handle has a backing thread");
        let c = ctx().expect("model join handles must be joined from model threads");
        m.exec.join_wait(c.id, m.id);
        let v = m
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("finished model thread stored its result");
        Ok(v)
    }
}

/// Spawn a thread, mirroring `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match ctx() {
        None => JoinHandle {
            std: Some(std::thread::spawn(f)),
            model: None,
        },
        Some(c) => {
            c.exec.switch(c.id);
            let id = c.exec.register();
            let slot = Arc::new(Mutex::new(None));
            let exec2 = c.exec.clone();
            let slot2 = slot.clone();
            let run = c.run;
            let h = std::thread::Builder::new()
                .name(format!("loomlite-{id}"))
                .spawn(move || run_thread(exec2, id, run, f, Some(slot2)))
                .expect("loomlite: OS thread spawn failed");
            c.exec.add_os_handle(h);
            JoinHandle {
                std: None,
                model: Some(ModelJoin {
                    exec: c.exec.clone(),
                    id,
                    slot,
                }),
            }
        }
    }
}

struct ScopeModel {
    exec: Arc<Execution>,
    run: u64,
    me: usize,
    /// Children not yet explicitly joined; joined in-model at scope exit.
    pending: RefCell<Vec<usize>>,
}

/// Scope for spawning borrowing threads, mirroring `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    model: Option<ScopeModel>,
}

/// Handle to a scoped thread, mirroring `std::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    std: Option<std::thread::ScopedJoinHandle<'scope, T>>,
    model: Option<ModelJoin<T>>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the scoped thread to finish and return its result.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(h) = self.std {
            return h.join();
        }
        let m = self.model.expect("join handle has a backing thread");
        let c = ctx().expect("model join handles must be joined from model threads");
        m.exec.join_wait(c.id, m.id);
        let v = m
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("finished model thread stored its result");
        Ok(v)
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread, mirroring `std::thread::Scope::spawn`.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.model {
            None => ScopedJoinHandle {
                std: Some(self.std.spawn(f)),
                model: None,
            },
            Some(m) => {
                m.exec.switch(m.me);
                let id = m.exec.register();
                let slot = Arc::new(Mutex::new(None::<T>));
                let exec2 = m.exec.clone();
                let slot2 = slot.clone();
                let run = m.run;
                self.std
                    .spawn(move || run_thread(exec2, id, run, f, Some(slot2)));
                m.pending.borrow_mut().push(id);
                ScopedJoinHandle {
                    std: None,
                    model: Some(ModelJoin {
                        exec: m.exec.clone(),
                        id,
                        slot,
                    }),
                }
            }
        }
    }
}

/// Create a scope for spawning borrowing threads, mirroring
/// `std::thread::scope`.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    match ctx() {
        None => std::thread::scope(|s| {
            f(&Scope {
                std: s,
                model: None,
            })
        }),
        Some(c) => std::thread::scope(move |s| {
            let sc = Scope {
                std: s,
                model: Some(ScopeModel {
                    exec: c.exec.clone(),
                    run: c.run,
                    me: c.id,
                    pending: RefCell::new(Vec::new()),
                }),
            };
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&sc)));
            let pending = sc
                .model
                .as_ref()
                .expect("model scope carries model state")
                .pending
                .take();
            match res {
                Ok(v) => {
                    for id in pending {
                        c.exec.join_wait(c.id, id);
                    }
                    v
                }
                Err(p) => {
                    // Fail the model so parked children unwind; the implicit
                    // OS-level scope join then completes instead of hanging.
                    if p.downcast_ref::<Abort>().is_none() {
                        c.exec.fail_external(&payload_msg(p.as_ref()));
                    }
                    drop(p);
                    abort_unwind()
                }
            }
        }),
    }
}
