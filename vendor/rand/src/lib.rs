//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides exactly the (seeded, fully deterministic) API surface the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_bool`, and
//! `Rng::gen_range` over `usize` ranges. The generator is splitmix64 —
//! statistically fine for synthetic-workload generation, NOT for
//! cryptography. Swap in the real `rand` when a registry is available;
//! workloads are seeded either way, but the streams will differ.

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling methods, mirroring the subset of `rand::Rng`
/// the workspace calls.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform sample from a non-empty half-open `usize` range.
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        let span = range.end - range.start;
        assert!(span > 0, "gen_range on empty range");
        // Modulo bias is negligible for the tiny spans used here.
        range.start + (self.next_u64() % span as u64) as usize
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna): passes BigCrush on its own.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "{hits}");
    }
}
