//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! range strategies over the integer primitives, tuple and `Vec`
//! composition, `prop_map` / `prop_filter_map`, `proptest::bool::ANY`,
//! the `proptest!` macro (with optional `#![proptest_config(..)]`), and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failing case panics with its generated inputs
//!   via the normal assert message instead of a minimized counterexample;
//! * **fixed deterministic seeding** — every test function derives its
//!   RNG seed from its own name, so runs are reproducible and failures
//!   stable across invocations;
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.

use std::ops::{Range, RangeInclusive};

/// Runs-per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving all strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Derives a seed from a test name (used by the `proptest!` macro).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A value generator. Real proptest separates strategies from value
/// trees to support shrinking; without shrinking, one method suffices.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values `f` maps to `Some`, retrying otherwise.
    /// `_reason` matches real proptest's diagnostic argument.
    fn prop_filter_map<U, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        // The workspace's filters accept most inputs; cap retries so a
        // degenerate filter fails loudly instead of spinning.
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 10000 consecutive inputs");
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                (*self.start() as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical fair-coin strategy, as in `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for [`fn@vec`], as in proptest's `SizeRange`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy: each element from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests conventionally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a property holds (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts two expressions are equal (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts two expressions differ (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$attr:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = crate::TestRng::new(3);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[(0u8..6).generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let w = (1i32..=8).generate(&mut rng);
            assert!((1..=8).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::new(5);
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..6, 0..30).generate(&mut rng);
            assert!(v.len() < 30);
            let w = crate::collection::vec(0u8..6, 2..=4).generate(&mut rng);
            assert!((2..=4).contains(&w.len()));
        }
    }

    #[test]
    fn map_and_filter_map_compose() {
        let mut rng = crate::TestRng::new(9);
        let evens = (0u32..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        let doubled = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro itself: arguments bind, bodies run.
        #[test]
        fn macro_generates_cases(x in 0u8..10, pair in (0u8..4, crate::bool::ANY)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 4);
        }
    }
}
