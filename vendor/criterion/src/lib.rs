//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the bench-file API the workspace uses — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a plain wall-clock measurement
//! loop instead of criterion's statistical machinery.
//!
//! Reported numbers are a median of per-sample means (ns/iter) with min
//! and max across samples. They are stable enough for the coarse "did
//! this PR make the hot path faster" comparisons recorded in CHANGES.md;
//! swap in real criterion for confidence intervals and HTML reports.
//!
//! Setting `MMT_BENCH_JSON=<dir>` additionally writes one
//! `BENCH_<group>.json` file per benchmark group into `<dir>` (created
//! if missing), so the perf trajectory is machine-readable across PRs:
//! `{"group": ..., "benches": [{"label", "median_ns", "min_ns",
//! "max_ns", "iters", "samples"}, ...]}`.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(v: T) -> T {
    std_black_box(v)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Samples collected per benchmark (overridable per group).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Hook for `criterion_main!`; config flags are ignored here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            results: Vec::new(),
            _criterion: self,
        }
    }
}

/// A named benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, printed `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    results: Vec<BenchResult>,
    _criterion: &'a mut Criterion,
}

/// One benchmark's measurement, collected for the JSON report.
struct BenchResult {
    label: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`, reporting under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let r = run_bench(&id.into().label, self.sample_size, |b| f(b));
        self.results.push(r);
        self
    }

    /// Benchmarks `f` with a borrowed input, reporting under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let r = run_bench(&id.into().label, self.sample_size, |b| f(b, input));
        self.results.push(r);
        self
    }

    /// Ends the group. With `MMT_BENCH_JSON=<dir>` set, writes the
    /// group's measurements to `<dir>/BENCH_<group>.json` (the write
    /// also happens on drop, so groups that never call `finish` still
    /// report).
    pub fn finish(self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        if let Err(e) = self.write_json() {
            eprintln!("warning: MMT_BENCH_JSON write failed: {e}");
        }
    }
}

impl BenchmarkGroup<'_> {
    fn write_json(&self) -> std::io::Result<()> {
        let Some(dir) = std::env::var_os("MMT_BENCH_JSON") else {
            return Ok(());
        };
        if dir.is_empty() {
            return Ok(());
        }
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)?;
        let safe: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"group\": \"{}\",\n  \"benches\": [",
            escape_json(&self.name)
        ));
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"label\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"iters\": {}, \"samples\": {}}}",
                escape_json(&r.label),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.iters,
                r.samples,
            ));
        }
        out.push_str("\n  ]\n}\n");
        std::fs::write(dir.join(format!("BENCH_{safe}.json")), out)
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Passed to bench closures; `iter` does the measuring.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrates an iteration count (~25 ms per sample), then reports the
/// median/min/max of per-sample mean ns across `samples` samples.
///
/// Setting `MMT_BENCH_SMOKE=1` switches to smoke mode: ~1 ms samples and
/// 2 samples per benchmark. The numbers are too noisy to compare, but
/// every bench body still executes end to end — CI uses this to catch
/// regressions (panics, hangs, unwraps) in the bench paths cheaply.
fn run_bench(label: &str, samples: usize, mut run: impl FnMut(&mut Bencher)) -> BenchResult {
    let smoke = std::env::var_os("MMT_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let target_sample = if smoke {
        Duration::from_millis(1)
    } else {
        Duration::from_millis(25)
    };
    let samples = if smoke { 2 } else { samples };
    // Calibrate: grow iters until one sample takes long enough.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        run(&mut b);
        if b.elapsed >= target_sample || iters >= 1 << 24 {
            break;
        }
        // Aim straight for the target using the observed rate.
        let per_iter = (b.elapsed.as_nanos() / iters as u128).max(1);
        let needed = (target_sample.as_nanos() / per_iter).max(iters as u128 * 2);
        iters = needed.min(1 << 24) as u64;
    }
    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            run(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    println!(
        "  {label:<40} {:>12}/iter  (min {}, max {}, {} iters × {} samples)",
        fmt_ns(median),
        fmt_ns(per_iter_ns[0]),
        fmt_ns(per_iter_ns[per_iter_ns.len() - 1]),
        iters,
        samples,
    );
    BenchResult {
        label: label.to_string(),
        median_ns: median,
        min_ns: per_iter_ns[0],
        max_ns: per_iter_ns[per_iter_ns.len() - 1],
        iters,
        samples,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles bench functions into a runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("build", 3).label, "build/3");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
    }

    #[test]
    fn json_output_writes_group_file() {
        let dir = std::env::temp_dir().join(format!("mmt-bench-json-{}", std::process::id()));
        std::env::set_var("MMT_BENCH_JSON", &dir);
        std::env::set_var("MMT_BENCH_SMOKE", "1");
        {
            let mut c = Criterion::default();
            let mut g = c.benchmark_group("json smoke");
            g.sample_size(2);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        std::env::remove_var("MMT_BENCH_JSON");
        let body = std::fs::read_to_string(dir.join("BENCH_json_smoke.json")).unwrap();
        assert!(body.contains("\"group\": \"json smoke\""), "{body}");
        assert!(body.contains("\"label\": \"noop\""), "{body}");
        assert!(body.contains("\"median_ns\""), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran > 0);
    }
}
