//! # mmtf — A Framework for Multidirectional Model Transformations
//!
//! A from-scratch Rust implementation of *“Towards a Framework for
//! Multidirectional Model Transformations”* (Macedo, Cunha, Pacheco;
//! EDBT/ICDT 2014 workshops): QVT-R checkonly semantics extended with
//! *checking dependencies* (§2.2), linear-time Horn typing of relation
//! invocations (§2.3), and least-change enforcement for arbitrary repair
//! shapes (§3) — plus every substrate the paper assumes from the
//! Eclipse/EMF/Alloy stack, rebuilt natively:
//!
//! | Layer | Crate |
//! |-------|-------|
//! | metamodels & typed object graphs | [`model`] |
//! | QVT-R front-end with `depend` clauses | [`qvtr`] |
//! | dependency algebra, Horn entailment | [`deps`] |
//! | checkonly engine (conjunctive-query evaluator) | [`check`] |
//! | edits, diffs, weighted distances | [`dist`] |
//! | CDCL SAT solver | [`sat`] |
//! | bounded relational grounding to CNF | [`ground`] |
//! | least-change repair engines | [`enforce`] |
//! | synthetic workloads | [`gen`] |
//! | the framework facade | [`core`] |
//! | durable sessions (WAL, crash recovery) | [`store`] |
//!
//! ## Quick start
//!
//! ```
//! use mmtf::prelude::*;
//!
//! // The paper's running example: a feature model and k = 2
//! // configurations, kept consistent by F = MF ∧ OF.
//! let t = Transformation::from_sources(
//!     &mmtf::gen::transformation_source(2),
//!     &[mmtf::gen::CF_METAMODEL, mmtf::gen::FM_METAMODEL],
//! ).unwrap();
//!
//! let mut w = mmtf::gen::feature_workload(Default::default());
//! assert!(t.check(&w.models).unwrap().consistent());
//!
//! // Break it the way §3 does: a new mandatory feature in FM …
//! mmtf::gen::inject(&mut w, mmtf::gen::Injection::NewMandatoryInFm);
//! assert!(!t.check(&w.models).unwrap().consistent());
//!
//! // … and repair with the multi-target shape →F_CFᵏ.
//! let out = t
//!     .enforce(&w.models, Shape::of(&[0, 1]), EngineKind::Sat)
//!     .unwrap()
//!     .expect("repairable");
//! assert!(t.check(&out.models).unwrap().consistent());
//! ```

pub use mmt_check as check;
pub use mmt_core as core;
pub use mmt_deps as deps;
pub use mmt_dist as dist;
pub use mmt_enforce as enforce;
pub use mmt_gen as gen;
pub use mmt_ground as ground;
pub use mmt_lint as lint;
pub use mmt_model as model;
pub use mmt_qvtr as qvtr;
pub use mmt_sat as sat;
pub use mmt_store as store;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use mmt_check::{CheckOptions, CheckReport, Checker};
    pub use mmt_core::{
        CoreError, EngineKind, HubError, SessionOptions, Shape, ShapeError, SyncHub, SyncSession,
        Transformation,
    };
    pub use mmt_deps::{Dep, DepSet, DomIdx, DomSet};
    pub use mmt_dist::{CostModel, Delta, EditOp, TupleCost};
    pub use mmt_enforce::{
        RepairEngine, RepairOptions, RepairOutcome, RepairRequest, SatEngine, SearchEngine,
    };
    pub use mmt_lint::{lint, Lint, LintCode, LintOptions, LintReport, Severity};
    pub use mmt_model::text::{parse_metamodel, parse_model, print_metamodel, print_model};
    pub use mmt_model::{Metamodel, MetamodelBuilder, Model, ObjId, Sym, Value};
    pub use mmt_qvtr::{parse_and_resolve, Hir};
    pub use mmt_store::{HubStore, PersistentSession, StoreError};
}
