//! Stateful synchronization sessions: the warm edit→check→repair loop.
//!
//! The paper's framework is a *synchronization service* — models drift
//! apart through edits, and the engine restores consistency with
//! least-change repairs. The stateless entry points
//! ([`Transformation::check`], [`Transformation::enforce`]) rebuild the
//! whole checking state on every call: one cold start per request. A
//! [`SyncSession`] pays that cold start **once** and then keeps the
//! incremental oracle warm across the whole loop:
//!
//! * [`SyncSession::apply`] pushes one [`EditOp`] through the live
//!   [`DeltaChecker`] — consistency status is
//!   re-established in time proportional to the edit, not the tuple;
//! * [`SyncSession::status`] / [`SyncSession::report`] read the cached
//!   verdicts — no evaluation at all;
//! * [`SyncSession::repair`] forks the warm checker and hands it to the
//!   repair engine as a pre-warmed search root
//!   ([`RepairEngine::repair_warm`]),
//!   skipping the engine's initial full check; the repair delta is
//!   auto-applied back through the same incremental path and journaled;
//! * [`SyncSession::rollback`] undoes journal entries by replaying
//!   exact inverse edits ([`Delta::inverse`]) through the same path.
//!
//! Every mutation lands in the **journal** in an *expanded*, exactly
//! invertible form: a `DelObj` of an object that still carries links or
//! non-default attributes is journaled as explicit `DelLink` /
//! `SetAttr`-to-default ops followed by the bare deletion, so
//! [`Delta::inverse`] restores the object perfectly. Replaying
//! [`SyncSession::journal_script`] over the seed tuple reproduces the
//! live tuple byte for byte.
//!
//! Outcome contract: a session is an *optimization*, never a semantic
//! fork. [`SyncSession::repair`] returns exactly what the stateless
//! [`Transformation::enforce_with`] would return on the session's
//! current tuple — the warm path changes wall-clock time, not results.
//!
//! Ownership: a session owns everything it needs — the model tuple
//! (inside its warm checker) and a shared [`Arc<Transformation>`] — so
//! it is a `'static + Send` handle. Nothing pins it to the stack frame
//! that opened it: move it into a worker thread, store it in a
//! [`crate::SyncHub`], or hold it across await points in a server.

use crate::{CoreError, EngineKind, Shape, Transformation};
use mmt_check::{CheckOptions, CheckReport, DeltaChecker, DeltaError};
use mmt_deps::{DomIdx, DomSet};
use mmt_dist::{Delta, EditOp};
use mmt_enforce::search::{fingerprint_step, state_fingerprint};
use mmt_enforce::{RepairEngine, RepairError, RepairOptions, SatEngine, SearchEngine};
use mmt_model::Model;
use std::sync::Arc;

fn delta_core_err(e: DeltaError) -> CoreError {
    match e {
        DeltaError::Check(e) => CoreError::Check(e),
        DeltaError::Eval(e) => CoreError::Eval(e),
        DeltaError::Model(e) => CoreError::Model(e),
    }
}

/// Options a session is opened with.
#[derive(Clone, Debug)]
pub struct SessionOptions {
    /// Engine [`SyncSession::repair`] runs. [`EngineKind::Search`] (the
    /// default) exploits the warm checker as a pre-warmed search root;
    /// [`EngineKind::Sat`] re-grounds from the live tuple (CNF has no
    /// incremental state to reuse).
    pub engine: EngineKind,
    /// Repair options threaded through to the engine.
    pub repair: RepairOptions,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            engine: EngineKind::Search,
            repair: RepairOptions::default(),
        }
    }
}

/// What one journal entry records.
#[derive(Clone, Debug)]
pub enum JournalKind {
    /// One [`SyncSession::apply`] / [`SyncSession::apply_script`] call.
    Edit,
    /// One auto-applied [`SyncSession::repair`].
    Repair {
        /// The shape the repair ran under.
        shape: Shape,
        /// Its weighted least-change cost.
        cost: u64,
    },
}

/// One journaled session action: per-model edit scripts in expanded,
/// exactly invertible form (deletions never swallow structure).
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// Edit or repair.
    pub kind: JournalKind,
    /// Per-model scripts, in model-space order (empty for untouched
    /// models).
    pub deltas: Vec<Delta>,
}

/// The session's consistency status, read from the warm cache — no
/// evaluation happens to produce one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncStatus {
    /// True iff every directional check currently holds.
    pub consistent: bool,
    /// Violating universal bindings across all checks (uncapped).
    pub violations: usize,
}

/// A successful [`SyncSession::repair`]: the least-change scripts, as
/// returned by the engine, already applied to the session.
#[derive(Clone, Debug)]
pub struct SyncRepair {
    /// Total weighted distance of the repair.
    pub cost: u64,
    /// Per-model repair scripts (engine form, not journal-expanded).
    pub deltas: Vec<Delta>,
}

/// A long-lived synchronization session over one model tuple: owns the
/// warm incremental checker, the commutative state fingerprint, and the
/// edit journal. See the [module docs](self) for the design.
///
/// ```
/// use mmt_core::{Shape, SyncSession, Transformation};
/// use mmt_deps::DomIdx;
/// use mmt_dist::EditOp;
/// use mmt_gen::{feature_workload, FeatureSpec, CF_METAMODEL, FM_METAMODEL};
/// use mmt_model::{ObjId, Value};
///
/// let t = Transformation::from_sources(
///     &mmt_gen::transformation_source(2),
///     &[CF_METAMODEL, FM_METAMODEL],
/// ).unwrap();
/// let w = feature_workload(FeatureSpec::default());
///
/// // One cold start; everything after is O(edit).
/// let mut session = t.session(&w.models).unwrap();
/// assert!(session.status().consistent);
///
/// // Drift: add a fresh mandatory feature to the feature model.
/// let fm = &w.fm;
/// let feature = fm.class_named("Feature").unwrap();
/// let name = fm.attr_of(feature, mmt_model::Sym::new("name")).unwrap();
/// let mand = fm.attr_of(feature, mmt_model::Sym::new("mandatory")).unwrap();
/// let fm_idx = DomIdx(2);
/// let id = ObjId(session.models()[2].id_bound() as u32);
/// session.apply(fm_idx, EditOp::AddObj { id, class: feature }).unwrap();
/// session.apply(fm_idx, EditOp::SetAttr {
///     id, attr: name, value: Value::str("brakes"), old: Value::str(""),
/// }).unwrap();
/// let status = session.apply(fm_idx, EditOp::SetAttr {
///     id, attr: mand, value: Value::Bool(true), old: Value::Bool(false),
/// }).unwrap();
/// assert!(!status.consistent);
///
/// // Least-change repair towards the configurations, from the warm state.
/// let repair = session.repair(Shape::of(&[0, 1])).unwrap().expect("repairable");
/// assert!(repair.cost > 0);
/// assert!(session.status().consistent);
///
/// // The journal saw 3 edits + 1 repair; roll everything back.
/// assert_eq!(session.journal().len(), 4);
/// session.rollback_all().unwrap();
/// assert!(session.status().consistent);
/// assert!(session.models()[2].graph_eq(&w.models[2]));
/// ```
pub struct SyncSession {
    t: Arc<Transformation>,
    checker: DeltaChecker,
    journal: Vec<JournalEntry>,
    fp: u64,
    opts: SessionOptions,
}

impl SyncSession {
    /// Opens a session over `models` (cloned; the session owns its
    /// tuple) with default [`SessionOptions`]. This is the one cold
    /// start: the initial full consistency check runs here.
    ///
    /// The session takes (or shares — pass an [`Arc<Transformation>`])
    /// ownership of the transformation: a `SyncSession` is a `'static +
    /// Send` handle that can outlive the opening stack frame, move
    /// across threads, and be parked in a [`crate::SyncHub`].
    pub fn new(
        t: impl Into<Arc<Transformation>>,
        models: &[Model],
    ) -> Result<SyncSession, CoreError> {
        SyncSession::with_options(t, models, SessionOptions::default())
    }

    /// As [`SyncSession::new`] with explicit options.
    pub fn with_options(
        t: impl Into<Arc<Transformation>>,
        models: &[Model],
        opts: SessionOptions,
    ) -> Result<SyncSession, CoreError> {
        let t = t.into();
        let check_opts = CheckOptions {
            memoize: true,
            max_violations: usize::MAX,
        };
        let checker =
            DeltaChecker::with_options(t.hir_arc(), models, check_opts).map_err(delta_core_err)?;
        let fp = state_fingerprint(checker.models(), DomSet::full(t.arity()));
        Ok(SyncSession {
            t,
            checker,
            journal: Vec::new(),
            fp,
            opts,
        })
    }

    /// The transformation this session synchronizes against (a shared
    /// handle — clone it to open sibling sessions over the same
    /// specification).
    pub fn transformation(&self) -> &Arc<Transformation> {
        &self.t
    }

    /// The live model tuple, in model-space order.
    pub fn models(&self) -> &[Model] {
        self.checker.models()
    }

    /// The journal: one entry per effective [`SyncSession::apply`],
    /// [`SyncSession::apply_script`], or [`SyncSession::repair`] (no-op
    /// actions and cost-0 repairs are not journaled).
    pub fn journal(&self) -> &[JournalEntry] {
        &self.journal
    }

    /// The session's commutative state fingerprint over the whole
    /// tuple — maintained incrementally in O(touched objects) per edit;
    /// always equal to
    /// [`state_fingerprint`]`(self.models(), DomSet::full(arity))`.
    /// Server layers use it as a cheap state-identity token (cache keys,
    /// optimistic-concurrency checks).
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// The warm checker itself — a read-only view for callers that want
    /// the cached match state (e.g. to fork their own search roots).
    pub fn checker(&self) -> &DeltaChecker {
        &self.checker
    }

    /// Current consistency status, from the warm cache. O(match state),
    /// no evaluation.
    pub fn status(&self) -> SyncStatus {
        SyncStatus {
            consistent: self.checker.consistent(),
            violations: self.checker.violation_count(),
        }
    }

    /// The full [`CheckReport`], assembled from the warm cache — no
    /// re-checking.
    pub fn report(&self) -> CheckReport {
        self.checker.report()
    }

    /// Applies one edit to the model at `model`: the tuple changes, the
    /// incremental oracle re-establishes consistency status in
    /// O(|edit|), and the (expanded) edit is journaled. No-op edits
    /// (setting an attribute to its current value, re-adding a present
    /// link, removing an absent one) change nothing and are not
    /// journaled.
    ///
    /// On [`CoreError::Model`] the session is unchanged; on
    /// [`CoreError::Eval`] the checker is poisoned and the session must
    /// be reopened.
    pub fn apply(&mut self, model: DomIdx, op: EditOp) -> Result<SyncStatus, CoreError> {
        let mut deltas = vec![Delta::new(); self.t.arity()];
        let result = self.apply_into(model, &op, &mut deltas);
        self.commit_entry(JournalKind::Edit, deltas);
        result.map(|()| self.status())
    }

    /// Applies a whole edit script to the model at `model`
    /// ([`SyncSession::apply`] per op, in script order) as **one**
    /// journal entry — one [`SyncSession::rollback`] step undoes the
    /// whole script. If an op fails midway, the ops already applied stay
    /// journaled (so they remain rollback-able) and the error is
    /// returned.
    pub fn apply_script(&mut self, model: DomIdx, delta: &Delta) -> Result<SyncStatus, CoreError> {
        let mut deltas = vec![Delta::new(); self.t.arity()];
        let mut result = Ok(());
        for op in delta.ops() {
            result = self.apply_into(model, op, &mut deltas);
            if result.is_err() {
                break;
            }
        }
        self.commit_entry(JournalKind::Edit, deltas);
        result.map(|()| self.status())
    }

    /// Runs a least-change repair under `shape` from the **warm**
    /// checker state, auto-applies the repair scripts to the session,
    /// and journals them (one entry). Returns `None` — journaling
    /// nothing — when no repair exists within the engine's bounds.
    ///
    /// The outcome (cost, scripts, resulting tuple) is exactly what the
    /// stateless [`Transformation::enforce_with`] would produce for the
    /// session's current tuple with the session's options; a consistent
    /// tuple short-circuits to a cost-0 repair without running any
    /// engine.
    pub fn repair(&mut self, shape: Shape) -> Result<Option<SyncRepair>, CoreError> {
        let targets = shape
            .checked_targets(self.t.arity())
            .map_err(CoreError::Shape)?;
        if targets.is_empty() {
            return Err(CoreError::Repair(RepairError::NoTargets));
        }
        if self.checker.consistent() {
            return Ok(Some(SyncRepair {
                cost: 0,
                deltas: vec![Delta::new(); self.t.arity()],
            }));
        }
        let outcome = match self.opts.engine {
            EngineKind::Search => {
                SearchEngine::new(self.opts.repair.clone()).repair_warm(&self.checker, targets)
            }
            EngineKind::Sat => {
                SatEngine::new(self.opts.repair.clone()).repair_warm(&self.checker, targets)
            }
        }
        .map_err(CoreError::Repair)?;
        let Some(out) = outcome else {
            return Ok(None);
        };
        let mut deltas = vec![Delta::new(); self.t.arity()];
        let mut result = Ok(());
        'models: for (i, script) in out.deltas.iter().enumerate() {
            for op in script.ops() {
                result = self.apply_into(DomIdx(i as u8), op, &mut deltas);
                if result.is_err() {
                    break 'models;
                }
            }
        }
        self.commit_entry(
            JournalKind::Repair {
                shape,
                cost: out.cost,
            },
            deltas,
        );
        result?;
        debug_assert!(self.checker.consistent(), "repair left violations behind");
        Ok(Some(SyncRepair {
            cost: out.cost,
            deltas: out.deltas,
        }))
    }

    /// Undoes the last `n` journal entries (saturating at the journal
    /// length) by replaying exact inverse edits through the incremental
    /// path. Returns how many entries were undone. `rollback` of
    /// everything restores the seed tuple's object graph exactly.
    pub fn rollback(&mut self, n: usize) -> Result<usize, CoreError> {
        let n = n.min(self.journal.len());
        for _ in 0..n {
            let entry = self.journal.pop().expect("n is bounded by the length");
            for (i, delta) in entry.deltas.iter().enumerate() {
                let model = DomIdx(i as u8);
                for op in delta.inverse().ops() {
                    let next = fingerprint_step(self.checker.models(), self.fp, model, op);
                    self.checker.apply(model, op).map_err(delta_core_err)?;
                    if let Some(next) = next {
                        self.fp = next;
                    }
                }
            }
        }
        Ok(n)
    }

    /// Undoes the whole journal ([`SyncSession::rollback`] of its
    /// length): the session returns to its seed tuple.
    pub fn rollback_all(&mut self) -> Result<usize, CoreError> {
        self.rollback(self.journal.len())
    }

    /// Replays one **already-expanded** journal entry — the exact form
    /// [`SyncSession::journal`] stores and a durable store persists —
    /// through the incremental path, then pushes the entry onto the
    /// journal verbatim.
    ///
    /// Unlike [`SyncSession::apply`], ops are *not* re-expanded or
    /// no-op-filtered: expanded entries are fixpoints of expansion, so
    /// re-running them op by op reproduces the original session's
    /// checker state, fingerprint, and journal bytes exactly. That is
    /// the recovery ≡ replay contract crash recovery (`mmt-store`)
    /// builds on. Empty entries are skipped (the live path never
    /// journals them).
    ///
    /// On error the entry is not journaled but the checker may have
    /// absorbed a prefix of it — discard the session, as with
    /// [`CoreError::Eval`] poisoning.
    pub fn replay_entry(&mut self, entry: JournalEntry) -> Result<SyncStatus, CoreError> {
        assert_eq!(
            entry.deltas.len(),
            self.t.arity(),
            "journal entry arity matches the session"
        );
        for (i, delta) in entry.deltas.iter().enumerate() {
            let model = DomIdx(i as u8);
            for op in delta.ops() {
                let next = fingerprint_step(self.checker.models(), self.fp, model, op);
                self.checker.apply(model, op).map_err(delta_core_err)?;
                if let Some(next) = next {
                    self.fp = next;
                }
            }
        }
        if entry.deltas.iter().any(|d| !d.is_empty()) {
            self.journal.push(entry);
        }
        Ok(self.status())
    }

    /// Reconstructs the tuple this session was opened over by replaying
    /// the journal's exact inverse over a copy of the live tuple —
    /// possible because entries are stored in expanded, exactly
    /// invertible form. Durable stores use this to write an id-faithful
    /// seed without having kept the original models around.
    pub fn seed_models(&self) -> Result<Vec<Model>, CoreError> {
        let mut models = self.checker.models().to_vec();
        for entry in self.journal.iter().rev() {
            for (i, delta) in entry.deltas.iter().enumerate() {
                delta
                    .inverse()
                    .apply(&mut models[i])
                    .map_err(CoreError::Model)?;
            }
        }
        Ok(models)
    }

    /// Flattens the journal into one per-model script, in entry order.
    /// Applying slot `i` to the seed tuple's model `i` reproduces the
    /// live model byte for byte — the replay invariant the differential
    /// suite checks.
    pub fn journal_script(&self) -> Vec<Delta> {
        let mut out = vec![Delta::new(); self.t.arity()];
        for entry in &self.journal {
            for (i, delta) in entry.deltas.iter().enumerate() {
                for &op in delta.ops() {
                    out[i].push(op);
                }
            }
        }
        out
    }

    /// Pushes a journal entry unless it is empty (pure no-op action).
    fn commit_entry(&mut self, kind: JournalKind, deltas: Vec<Delta>) {
        if deltas.iter().any(|d| !d.is_empty()) {
            self.journal.push(JournalEntry { kind, deltas });
        }
    }

    /// Applies one op in expanded form: fingerprint advanced, checker
    /// updated, effective ops recorded into `entry`. Ops that fail leave
    /// the session unchanged and unrecorded.
    fn apply_into(
        &mut self,
        model: DomIdx,
        op: &EditOp,
        entry: &mut [Delta],
    ) -> Result<(), CoreError> {
        let m = model.index();
        assert!(m < self.t.arity(), "model index out of range");
        for e in expand_op(&self.checker.models()[m], op) {
            let next = fingerprint_step(self.checker.models(), self.fp, model, &e);
            self.checker.apply(model, &e).map_err(delta_core_err)?;
            if let Some(next) = next {
                self.fp = next;
            }
            entry[m].push(e);
        }
        Ok(())
    }
}

impl std::fmt::Debug for SyncSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncSession")
            .field("arity", &self.t.arity())
            .field("consistent", &self.checker.consistent())
            .field("journal_len", &self.journal.len())
            .field("fingerprint", &self.fp)
            .finish()
    }
}

/// Expands one op into its journal form against the pre-edit model:
///
/// * no-op edits expand to nothing;
/// * `SetAttr` is normalized so `old` is the *actual* current value
///   (exact inversion never trusts the caller's claim);
/// * `DelObj` of an object still carrying links or non-default
///   attributes becomes explicit `DelLink`s (incoming then outgoing)
///   and `SetAttr`-to-default ops followed by the bare deletion, so the
///   whole expansion inverts exactly op by op;
/// * invalid ops (missing objects, …) pass through unchanged — the
///   checker's own application surfaces the error.
fn expand_op(m: &Model, op: &EditOp) -> Vec<EditOp> {
    match *op {
        EditOp::SetAttr {
            id, attr, value, ..
        } => match m.attr(id, attr) {
            Ok(cur) if cur == value => Vec::new(),
            Ok(cur) => vec![EditOp::SetAttr {
                id,
                attr,
                value,
                old: cur,
            }],
            Err(_) => vec![*op],
        },
        EditOp::AddLink { src, r, dst } => {
            if m.contains(src) && m.contains(dst) && m.has_link(src, r, dst) {
                Vec::new()
            } else {
                vec![*op]
            }
        }
        EditOp::DelLink { src, r, dst } => {
            if m.contains(src) && m.contains(dst) && !m.has_link(src, r, dst) {
                Vec::new()
            } else {
                vec![*op]
            }
        }
        EditOp::DelObj { id, .. } => {
            let Ok(class) = m.class_of(id) else {
                return vec![*op]; // missing object: let the checker error
            };
            let meta = m.metamodel();
            let mut out = Vec::new();
            // Incoming links (the ones deletion would scrub) — O(degree)
            // via the model's inverse link index.
            for &(src, r) in m.incoming(id) {
                if src != id {
                    out.push(EditOp::DelLink { src, r, dst: id });
                }
            }
            // Outgoing links and non-default attributes.
            let obj = m.get(id).expect("class_of succeeded");
            for (slot, &r) in meta.class(class).all_refs.iter().enumerate() {
                for &dst in &obj.refs[slot] {
                    out.push(EditOp::DelLink { src: id, r, dst });
                }
            }
            let defaults = meta.default_attrs(class);
            for (slot, &attr) in meta.class(class).all_attrs.iter().enumerate() {
                if obj.attrs[slot] != defaults[slot] {
                    out.push(EditOp::SetAttr {
                        id,
                        attr,
                        value: defaults[slot],
                        old: obj.attrs[slot],
                    });
                }
            }
            out.push(EditOp::DelObj { id, class });
            out
        }
        EditOp::AddObj { .. } => vec![*op],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_gen::{feature_workload, inject, FeatureSpec, Injection};
    use mmt_model::text::print_model;
    use mmt_model::{ObjId, Sym, Value};

    fn fixture() -> (Transformation, mmt_gen::FeatureWorkload) {
        let t = Transformation::from_sources(
            &mmt_gen::transformation_source(2),
            &[mmt_gen::CF_METAMODEL, mmt_gen::FM_METAMODEL],
        )
        .unwrap();
        let w = feature_workload(FeatureSpec {
            n_features: 5,
            ..FeatureSpec::default()
        });
        (t, w)
    }

    /// The redesign's core guarantee, compile-asserted: a session is a
    /// `'static + Send` handle (it owns its tuple and shares the
    /// transformation behind `Arc`), so servers can hold it beyond the
    /// opening stack frame and move it across threads.
    #[test]
    fn sessions_are_static_send_handles() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<SyncSession>();
        assert_send::<SessionOptions>();
        // And in practice: open on this thread, drive on another —
        // impossible with the historical `SyncSession<'t>` borrow.
        let (t, w) = fixture();
        let session = t.session(&w.models).unwrap();
        drop(t); // the opening transformation value can die first
        let handle = std::thread::spawn(move || {
            let mut session = session;
            let fm = session.transformation().metamodels()[2].clone();
            let feature = fm.class_named("Feature").unwrap();
            let id = ObjId(session.models()[2].id_bound() as u32);
            session
                .apply(DomIdx(2), EditOp::AddObj { id, class: feature })
                .unwrap();
            session.rollback_all().unwrap();
            session.status()
        });
        assert!(handle.join().unwrap().consistent);
    }

    #[test]
    fn status_reads_cache_without_evaluation() {
        let (t, w) = fixture();
        let session = t.session(&w.models).unwrap();
        assert!(session.status().consistent);
        assert_eq!(session.status().violations, 0);
        assert!(session.report().consistent());
        // The initial check is the only evaluation that happened.
        assert_eq!(session.checker().delta_stats().edits, 0);
    }

    #[test]
    fn fingerprint_tracks_recomputation() {
        let (t, w) = fixture();
        let mut session = t.session(&w.models).unwrap();
        let full = DomSet::full(t.arity());
        assert_eq!(
            session.fingerprint(),
            state_fingerprint(session.models(), full)
        );
        let fm = w.fm.class_named("Feature").unwrap();
        let name = w.fm.attr_of(fm, Sym::new("name")).unwrap();
        let id = ObjId(session.models()[2].id_bound() as u32);
        session
            .apply(DomIdx(2), EditOp::AddObj { id, class: fm })
            .unwrap();
        session
            .apply(
                DomIdx(2),
                EditOp::SetAttr {
                    id,
                    attr: name,
                    value: Value::str("x"),
                    old: Value::str(""),
                },
            )
            .unwrap();
        assert_eq!(
            session.fingerprint(),
            state_fingerprint(session.models(), full)
        );
        session.rollback_all().unwrap();
        assert_eq!(
            session.fingerprint(),
            state_fingerprint(session.models(), full)
        );
    }

    #[test]
    fn noop_edits_are_not_journaled() {
        let (t, w) = fixture();
        let mut session = t.session(&w.models).unwrap();
        let fm = w.fm.class_named("Feature").unwrap();
        let mand = w.fm.attr_of(fm, Sym::new("mandatory")).unwrap();
        let cur = session.models()[2].attr(ObjId(0), mand).unwrap();
        session
            .apply(
                DomIdx(2),
                EditOp::SetAttr {
                    id: ObjId(0),
                    attr: mand,
                    value: cur,
                    old: cur,
                },
            )
            .unwrap();
        assert!(session.journal().is_empty());
    }

    #[test]
    fn failed_edit_leaves_session_unchanged() {
        let (t, w) = fixture();
        let mut session = t.session(&w.models).unwrap();
        let fm = w.fm.class_named("Feature").unwrap();
        let before_fp = session.fingerprint();
        let err = session.apply(
            DomIdx(2),
            EditOp::DelObj {
                id: ObjId(999),
                class: fm,
            },
        );
        assert!(matches!(err, Err(CoreError::Model(_))));
        assert!(session.journal().is_empty());
        assert_eq!(session.fingerprint(), before_fp);
        assert!(session.models()[2].graph_eq(&w.models[2]));
    }

    #[test]
    fn repair_restores_consistency_and_journals() {
        let (t, mut w) = fixture();
        let seed = w.models.clone();
        let mut session = t.session(&w.models).unwrap();
        inject(&mut w, Injection::NewMandatoryInFm);
        // Mirror the injection as session edits.
        let d = Delta::between(&seed[2], &w.models[2]).unwrap();
        let status = session.apply_script(DomIdx(2), &d).unwrap();
        assert!(!status.consistent);
        let repair = session
            .repair(Shape::of(&[0, 1]))
            .unwrap()
            .expect("repairable");
        assert!(repair.cost > 0);
        assert!(session.status().consistent);
        assert_eq!(session.journal().len(), 2);
        assert!(matches!(
            session.journal()[1].kind,
            JournalKind::Repair { cost, .. } if cost == repair.cost
        ));
        // Cost-0 repair on the now-consistent tuple journals nothing.
        let zero = session.repair(Shape::of(&[0, 1])).unwrap().unwrap();
        assert_eq!(zero.cost, 0);
        assert_eq!(session.journal().len(), 2);
        // Roll the repair and the edits back: the seed graph returns.
        session.rollback_all().unwrap();
        for (live, orig) in session.models().iter().zip(&seed) {
            assert_eq!(print_model(live), print_model(orig));
        }
    }

    #[test]
    fn unrepairable_shape_returns_none_and_journals_nothing() {
        let (t, mut w) = fixture();
        let seed = w.models.clone();
        let mut session = t.session(&w.models).unwrap();
        inject(&mut w, Injection::NewMandatoryInFm);
        let d = Delta::between(&seed[2], &w.models[2]).unwrap();
        session.apply_script(DomIdx(2), &d).unwrap();
        let journal_len = session.journal().len();
        let out = session.repair(Shape::towards(0)).unwrap();
        assert!(out.is_none());
        assert_eq!(session.journal().len(), journal_len);
        // And the empty shape errors like the engines do.
        assert!(matches!(
            session.repair(Shape::from_targets(DomSet::EMPTY)),
            Err(CoreError::Repair(RepairError::NoTargets))
        ));
    }

    #[test]
    fn partial_rollback_pops_entries_in_reverse() {
        let (t, w) = fixture();
        let mut session = t.session(&w.models).unwrap();
        let cf = w.cf.class_named("Feature").unwrap();
        let name = w.cf.attr_of(cf, Sym::new("name")).unwrap();
        let id = ObjId(session.models()[0].id_bound() as u32);
        session
            .apply(DomIdx(0), EditOp::AddObj { id, class: cf })
            .unwrap();
        let mid = session.models()[0].clone();
        session
            .apply(
                DomIdx(0),
                EditOp::SetAttr {
                    id,
                    attr: name,
                    value: Value::str("late"),
                    old: Value::str(""),
                },
            )
            .unwrap();
        assert_eq!(session.rollback(1).unwrap(), 1);
        assert_eq!(print_model(&session.models()[0]), print_model(&mid));
        assert_eq!(session.rollback(5).unwrap(), 1); // saturates
        assert!(session.models()[0].graph_eq(&w.models[0]));
        assert_eq!(session.rollback(1).unwrap(), 0);
    }

    #[test]
    fn delobj_journal_entries_are_expanded() {
        let (t, w) = fixture();
        let mut session = t.session(&w.models).unwrap();
        let fm = w.fm.class_named("Feature").unwrap();
        // Delete a feature that carries a non-default name attribute.
        session
            .apply(
                DomIdx(2),
                EditOp::DelObj {
                    id: ObjId(0),
                    class: fm,
                },
            )
            .unwrap();
        let entry = &session.journal()[0];
        let ops = entry.deltas[2].ops();
        assert!(ops.len() >= 2, "expanded: attrs reset before deletion");
        assert!(matches!(ops[ops.len() - 1], EditOp::DelObj { .. }));
        assert!(ops[..ops.len() - 1]
            .iter()
            .all(|op| matches!(op, EditOp::SetAttr { .. } | EditOp::DelLink { .. })));
        // And the expansion inverts exactly.
        session.rollback_all().unwrap();
        assert_eq!(print_model(&session.models()[2]), print_model(&w.models[2]));
    }
}
