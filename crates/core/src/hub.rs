//! The multi-tenant session hub: one process, many concurrent
//! edit→check→repair loops.
//!
//! [`SyncHub`] is the server-side registry the un-borrowed ownership
//! story ([`SyncSession`] as a `'static + Send` handle, transformations
//! behind [`Arc`]) exists for: it keys shared [`Transformation`]s by id,
//! opens *named* sessions over them, and hands out [`SessionHandle`]s
//! that interior-lock their session — so independent clients synchronize
//! their own tuples concurrently while sharing one resolved
//! specification (and therefore one compiled check-statics graph).
//!
//! Locking discipline:
//!
//! * the two registries are each behind an [`RwLock`] taken only for
//!   map operations (lookup, insert, remove) — never while a session
//!   runs, so a slow repair in one session cannot stall `open`/`get`
//!   traffic;
//! * each session is behind its own [`Mutex`] inside its
//!   [`SessionHandle`]; clients serialize per session (the session API
//!   is `&mut self`) but never across sessions;
//! * the cold start of [`SyncHub::open`] (the initial full consistency
//!   check) runs *outside* every lock; the insert afterwards is the
//!   authoritative duplicate check, so two racing `open`s of the same
//!   name resolve to exactly one winner.
//!
//! ```
//! use mmt_core::{Shape, SyncHub, Transformation};
//!
//! let t = Transformation::from_sources(
//!     &mmt_gen::transformation_source(2),
//!     &[mmt_gen::CF_METAMODEL, mmt_gen::FM_METAMODEL],
//! ).unwrap();
//! let w = mmt_gen::feature_workload(mmt_gen::FeatureSpec::default());
//!
//! let hub = SyncHub::new();
//! hub.register("F", t).unwrap();
//! let alice = hub.open("alice", "F", &w.models).unwrap();
//! hub.open("bob", "F", &w.models).unwrap();
//! assert_eq!(hub.list(), ["alice", "bob"]);
//!
//! // Sessions share the transformation but own independent tuples.
//! assert!(alice.with(|s| s.status().consistent));
//! hub.close("bob").unwrap();
//! assert_eq!(hub.list(), ["alice"]);
//! ```

use crate::{CoreError, LintReport, SessionOptions, SyncSession, Transformation};
use mmt_model::Model;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, PoisonError};

use crate::mmt_sync::{Mutex, MutexGuard, RwLock};

/// Typed errors of the hub registry layer. Session-internal failures
/// (bad edits, poisoned checkers, unrepairable shapes) stay
/// [`CoreError`]s and surface through [`HubError::Core`] only where the
/// hub itself drives a session (the cold start in [`SyncHub::open`]).
#[derive(Debug)]
pub enum HubError {
    /// No transformation is registered under this id.
    UnknownTransformation(String),
    /// A transformation is already registered under this id.
    DuplicateTransformation(String),
    /// No session is open under this name.
    UnknownSession(String),
    /// A session is already open under this name.
    DuplicateSession(String),
    /// Opening the session failed (the cold-start consistency check).
    Core(CoreError),
}

impl fmt::Display for HubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HubError::UnknownTransformation(id) => {
                write!(f, "no transformation registered as `{id}`")
            }
            HubError::DuplicateTransformation(id) => {
                write!(f, "a transformation is already registered as `{id}`")
            }
            HubError::UnknownSession(name) => write!(f, "no session open as `{name}`"),
            HubError::DuplicateSession(name) => {
                write!(f, "a session is already open as `{name}`")
            }
            HubError::Core(e) => write!(f, "opening session failed: {e}"),
        }
    }
}

impl std::error::Error for HubError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HubError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for HubError {
    fn from(e: CoreError) -> Self {
        HubError::Core(e)
    }
}

/// One named session slot: the session behind its own lock, plus the
/// shared transformation it synchronizes against. Handles are
/// reference-counted — [`SyncHub::close`] removes the slot from the
/// registry, but a client still holding the handle can finish (and
/// drain) its work.
pub struct SessionHandle {
    name: String,
    transformation_id: String,
    transformation: Arc<Transformation>,
    session: Mutex<SyncSession>,
}

impl SessionHandle {
    /// The name this session was opened under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registry id of the transformation this session was opened
    /// against — what a durable snapshot records so a restore can
    /// re-bind the session to the same registered specification.
    pub fn transformation_id(&self) -> &str {
        &self.transformation_id
    }

    /// The shared transformation this session synchronizes against.
    pub fn transformation(&self) -> &Arc<Transformation> {
        &self.transformation
    }

    /// Locks the session for exclusive use. A client that panicked
    /// mid-call poisons only its own session's mutex; the lock recovers
    /// the value (the session's own poisoning contract — a
    /// [`CoreError::Eval`] marks it unusable — is the real safety net).
    ///
    /// # Poisoning policy
    ///
    /// Mutex poisoning is deliberately *not* load-bearing here, because
    /// the session's own invariants make recovery safe:
    ///
    /// * every mutation ([`SyncSession::apply`],
    ///   [`SyncSession::repair`], rollback) journals its entry only
    ///   after the checker absorbed the whole op — a panic in *client*
    ///   code between session calls can never leave a half-journaled
    ///   step, so the fingerprint/journal replay invariant (replaying
    ///   the journal over the seed tuple ≡ the live state, byte for
    ///   byte) survives the unwind;
    /// * a panic *inside* a session call is the session's own error
    ///   path: eval errors poison the session at the session level
    ///   (`CoreError::Eval` marks it unusable), which is stricter than
    ///   mutex poisoning and not recoverable by design.
    ///
    /// Recovering the mutex therefore only ever re-exposes a session
    /// that is consistent or already self-marked unusable — it never
    /// launders a torn state. `tests/hub_concurrent.rs` pins this with
    /// a differential replay after a mid-`with` client panic.
    pub fn lock(&self) -> MutexGuard<'_, SyncSession> {
        self.session.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `f` under the session lock — the convenience form of
    /// [`SessionHandle::lock`] for single calls. A panic in `f`
    /// unwinds through the lock without corrupting the session; see
    /// the poisoning policy on [`SessionHandle::lock`].
    pub fn with<R>(&self, f: impl FnOnce(&mut SyncSession) -> R) -> R {
        f(&mut self.lock())
    }
}

impl fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionHandle")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A thread-safe registry of named, concurrently drivable
/// [`SyncSession`]s over shared [`Transformation`]s. See the
/// [module docs](self) for the locking discipline and an example.
///
/// `SyncHub` is `Send + Sync + 'static` (compile-asserted): one hub
/// value — typically behind an `Arc` — serves every connection of a
/// server process.
#[derive(Debug, Default)]
pub struct SyncHub {
    transformations: RwLock<HashMap<String, Arc<Transformation>>>,
    sessions: RwLock<HashMap<String, Arc<SessionHandle>>>,
    /// The lint report of each registered transformation (non-error
    /// findings; erroring specs never make it into the registry).
    lint_reports: RwLock<HashMap<String, Arc<LintReport>>>,
}

impl SyncHub {
    /// An empty hub.
    pub fn new() -> SyncHub {
        SyncHub::default()
    }

    /// Registers a transformation under `id` and returns the shared
    /// handle every session opened against `id` will hold. Errors with
    /// [`HubError::DuplicateTransformation`] if the id is taken.
    ///
    /// Registration runs the static-analysis pass
    /// ([`Transformation::lint`]) first, *outside* every hub lock:
    /// error-severity findings reject the spec with [`CoreError::Lint`]
    /// before any session can open against it; warnings are stored and
    /// readable through [`SyncHub::lint_report`].
    pub fn register(
        &self,
        id: &str,
        t: impl Into<Arc<Transformation>>,
    ) -> Result<Arc<Transformation>, HubError> {
        let t = t.into();
        let report = t.lint();
        if report.has_errors() {
            return Err(HubError::Core(CoreError::Lint(report)));
        }
        let mut map = self
            .transformations
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        match map.entry(id.to_string()) {
            Entry::Occupied(_) => Err(HubError::DuplicateTransformation(id.to_string())),
            Entry::Vacant(v) => {
                v.insert(Arc::clone(&t));
                drop(map);
                self.lint_reports
                    .write()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(id.to_string(), Arc::new(report));
                Ok(t)
            }
        }
    }

    /// The lint report recorded when `id` was registered (warnings and
    /// infos only — erroring specs are rejected at registration).
    pub fn lint_report(&self, id: &str) -> Result<Arc<LintReport>, HubError> {
        self.lint_reports
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id)
            .cloned()
            .ok_or_else(|| HubError::UnknownTransformation(id.to_string()))
    }

    /// The transformation registered under `id`.
    pub fn transformation(&self, id: &str) -> Result<Arc<Transformation>, HubError> {
        self.transformations
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id)
            .cloned()
            .ok_or_else(|| HubError::UnknownTransformation(id.to_string()))
    }

    /// Registered transformation ids, sorted.
    pub fn transformations(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .transformations
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        ids.sort();
        ids
    }

    /// Opens a session named `name` over `models` against the
    /// transformation registered as `transformation_id`, with default
    /// [`SessionOptions`]. The cold start (initial full consistency
    /// check) runs outside every hub lock.
    pub fn open(
        &self,
        name: &str,
        transformation_id: &str,
        models: &[Model],
    ) -> Result<Arc<SessionHandle>, HubError> {
        self.open_with(name, transformation_id, models, SessionOptions::default())
    }

    /// As [`SyncHub::open`] with explicit [`SessionOptions`].
    pub fn open_with(
        &self,
        name: &str,
        transformation_id: &str,
        models: &[Model],
        opts: SessionOptions,
    ) -> Result<Arc<SessionHandle>, HubError> {
        let t = self.transformation(transformation_id)?;
        // Cheap pre-check so a doomed open skips the cold start; the
        // entry check below stays authoritative under the write lock.
        if self
            .sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(name)
        {
            return Err(HubError::DuplicateSession(name.to_string()));
        }
        let session = SyncSession::with_options(Arc::clone(&t), models, opts)?;
        self.insert(name, transformation_id, t, session)
    }

    /// Adopts an already-running session into the registry under `name`,
    /// stamped with the id of the (registered) transformation it
    /// synchronizes against. This is the restore path of durable
    /// snapshots: the session was rebuilt elsewhere (seed + journal
    /// replay) and must land in the hub *without* a second cold start.
    /// Errors like [`SyncHub::open`] on an unknown transformation id or
    /// a taken name.
    pub fn adopt(
        &self,
        name: &str,
        transformation_id: &str,
        session: SyncSession,
    ) -> Result<Arc<SessionHandle>, HubError> {
        let t = self.transformation(transformation_id)?;
        self.insert(name, transformation_id, t, session)
    }

    fn insert(
        &self,
        name: &str,
        transformation_id: &str,
        t: Arc<Transformation>,
        session: SyncSession,
    ) -> Result<Arc<SessionHandle>, HubError> {
        let handle = Arc::new(SessionHandle {
            name: name.to_string(),
            transformation_id: transformation_id.to_string(),
            transformation: t,
            session: Mutex::new(session),
        });
        let mut map = self
            .sessions
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        match map.entry(name.to_string()) {
            Entry::Occupied(_) => Err(HubError::DuplicateSession(name.to_string())),
            Entry::Vacant(v) => {
                v.insert(Arc::clone(&handle));
                Ok(handle)
            }
        }
    }

    /// The session open under `name`.
    pub fn get(&self, name: &str) -> Result<Arc<SessionHandle>, HubError> {
        self.sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
            .ok_or_else(|| HubError::UnknownSession(name.to_string()))
    }

    /// Closes (unregisters) the session named `name`, returning its
    /// handle so the caller can drain final state — clients still
    /// holding the handle keep working on the now-anonymous session.
    pub fn close(&self, name: &str) -> Result<Arc<SessionHandle>, HubError> {
        self.sessions
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name)
            .ok_or_else(|| HubError::UnknownSession(name.to_string()))
    }

    /// Handles of every open session, sorted by name — the enumeration
    /// a whole-hub snapshot walks.
    pub fn sessions(&self) -> Vec<Arc<SessionHandle>> {
        let mut handles: Vec<Arc<SessionHandle>> = self
            .sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .cloned()
            .collect();
        handles.sort_by(|a, b| a.name.cmp(&b.name));
        handles
    }

    /// Names of every open session, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use mmt_gen::{feature_workload, FeatureSpec};

    fn fixture() -> (Transformation, mmt_gen::FeatureWorkload) {
        let t = Transformation::from_sources(
            &mmt_gen::transformation_source(2),
            &[mmt_gen::CF_METAMODEL, mmt_gen::FM_METAMODEL],
        )
        .unwrap();
        let w = feature_workload(FeatureSpec::default());
        (t, w)
    }

    /// The hub itself is a `'static + Send + Sync` value — one hub per
    /// server process, shared by every connection.
    #[test]
    fn hub_is_send_sync_static() {
        fn assert_hub<T: Send + Sync + 'static>() {}
        assert_hub::<SyncHub>();
        assert_hub::<SessionHandle>();
        assert_hub::<HubError>();
    }

    #[test]
    fn open_get_close_list_roundtrip() {
        let (t, w) = fixture();
        let hub = SyncHub::new();
        let shared = hub.register("F", t).unwrap();
        assert_eq!(hub.transformations(), ["F"]);
        assert!(hub.is_empty());

        let a = hub.open("alice", "F", &w.models).unwrap();
        assert_eq!(a.name(), "alice");
        assert!(Arc::ptr_eq(a.transformation(), &shared));
        hub.open("bob", "F", &w.models).unwrap();
        assert_eq!(hub.list(), ["alice", "bob"]);
        assert_eq!(hub.len(), 2);

        // get returns the same handle (same session state).
        let a2 = hub.get("alice").unwrap();
        assert!(Arc::ptr_eq(&a, &a2));

        // Sessions are independent: drive alice, bob is untouched.
        a.with(|s| {
            assert!(s.status().consistent);
        });
        let closed = hub.close("bob").unwrap();
        assert_eq!(hub.list(), ["alice"]);
        // A drained handle still works after close.
        assert!(closed.with(|s| s.status().consistent));
    }

    #[test]
    fn register_rejects_statically_broken_specs() {
        // Unsatisfiable `when` is an error-severity lint (MMT003):
        // registration must refuse before any session can open.
        let t = Transformation::from_sources(
            r#"transformation T(l : M, r : M) {
              top relation R {
                n : Int;
                domain l a : A { x = n };
                domain r b : A { x = n };
                when { n > 3 and n < 2 }
                depend l -> r;
              }
            }"#,
            &["metamodel M { class A { attr x: Int; } }"],
        )
        .unwrap();
        let hub = SyncHub::new();
        let err = hub.register("broken", t).unwrap_err();
        assert!(
            matches!(&err, HubError::Core(CoreError::Lint(r)) if r.has_errors()),
            "{err}"
        );
        assert!(hub.transformations().is_empty());
        assert!(hub.lint_report("broken").is_err());
    }

    #[test]
    fn register_records_lint_warnings() {
        let (t, _) = fixture();
        let hub = SyncHub::new();
        hub.register("F", t).unwrap();
        let report = hub.lint_report("F").unwrap();
        assert_eq!(report.errors(), 0);
        // The paper's bidirectional MF/OF relations overlap on the
        // feature model: the repair-conflict lint fires as a warning.
        assert!(report.warnings() > 0, "{}", report.render_text());
        assert!(matches!(
            hub.lint_report("nope"),
            Err(HubError::UnknownTransformation(_))
        ));
    }

    #[test]
    fn typed_errors_cover_every_registry_misuse() {
        let (t, w) = fixture();
        let hub = SyncHub::new();
        assert!(matches!(
            hub.open("a", "F", &w.models),
            Err(HubError::UnknownTransformation(id)) if id == "F"
        ));
        hub.register("F", t.clone()).unwrap();
        assert!(matches!(
            hub.register("F", t),
            Err(HubError::DuplicateTransformation(_))
        ));
        hub.open("a", "F", &w.models).unwrap();
        assert!(matches!(
            hub.open("a", "F", &w.models),
            Err(HubError::DuplicateSession(_))
        ));
        assert!(matches!(hub.get("b"), Err(HubError::UnknownSession(_))));
        assert!(matches!(hub.close("b"), Err(HubError::UnknownSession(_))));
        // A bad tuple surfaces the CoreError through the hub, chained.
        let err = hub.open("short", "F", &w.models[..1]).unwrap_err();
        assert!(matches!(err, HubError::Core(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(hub.list(), ["a"]);
    }

    #[test]
    fn sessions_share_one_transformation() {
        let (t, w) = fixture();
        let hub = SyncHub::new();
        hub.register("F", t).unwrap();
        let a = hub.open("a", "F", &w.models).unwrap();
        let b = hub.open("b", "F", &w.models).unwrap();
        assert!(Arc::ptr_eq(a.transformation(), b.transformation()));
        // Repairing in one session leaves the sibling's tuple alone.
        let fm = w.fm.class_named("Feature").unwrap();
        let id = mmt_model::ObjId(w.models[2].id_bound() as u32);
        a.with(|s| {
            s.apply(
                mmt_deps::DomIdx(2),
                mmt_dist::EditOp::AddObj { id, class: fm },
            )
            .unwrap();
            assert_eq!(s.journal().len(), 1);
        });
        b.with(|s| {
            assert!(s.journal().is_empty());
            assert!(s.status().consistent);
            let out = s.repair(Shape::of(&[0, 1])).unwrap().unwrap();
            assert_eq!(out.cost, 0);
        });
    }
}
