//! # mmt-core — the multidirectional transformation framework
//!
//! The paper's primary contribution as a library: a [`Transformation`]
//! bundles metamodels and a resolved QVT-R specification (with §2.2
//! checking dependencies); [`Transformation::check`] runs the extended
//! checkonly semantics, and [`Transformation::enforce`] runs §3's
//! least-change enforcement for any repair [`Shape`] — the
//! multidirectional generalization where the user "selects which models
//! are to be updated, establishing the shape of the consistency-repairing
//! transformation" (§4).
//!
//! ```
//! use mmt_core::{EngineKind, Shape, Transformation};
//! use mmt_gen::{CF_METAMODEL, FM_METAMODEL};
//!
//! let t = Transformation::from_sources(
//!     &mmt_gen::transformation_source(2),
//!     &[CF_METAMODEL, FM_METAMODEL],
//! ).unwrap();
//! let w = mmt_gen::feature_workload(mmt_gen::FeatureSpec::default());
//! assert!(t.check(&w.models).unwrap().consistent());
//! ```

pub mod hub;
pub mod mmt_sync;
pub mod session;

pub use hub::{HubError, SessionHandle, SyncHub};
pub use session::{JournalEntry, JournalKind, SessionOptions, SyncRepair, SyncSession, SyncStatus};

use mmt_check::{CheckError, CheckOptions, CheckReport, Checker, EvalError};
use mmt_deps::{DepSet, DomIdx, DomSet};
pub use mmt_enforce::RepairRequest;
use mmt_enforce::{
    RepairEngine, RepairError, RepairOptions, RepairOutcome, SatEngine, SearchEngine,
};
pub use mmt_lint::{Lint, LintCode, LintOptions, LintReport, Severity};
use mmt_model::text::{parse_metamodel, ParseError};
use mmt_model::{Metamodel, Model, ModelError, Sym};
use mmt_qvtr::{parse_and_resolve, FrontendError, Hir};
use std::fmt;
use std::sync::Arc;

/// A repair shape: the set of models the enforcement may rewrite.
///
/// §3 enumerates the interesting instances for `F ⊆ FM × CFᵏ`:
/// `→F_FM` (towards the feature model), `→Fⁱ_CF` (towards one
/// configuration), `→F_CFᵏ` (towards all configurations) and
/// `→Fⁱ_{FM×CFᵏ⁻¹}` (towards everything but one configuration).
///
/// Construction is **checked**: an index too large for the underlying
/// bitset ([`mmt_deps::MAX_DOMAINS`]) is remembered instead of being
/// silently truncated into a wrong-but-valid target set (the historical
/// `usize as u8` cast made `Shape::towards(256)` mean "model 0"), and
/// every framework entry point validates the shape against the
/// transformation's arity ([`Shape::checked_targets`]), surfacing
/// [`CoreError::Shape`] for out-of-range indices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Shape {
    targets: DomSet,
    /// First constructor index that does not fit the bitset — kept so
    /// validation can name it instead of repairing the wrong models.
    oob: Option<usize>,
}

impl Shape {
    /// Update exactly the model at `index` (the standard's `→Fⁱ`).
    pub fn towards(index: usize) -> Shape {
        Shape::of(&[index])
    }

    /// Update every model except the one at `index`
    /// (`→Fⁱ_{FM×CFᵏ⁻¹}`-style shapes). `index` must name one of the
    /// `arity` models; anything else is flagged for the entry-point
    /// validation (excluding a model the tuple does not have is a caller
    /// bug, not a no-op).
    pub fn all_but(index: usize, arity: usize) -> Shape {
        if index >= arity.min(mmt_deps::MAX_DOMAINS) {
            return Shape {
                targets: DomSet::full(arity),
                oob: Some(index),
            };
        }
        Shape {
            targets: DomSet::full(arity).without(DomIdx(index as u8)),
            oob: None,
        }
    }

    /// Update every model in `indices`.
    pub fn of(indices: &[usize]) -> Shape {
        let mut targets = DomSet::EMPTY;
        let mut oob = None;
        for &i in indices {
            if i < mmt_deps::MAX_DOMAINS {
                targets = targets.with(DomIdx(i as u8));
            } else if oob.is_none() {
                oob = Some(i);
            }
        }
        Shape { targets, oob }
    }

    /// Update every model.
    pub fn all(arity: usize) -> Shape {
        Shape::from_targets(DomSet::full(arity))
    }

    /// A shape over an already-validated target set (the raw layer the
    /// engines and [`RepairRequest`] speak).
    pub fn from_targets(targets: DomSet) -> Shape {
        Shape { targets, oob: None }
    }

    /// The underlying target set, unvalidated. Prefer
    /// [`Shape::checked_targets`] when a transformation arity is at
    /// hand.
    pub fn targets(&self) -> DomSet {
        self.targets
    }

    /// The target set, validated against a transformation of `arity`
    /// models: every targeted index must exist. This is what the
    /// `enforce`/`session`/`repair` entry points call before handing the
    /// set to an engine.
    pub fn checked_targets(&self, arity: usize) -> Result<DomSet, ShapeError> {
        if let Some(index) = self.oob {
            return Err(ShapeError { index, arity });
        }
        if !self.targets.subset_of(DomSet::full(arity)) {
            let index = self
                .targets
                .iter()
                .map(|d| d.index())
                .find(|&i| i >= arity)
                .expect("some member is out of range");
            return Err(ShapeError { index, arity });
        }
        Ok(self.targets)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.oob {
            Some(index) => write!(f, "→{}∪{{M{index}}}", self.targets),
            None => write!(f, "→{}", self.targets),
        }
    }
}

/// A repair shape targeted a model index the transformation does not
/// have.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShapeError {
    /// The offending model index.
    pub index: usize,
    /// The transformation's arity.
    pub arity: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repair shape targets model {}, but the transformation has {} model parameters",
            self.index, self.arity
        )
    }
}

impl std::error::Error for ShapeError {}

/// Which enforcement engine to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// Uniform-cost search with the concrete checker as oracle.
    Search,
    /// Bounded grounding to SAT with a minimal-cost loop.
    Sat,
}

/// Framework-level errors.
#[derive(Debug)]
pub enum CoreError {
    /// A metamodel failed to parse.
    Metamodel(ParseError),
    /// The transformation failed to parse or resolve.
    Frontend(FrontendError),
    /// Binding models failed.
    Check(CheckError),
    /// Checkonly evaluation failed.
    Eval(EvalError),
    /// Enforcement failed.
    Repair(RepairError),
    /// A model edit failed (session edits against missing objects, …).
    Model(ModelError),
    /// A repair shape referenced a model the transformation lacks.
    Shape(ShapeError),
    /// The static-analysis pass rejected the specification (the report
    /// carries every finding, errors first).
    Lint(LintReport),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Metamodel(e) => write!(f, "metamodel: {e}"),
            CoreError::Frontend(e) => write!(f, "{e}"),
            CoreError::Check(e) => write!(f, "check: {e}"),
            CoreError::Eval(e) => write!(f, "eval: {e}"),
            CoreError::Repair(e) => write!(f, "repair: {e}"),
            CoreError::Model(e) => write!(f, "model: {e}"),
            CoreError::Shape(e) => write!(f, "shape: {e}"),
            CoreError::Lint(report) => {
                write!(f, "lint: {} error(s)", report.errors())?;
                if let Some(first) = report.lints.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CoreError {
    /// Chains to the wrapped layer error, so generic error reporters
    /// (`anyhow`-style `{:#}` walkers, `Error::source` loops) see the
    /// full story instead of a single flattened line.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Metamodel(e) => Some(e),
            CoreError::Frontend(e) => Some(e),
            CoreError::Check(e) => Some(e),
            CoreError::Eval(e) => Some(e),
            CoreError::Repair(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::Shape(e) => Some(e),
            CoreError::Lint(_) => None,
        }
    }
}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Metamodel(e)
    }
}

impl From<FrontendError> for CoreError {
    fn from(e: FrontendError) -> Self {
        CoreError::Frontend(e)
    }
}

impl From<CheckError> for CoreError {
    fn from(e: CheckError) -> Self {
        CoreError::Check(e)
    }
}

impl From<EvalError> for CoreError {
    fn from(e: EvalError) -> Self {
        CoreError::Eval(e)
    }
}

impl From<RepairError> for CoreError {
    fn from(e: RepairError) -> Self {
        CoreError::Repair(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

/// A multidirectional transformation bound to its metamodels.
///
/// The resolved specification lives behind a shared [`Arc<Hir>`] —
/// cloning a `Transformation` is a couple of reference-count bumps, and
/// every long-lived consumer ([`SyncSession`], [`SyncHub`], each
/// [`mmt_check::DeltaChecker`] a search explores) holds its own handle
/// instead of borrowing the caller's stack frame.
#[derive(Clone, Debug)]
pub struct Transformation {
    hir: Arc<Hir>,
    metamodels: Vec<Arc<Metamodel>>,
}

impl Transformation {
    /// Parses and resolves a transformation from textual sources.
    pub fn from_sources(
        qvtr_src: &str,
        metamodel_srcs: &[&str],
    ) -> Result<Transformation, CoreError> {
        let metamodels: Vec<Arc<Metamodel>> = metamodel_srcs
            .iter()
            .map(|s| parse_metamodel(s))
            .collect::<Result<_, _>>()?;
        let hir = parse_and_resolve(qvtr_src, &metamodels)?;
        Ok(Transformation::from_hir(hir))
    }

    /// Wraps an already-resolved transformation (a plain [`Hir`] or an
    /// already-shared `Arc<Hir>`).
    pub fn from_hir(hir: impl Into<Arc<Hir>>) -> Transformation {
        let hir = hir.into();
        let metamodels = hir.models.iter().map(|m| Arc::clone(&m.meta)).collect();
        Transformation { hir, metamodels }
    }

    /// The resolved representation.
    pub fn hir(&self) -> &Hir {
        &self.hir
    }

    /// The shared handle on the resolved representation — what the
    /// repair engines and incremental checkers clone to own their world.
    pub fn hir_arc(&self) -> &Arc<Hir> {
        &self.hir
    }

    /// The metamodels this transformation was resolved against.
    pub fn metamodels(&self) -> &[Arc<Metamodel>] {
        &self.metamodels
    }

    /// Number of model parameters.
    pub fn arity(&self) -> usize {
        self.hir.arity()
    }

    /// Model parameter names, in model-space order.
    pub fn model_names(&self) -> Vec<Sym> {
        self.hir.models.iter().map(|m| m.name).collect()
    }

    /// Runs the static-analysis pass (`mmt-lint`) over the resolved
    /// specification: well-formedness, repair-conflict, and
    /// grounding-cost lints. Never fails — the report carries the
    /// findings; [`SyncHub::register`] rejects on
    /// [`LintReport::has_errors`].
    pub fn lint(&self) -> LintReport {
        self.lint_with(&LintOptions::default())
    }

    /// As [`Transformation::lint`] with explicit options (e.g. allowed
    /// codes).
    pub fn lint_with(&self, opts: &LintOptions) -> LintReport {
        mmt_lint::lint(&self.hir, opts)
    }

    /// Runs checkonly evaluation (extended semantics, §2.2).
    pub fn check(&self, models: &[Model]) -> Result<CheckReport, CoreError> {
        self.check_with(models, CheckOptions::default())
    }

    /// As [`Transformation::check`] with explicit options.
    pub fn check_with(
        &self,
        models: &[Model],
        opts: CheckOptions,
    ) -> Result<CheckReport, CoreError> {
        let checker = Checker::with_options(&self.hir, models, opts)?;
        Ok(checker.check()?)
    }

    /// Runs §3 least-change enforcement: rewrite the models selected by
    /// `shape` so the tuple becomes consistent, at minimal weighted
    /// distance. Returns `None` when the shape cannot restore consistency
    /// within the engine's bounds; [`CoreError::Shape`] when the shape
    /// targets a model this transformation does not have.
    pub fn enforce(
        &self,
        models: &[Model],
        shape: Shape,
        engine: EngineKind,
    ) -> Result<Option<RepairOutcome>, CoreError> {
        self.enforce_with(models, shape, engine, RepairOptions::default())
    }

    /// As [`Transformation::enforce`] with explicit options.
    pub fn enforce_with(
        &self,
        models: &[Model],
        shape: Shape,
        engine: EngineKind,
        opts: RepairOptions,
    ) -> Result<Option<RepairOutcome>, CoreError> {
        let targets = shape
            .checked_targets(self.arity())
            .map_err(CoreError::Shape)?;
        let outcome = match engine {
            EngineKind::Search => SearchEngine::new(opts).repair(&self.hir, models, targets)?,
            EngineKind::Sat => SatEngine::new(opts).repair(&self.hir, models, targets)?,
        };
        Ok(outcome)
    }

    /// Runs §3 enforcement over a batch of independent model tuples,
    /// fanning the requests across [`RepairOptions::jobs`] worker
    /// threads ([`mmt_enforce::RepairEngine::repair_batch`]). Slot `i`
    /// of the result is exactly what [`Transformation::enforce_with`]
    /// would return for request `i` — the worker pool changes wall-clock
    /// time, never outcomes.
    pub fn enforce_batch(
        &self,
        requests: &[RepairRequest],
        engine: EngineKind,
        opts: RepairOptions,
    ) -> Vec<Result<Option<RepairOutcome>, RepairError>> {
        match engine {
            EngineKind::Search => SearchEngine::new(opts).repair_batch(&self.hir, requests),
            EngineKind::Sat => SatEngine::new(opts).repair_batch(&self.hir, requests),
        }
    }

    /// Opens a stateful [`SyncSession`] over `models`: one cold start,
    /// then O(|edit|) consistency tracking and warm-rooted repairs for
    /// the whole edit→check→repair loop. See [`session`].
    ///
    /// The session is a `'static + Send` handle — it clones this
    /// transformation's shared internals (cheap: reference-count bumps)
    /// and owns them, so it can outlive the caller's borrow, move to
    /// another thread, or be parked in a [`SyncHub`].
    pub fn session(&self, models: &[Model]) -> Result<SyncSession, CoreError> {
        SyncSession::new(self.clone(), models)
    }

    /// As [`Transformation::session`] with explicit [`SessionOptions`]
    /// (engine choice and repair options).
    pub fn session_with(
        &self,
        models: &[Model],
        opts: SessionOptions,
    ) -> Result<SyncSession, CoreError> {
        SyncSession::with_options(self.clone(), models, opts)
    }

    /// A copy of this transformation with every relation's dependency set
    /// replaced by the *standard semantics* over its domain models
    /// (`{dom R ∖ Mᵢ → Mᵢ}`). Used for the §2.1 expressiveness comparison
    /// and the §2.2 conservativity experiment.
    pub fn standardized(&self) -> Transformation {
        let mut hir = (*self.hir).clone();
        for rel in &mut hir.relations {
            let dom_models = DomSet::from_iter(rel.domains.iter().map(|d| d.model));
            let mut deps = DepSet::new(self.hir.arity());
            for d in &rel.domains {
                let dep = mmt_deps::Dep::new(dom_models.without(d.model), d.model)
                    .expect("target excluded from sources");
                deps.add(dep).expect("within arity");
            }
            rel.deps = deps;
        }
        Transformation {
            hir: Arc::new(hir),
            metamodels: self.metamodels.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_gen::{
        feature_workload, inject, transformation_source, FeatureSpec, Injection, CF_METAMODEL,
        FM_METAMODEL,
    };

    fn paper_transformation(k: usize) -> Transformation {
        Transformation::from_sources(&transformation_source(k), &[CF_METAMODEL, FM_METAMODEL])
            .unwrap()
    }

    #[test]
    fn check_consistent_workload() {
        let t = paper_transformation(2);
        let w = feature_workload(FeatureSpec::default());
        let report = t.check(&w.models).unwrap();
        assert!(report.consistent());
        assert_eq!(t.arity(), 3);
        assert_eq!(t.model_names().len(), 3);
    }

    #[test]
    fn shapes_enumerate_the_papers_transformations() {
        // For F ⊆ CF² × FM (fm at index 2):
        let fm = 2;
        // →F_FM : CFᵏ → FM.
        assert_eq!(Shape::towards(fm).targets().len(), 1);
        // →Fⁱ_CF.
        assert_eq!(Shape::towards(0).targets().len(), 1);
        // →F_CFᵏ : FM → CFᵏ.
        assert_eq!(Shape::of(&[0, 1]).targets().len(), 2);
        // →Fⁱ_{FM×CFᵏ⁻¹}.
        let s = Shape::all_but(0, 3);
        assert_eq!(s.targets().len(), 2);
        assert!(!s.targets().contains(DomIdx(0)));
        assert_eq!(Shape::all(3).targets().len(), 3);
        assert_eq!(Shape::of(&[0, 1]).to_string(), "→{M0 M1}");
    }

    #[test]
    fn enforce_repairs_injected_inconsistency() {
        let t = paper_transformation(2);
        let mut w = feature_workload(FeatureSpec {
            n_features: 4,
            ..FeatureSpec::default()
        });
        inject(&mut w, Injection::NewMandatoryInFm);
        assert!(!t.check(&w.models).unwrap().consistent());
        for engine in [EngineKind::Search, EngineKind::Sat] {
            let out = t
                .enforce(&w.models, Shape::of(&[0, 1]), engine)
                .unwrap()
                .expect("repairable");
            assert!(t.check(&out.models).unwrap().consistent(), "{engine:?}");
            assert!(out.cost > 0);
        }
    }

    #[test]
    fn standardized_transformation_misses_the_loophole() {
        // The §2.1 expressiveness gap, at the framework level.
        let t = paper_transformation(2);
        let std_t = t.standardized();
        let mut w = feature_workload(FeatureSpec {
            n_features: 3,
            k_configs: 2,
            mandatory_ratio: 1.0,
            select_prob: 0.0,
            seed: 5,
        });
        // Empty both configurations: extended semantics sees the missing
        // mandatory selections; standard semantics is blind.
        for c in 0..2 {
            let ids: Vec<_> = w.models[c].objects().map(|(id, _)| id).collect();
            for id in ids {
                w.models[c].delete(id).unwrap();
            }
        }
        assert!(!t.check(&w.models).unwrap().consistent());
        assert!(std_t.check(&w.models).unwrap().consistent());
    }

    #[test]
    fn enforce_batch_matches_per_request_enforce() {
        let t = paper_transformation(2);
        let requests: Vec<RepairRequest> = (0..6u64)
            .map(|seed| {
                let mut w = feature_workload(FeatureSpec {
                    n_features: 4,
                    seed,
                    ..FeatureSpec::default()
                });
                inject(&mut w, Injection::NewMandatoryInFm);
                RepairRequest {
                    models: w.models,
                    targets: Shape::of(&[0, 1]).targets(),
                }
            })
            .collect();
        for engine in [EngineKind::Search, EngineKind::Sat] {
            for jobs in [1usize, 3] {
                let opts = RepairOptions {
                    jobs,
                    ..RepairOptions::default()
                };
                let batch = t.enforce_batch(&requests, engine, opts.clone());
                assert_eq!(batch.len(), requests.len());
                for (i, (req, out)) in requests.iter().zip(&batch).enumerate() {
                    let single = t
                        .enforce_with(
                            &req.models,
                            Shape::from_targets(req.targets),
                            engine,
                            opts.clone(),
                        )
                        .unwrap();
                    let out = out.as_ref().unwrap();
                    assert_eq!(
                        out.as_ref().map(|o| o.cost),
                        single.as_ref().map(|o| o.cost),
                        "{engine:?} jobs={jobs} request {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn enforce_with_unrepairable_shape_returns_none() {
        let t = paper_transformation(2);
        let mut w = feature_workload(FeatureSpec {
            n_features: 4,
            ..FeatureSpec::default()
        });
        inject(&mut w, Injection::NewMandatoryInFm);
        for engine in [EngineKind::Search, EngineKind::Sat] {
            let out = t.enforce(&w.models, Shape::towards(0), engine).unwrap();
            assert!(out.is_none(), "{engine:?}");
        }
    }

    #[test]
    fn error_display() {
        let e = Transformation::from_sources("junk", &[CF_METAMODEL]).unwrap_err();
        assert!(e.to_string().contains("syntax"));
        let e = Transformation::from_sources(&transformation_source(1), &["metamodel X {"])
            .unwrap_err();
        assert!(matches!(e, CoreError::Metamodel(_)));
    }

    /// ISSUE 5 satellite: `CoreError::source()` chains to the wrapped
    /// layer error — walking the chain reaches the inner error whose
    /// message the `Display` impl embeds.
    #[test]
    fn error_source_chains_to_the_wrapped_layer() {
        use std::error::Error as _;
        let t = paper_transformation(2);
        let w = feature_workload(FeatureSpec::default());
        let cases: Vec<CoreError> = vec![
            Transformation::from_sources("junk", &[CF_METAMODEL]).unwrap_err(),
            Transformation::from_sources(&transformation_source(1), &["metamodel X {"])
                .unwrap_err(),
            t.check(&w.models[..1]).unwrap_err(),
            t.enforce(&w.models, Shape::towards(256), EngineKind::Search)
                .unwrap_err(),
            t.enforce_with(
                &w.models,
                Shape::all(3),
                EngineKind::Search,
                RepairOptions {
                    tuple: mmt_dist::TupleCost::weighted(vec![1, 1]),
                    ..RepairOptions::default()
                },
            )
            .unwrap_err(),
        ];
        for e in cases {
            let source = e.source().unwrap_or_else(|| panic!("{e}: no source"));
            // The chain is real: the top-level message embeds the
            // wrapped error's own rendering.
            assert!(
                e.to_string().contains(&source.to_string()),
                "{e} does not embed {source}"
            );
        }
        // Model-layer errors chain through a live session edit.
        let mut session = t.session(&w.models).unwrap();
        let fm = w.fm.class_named("Feature").unwrap();
        let err = session
            .apply(
                mmt_deps::DomIdx(2),
                mmt_dist::EditOp::DelObj {
                    id: mmt_model::ObjId(9999),
                    class: fm,
                },
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
        assert!(err.source().is_some());
    }

    /// ISSUE 5 satellite (failing before): `Shape` constructors used to
    /// truncate `usize as u8`, so `towards(256)` silently meant "model
    /// 0" — a wrong-but-valid target set the engines happily repaired.
    /// Checked construction + entry-point validation turn every
    /// out-of-range index into a typed [`CoreError::Shape`].
    #[test]
    fn out_of_range_shapes_are_rejected_not_truncated() {
        let t = paper_transformation(2); // arity 3
        let w = feature_workload(FeatureSpec::default());
        let bad = [
            Shape::towards(256),   // wrapped to M0 before
            Shape::towards(3),     // in-bitset but beyond the arity
            Shape::of(&[0, 999]),  // one good index, one absurd
            Shape::of(&[0, 64]),   // exactly the bitset width
            Shape::all_but(70, 3), // u8-truncated to `without(M6)` before
            Shape::all_but(3, 3),  // "all but" a model the tuple lacks
        ];
        for shape in bad {
            for engine in [EngineKind::Search, EngineKind::Sat] {
                let err = t.enforce(&w.models, shape, engine).unwrap_err();
                assert!(
                    matches!(err, CoreError::Shape(ShapeError { .. })),
                    "{shape}: {err}"
                );
            }
            let mut session = t.session(&w.models).unwrap();
            let err = session.repair(shape).unwrap_err();
            assert!(matches!(err, CoreError::Shape(_)), "{shape}: {err}");
        }
        // In-range shapes still validate cleanly …
        assert_eq!(
            Shape::of(&[0, 1]).checked_targets(3).unwrap(),
            Shape::of(&[0, 1]).targets()
        );
        // … and the error names the offending index and the arity.
        let e = Shape::towards(256).checked_targets(3).unwrap_err();
        assert_eq!((e.index, e.arity), (256, 3));
        assert!(e.to_string().contains("256"));
        let e = Shape::towards(3).checked_targets(3).unwrap_err();
        assert_eq!((e.index, e.arity), (3, 3));
    }
}
