//! Sync-primitive shim for the hub layer.
//!
//! Production builds re-export `std::sync` unchanged.  Under the
//! `model-check` feature the same names resolve to `loomlite`'s instrumented
//! primitives, so the `SyncHub` / `SessionHandle` locking discipline can be
//! explored exhaustively by the deterministic-interleaving model checker
//! (see `tests/model_check.rs` at the workspace root).  Outside a model run
//! the loomlite types delegate to `std::sync` with identical semantics —
//! including lock poisoning — so the feature is behaviour-preserving for
//! every non-model test.

#[cfg(feature = "model-check")]
pub use loomlite::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(feature = "model-check"))]
pub use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
