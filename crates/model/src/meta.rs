//! Metamodels: class definitions with attributes, references and
//! single/multiple inheritance.
//!
//! A [`Metamodel`] is built with [`MetamodelBuilder`] and frozen on
//! [`MetamodelBuilder::build`]; freezing precomputes the inheritance
//! closure, per-class slot layouts (so objects store values in flat
//! arrays), and subtype bitmatrices used by extent queries.

use crate::intern::Sym;
use crate::value::{AttrType, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a class within one metamodel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClassId(pub u32);

/// Identifier of an attribute within one metamodel (global, not per-class).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AttrId(pub u32);

/// Identifier of a reference within one metamodel (global, not per-class).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RefId(pub u32);

impl ClassId {
    /// Index into the metamodel's class table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl AttrId {
    /// Index into the metamodel's attribute table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl RefId {
    /// Index into the metamodel's reference table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An attribute declaration: a named, typed, single-valued property.
#[derive(Clone, Debug)]
pub struct Attr {
    /// Attribute name (unique among the owning class and its supertypes).
    pub name: Sym,
    /// Owning class.
    pub owner: ClassId,
    /// Value type.
    pub ty: AttrType,
}

/// Upper bound of a reference multiplicity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Upper {
    /// At most `n` targets.
    Bounded(u32),
    /// Unbounded (`*`).
    Many,
}

impl Upper {
    /// True if `count` respects the bound.
    pub fn admits(self, count: usize) -> bool {
        match self {
            Upper::Bounded(n) => count <= n as usize,
            Upper::Many => true,
        }
    }
}

impl fmt::Display for Upper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Upper::Bounded(n) => write!(f, "{n}"),
            Upper::Many => f.write_str("*"),
        }
    }
}

/// A reference declaration: a named, typed, multi-valued link property.
#[derive(Clone, Debug)]
pub struct Reference {
    /// Reference name (unique among the owning class and its supertypes).
    pub name: Sym,
    /// Owning class.
    pub owner: ClassId,
    /// Target class (targets may be instances of any subtype).
    pub target: ClassId,
    /// Lower multiplicity bound.
    pub lower: u32,
    /// Upper multiplicity bound.
    pub upper: Upper,
    /// Whether targets are contained by (owned by) the source object.
    pub containment: bool,
}

/// A class declaration.
#[derive(Clone, Debug)]
pub struct Class {
    /// Class name (unique in the metamodel).
    pub name: Sym,
    /// Direct supertypes.
    pub supers: Vec<ClassId>,
    /// Abstract classes have no direct instances.
    pub is_abstract: bool,
    /// Attributes declared directly on this class.
    pub own_attrs: Vec<AttrId>,
    /// References declared directly on this class.
    pub own_refs: Vec<RefId>,
    /// All attributes, including inherited, in slot order (frozen).
    pub all_attrs: Vec<AttrId>,
    /// All references, including inherited, in slot order (frozen).
    pub all_refs: Vec<RefId>,
}

/// A frozen metamodel. Cheap to share via [`Arc`].
#[derive(Debug)]
pub struct Metamodel {
    /// Metamodel name.
    pub name: Sym,
    classes: Vec<Class>,
    attrs: Vec<Attr>,
    refs: Vec<Reference>,
    class_by_name: HashMap<Sym, ClassId>,
    /// `conforms[sub][sup]`: row-major boolean matrix of the subtype
    /// relation's reflexive-transitive closure.
    conforms: Vec<bool>,
    /// For each class, all concrete classes conforming to it (incl. itself
    /// when concrete), used to enumerate extents.
    concrete_subs: Vec<Vec<ClassId>>,
}

impl Metamodel {
    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of attribute declarations.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of reference declarations.
    pub fn ref_count(&self) -> usize {
        self.refs.len()
    }

    /// The class table entry for `id`.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// The attribute table entry for `id`.
    pub fn attr(&self, id: AttrId) -> &Attr {
        &self.attrs[id.index()]
    }

    /// The reference table entry for `id`.
    pub fn reference(&self, id: RefId) -> &Reference {
        &self.refs[id.index()]
    }

    /// Iterates over all classes as `(id, class)`.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &Class)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }

    /// Looks a class up by name.
    pub fn class_by_name(&self, name: Sym) -> Option<ClassId> {
        self.class_by_name.get(&name).copied()
    }

    /// Looks a class up by name given as a string.
    pub fn class_named(&self, name: &str) -> Option<ClassId> {
        self.class_by_name(Sym::new(name))
    }

    /// Resolves an attribute by name on `class`, considering inheritance.
    pub fn attr_of(&self, class: ClassId, name: Sym) -> Option<AttrId> {
        self.class(class)
            .all_attrs
            .iter()
            .copied()
            .find(|&a| self.attr(a).name == name)
    }

    /// Resolves a reference by name on `class`, considering inheritance.
    pub fn ref_of(&self, class: ClassId, name: Sym) -> Option<RefId> {
        self.class(class)
            .all_refs
            .iter()
            .copied()
            .find(|&r| self.reference(r).name == name)
    }

    /// True iff `sub` conforms to (is-a) `sup`, reflexively.
    pub fn conforms(&self, sub: ClassId, sup: ClassId) -> bool {
        self.conforms[sub.index() * self.classes.len() + sup.index()]
    }

    /// All concrete classes conforming to `class` (its instantiable extent).
    pub fn concrete_subtypes(&self, class: ClassId) -> &[ClassId] {
        &self.concrete_subs[class.index()]
    }

    /// Slot index of attribute `attr` in instances of `class`.
    ///
    /// Returns `None` when `class` does not declare or inherit `attr`.
    pub fn attr_slot(&self, class: ClassId, attr: AttrId) -> Option<usize> {
        self.class(class).all_attrs.iter().position(|&a| a == attr)
    }

    /// Slot index of reference `r` in instances of `class`.
    pub fn ref_slot(&self, class: ClassId, r: RefId) -> Option<usize> {
        self.class(class).all_refs.iter().position(|&x| x == r)
    }

    /// Default attribute values for a freshly created instance of `class`.
    pub fn default_attrs(&self, class: ClassId) -> Box<[Value]> {
        self.class(class)
            .all_attrs
            .iter()
            .map(|&a| self.attr(a).ty.default_value())
            .collect()
    }
}

/// Error raised while building a metamodel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// A property name clashes within a class (including inherited names).
    DuplicateProperty {
        /// Class on which the clash occurs.
        class: String,
        /// The clashing property name.
        name: String,
    },
    /// The inheritance graph has a cycle through the named class.
    InheritanceCycle(String),
    /// An id referred to a class that does not exist.
    UnknownClass(String),
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::DuplicateClass(n) => write!(f, "duplicate class `{n}`"),
            MetaError::DuplicateProperty { class, name } => {
                write!(f, "duplicate property `{name}` on class `{class}`")
            }
            MetaError::InheritanceCycle(n) => {
                write!(f, "inheritance cycle through class `{n}`")
            }
            MetaError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
        }
    }
}

impl std::error::Error for MetaError {}

/// Incrementally constructs a [`Metamodel`].
pub struct MetamodelBuilder {
    name: Sym,
    classes: Vec<Class>,
    attrs: Vec<Attr>,
    refs: Vec<Reference>,
    class_by_name: HashMap<Sym, ClassId>,
}

impl MetamodelBuilder {
    /// Starts building a metamodel called `name`.
    pub fn new(name: &str) -> Self {
        MetamodelBuilder {
            name: Sym::new(name),
            classes: Vec::new(),
            attrs: Vec::new(),
            refs: Vec::new(),
            class_by_name: HashMap::new(),
        }
    }

    /// Declares a concrete class.
    pub fn class(&mut self, name: &str) -> Result<ClassId, MetaError> {
        self.class_full(name, &[], false)
    }

    /// Declares an abstract class.
    pub fn abstract_class(&mut self, name: &str) -> Result<ClassId, MetaError> {
        self.class_full(name, &[], true)
    }

    /// Declares a class with explicit supertypes and abstractness.
    pub fn class_full(
        &mut self,
        name: &str,
        supers: &[ClassId],
        is_abstract: bool,
    ) -> Result<ClassId, MetaError> {
        let sym = Sym::new(name);
        if self.class_by_name.contains_key(&sym) {
            return Err(MetaError::DuplicateClass(name.to_owned()));
        }
        for s in supers {
            if s.index() >= self.classes.len() {
                return Err(MetaError::UnknownClass(format!("#{}", s.0)));
            }
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class {
            name: sym,
            supers: supers.to_vec(),
            is_abstract,
            own_attrs: Vec::new(),
            own_refs: Vec::new(),
            all_attrs: Vec::new(),
            all_refs: Vec::new(),
        });
        self.class_by_name.insert(sym, id);
        Ok(id)
    }

    /// Adds a supertype to an already-declared class.
    pub fn add_super(&mut self, class: ClassId, sup: ClassId) -> Result<(), MetaError> {
        if class.index() >= self.classes.len() || sup.index() >= self.classes.len() {
            return Err(MetaError::UnknownClass(format!("#{}", sup.0)));
        }
        self.classes[class.index()].supers.push(sup);
        Ok(())
    }

    /// Declares an attribute on `class`.
    pub fn attr(&mut self, class: ClassId, name: &str, ty: AttrType) -> Result<AttrId, MetaError> {
        if class.index() >= self.classes.len() {
            return Err(MetaError::UnknownClass(format!("#{}", class.0)));
        }
        let id = AttrId(self.attrs.len() as u32);
        self.attrs.push(Attr {
            name: Sym::new(name),
            owner: class,
            ty,
        });
        self.classes[class.index()].own_attrs.push(id);
        Ok(id)
    }

    /// Declares a reference on `class` targeting `target`.
    pub fn reference(
        &mut self,
        class: ClassId,
        name: &str,
        target: ClassId,
        lower: u32,
        upper: Upper,
        containment: bool,
    ) -> Result<RefId, MetaError> {
        if class.index() >= self.classes.len() || target.index() >= self.classes.len() {
            return Err(MetaError::UnknownClass(format!("#{}", class.0)));
        }
        let id = RefId(self.refs.len() as u32);
        self.refs.push(Reference {
            name: Sym::new(name),
            owner: class,
            target,
            lower,
            upper,
            containment,
        });
        self.classes[class.index()].own_refs.push(id);
        Ok(id)
    }

    /// Freezes the metamodel, computing inheritance closures and layouts.
    pub fn build(mut self) -> Result<Arc<Metamodel>, MetaError> {
        let n = self.classes.len();
        // Topologically order classes over the supertype DAG, detecting cycles.
        let order = self.toposort()?;
        // Reflexive-transitive conformance matrix.
        let mut conforms = vec![false; n * n];
        for &c in &order {
            let ci = c.index();
            conforms[ci * n + ci] = true;
            let supers = self.classes[ci].supers.clone();
            for s in supers {
                for j in 0..n {
                    if conforms[s.index() * n + j] {
                        conforms[ci * n + j] = true;
                    }
                }
            }
        }
        // Slot layouts: inherited first (in supertype declaration order,
        // deduplicated), then own.
        for &c in &order {
            let ci = c.index();
            let mut attrs: Vec<AttrId> = Vec::new();
            let mut refs: Vec<RefId> = Vec::new();
            let supers = self.classes[ci].supers.clone();
            for s in supers {
                for &a in &self.classes[s.index()].all_attrs {
                    if !attrs.contains(&a) {
                        attrs.push(a);
                    }
                }
                for &r in &self.classes[s.index()].all_refs {
                    if !refs.contains(&r) {
                        refs.push(r);
                    }
                }
            }
            attrs.extend(self.classes[ci].own_attrs.iter().copied());
            refs.extend(self.classes[ci].own_refs.iter().copied());
            // Property-name uniqueness across the flattened layout.
            for (i, &a) in attrs.iter().enumerate() {
                for &b in &attrs[i + 1..] {
                    if self.attrs[a.index()].name == self.attrs[b.index()].name {
                        return Err(MetaError::DuplicateProperty {
                            class: self.classes[ci].name.resolve(),
                            name: self.attrs[a.index()].name.resolve(),
                        });
                    }
                }
            }
            for (i, &a) in refs.iter().enumerate() {
                for &b in &refs[i + 1..] {
                    if self.refs[a.index()].name == self.refs[b.index()].name {
                        return Err(MetaError::DuplicateProperty {
                            class: self.classes[ci].name.resolve(),
                            name: self.refs[a.index()].name.resolve(),
                        });
                    }
                }
            }
            self.classes[ci].all_attrs = attrs;
            self.classes[ci].all_refs = refs;
        }
        // Concrete subtype extents.
        let mut concrete_subs = vec![Vec::new(); n];
        for sup in 0..n {
            for sub in 0..n {
                if conforms[sub * n + sup] && !self.classes[sub].is_abstract {
                    concrete_subs[sup].push(ClassId(sub as u32));
                }
            }
        }
        Ok(Arc::new(Metamodel {
            name: self.name,
            classes: self.classes,
            attrs: self.attrs,
            refs: self.refs,
            class_by_name: self.class_by_name,
            conforms,
            concrete_subs,
        }))
    }

    fn toposort(&self) -> Result<Vec<ClassId>, MetaError> {
        let n = self.classes.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 visiting, 2 done
        let mut order = Vec::with_capacity(n);
        // Iterative DFS to avoid recursion depth limits on deep hierarchies.
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
                let supers = &self.classes[node].supers;
                if *edge < supers.len() {
                    let next = supers[*edge].index();
                    *edge += 1;
                    match state[next] {
                        0 => {
                            state[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => {
                            return Err(MetaError::InheritanceCycle(
                                self.classes[next].name.resolve(),
                            ));
                        }
                        _ => {}
                    }
                } else {
                    state[node] = 2;
                    order.push(ClassId(node as u32));
                    stack.pop();
                }
            }
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature_metamodel() -> Arc<Metamodel> {
        let mut b = MetamodelBuilder::new("FM");
        let f = b.class("Feature").unwrap();
        b.attr(f, "name", AttrType::Str).unwrap();
        b.attr(f, "mandatory", AttrType::Bool).unwrap();
        let m = b.class("FeatureModel").unwrap();
        b.reference(m, "features", f, 0, Upper::Many, true).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let mm = feature_metamodel();
        let f = mm.class_named("Feature").unwrap();
        assert_eq!(mm.class(f).name.resolve(), "Feature");
        let name = mm.attr_of(f, Sym::new("name")).unwrap();
        assert_eq!(mm.attr(name).ty, AttrType::Str);
        assert!(mm.attr_of(f, Sym::new("nope")).is_none());
        let m = mm.class_named("FeatureModel").unwrap();
        let r = mm.ref_of(m, Sym::new("features")).unwrap();
        assert_eq!(mm.reference(r).target, f);
        assert!(mm.reference(r).containment);
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut b = MetamodelBuilder::new("X");
        b.class("A").unwrap();
        assert_eq!(
            b.class("A").unwrap_err(),
            MetaError::DuplicateClass("A".into())
        );
    }

    #[test]
    fn inheritance_layout_and_conformance() {
        let mut b = MetamodelBuilder::new("X");
        let named = b.abstract_class("Named").unwrap();
        b.attr(named, "name", AttrType::Str).unwrap();
        let person = b.class_full("Person", &[named], false).unwrap();
        b.attr(person, "age", AttrType::Int).unwrap();
        let mm = b.build().unwrap();
        assert!(mm.conforms(person, named));
        assert!(!mm.conforms(named, person));
        assert!(mm.conforms(person, person));
        // Inherited attribute resolvable and laid out first.
        let name = mm.attr_of(person, Sym::new("name")).unwrap();
        assert_eq!(mm.attr_slot(person, name), Some(0));
        let age = mm.attr_of(person, Sym::new("age")).unwrap();
        assert_eq!(mm.attr_slot(person, age), Some(1));
        // Extents: Named is abstract, only Person is concrete.
        assert_eq!(mm.concrete_subtypes(named), &[person]);
    }

    #[test]
    fn inheritance_cycle_detected() {
        let mut b = MetamodelBuilder::new("X");
        let a = b.class("A").unwrap();
        let c = b.class_full("B", &[a], false).unwrap();
        b.add_super(a, c).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            MetaError::InheritanceCycle(_)
        ));
    }

    #[test]
    fn duplicate_property_via_inheritance_rejected() {
        let mut b = MetamodelBuilder::new("X");
        let a = b.class("A").unwrap();
        b.attr(a, "name", AttrType::Str).unwrap();
        let c = b.class_full("B", &[a], false).unwrap();
        b.attr(c, "name", AttrType::Str).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            MetaError::DuplicateProperty { .. }
        ));
    }

    #[test]
    fn diamond_inheritance_dedups_slots() {
        let mut b = MetamodelBuilder::new("X");
        let top = b.abstract_class("Top").unwrap();
        b.attr(top, "id", AttrType::Int).unwrap();
        let l = b.class_full("L", &[top], true).unwrap();
        let r = b.class_full("R", &[top], true).unwrap();
        let bot = b.class_full("Bot", &[l, r], false).unwrap();
        let mm = b.build().unwrap();
        assert_eq!(mm.class(bot).all_attrs.len(), 1);
        assert!(mm.conforms(bot, top));
    }

    #[test]
    fn default_attrs_follow_types() {
        let mm = feature_metamodel();
        let f = mm.class_named("Feature").unwrap();
        let defaults = mm.default_attrs(f);
        assert_eq!(defaults.len(), 2);
        assert_eq!(defaults[1], Value::Bool(false));
    }

    #[test]
    fn upper_bound_admits() {
        assert!(Upper::Many.admits(1_000_000));
        assert!(Upper::Bounded(2).admits(2));
        assert!(!Upper::Bounded(2).admits(3));
        assert_eq!(Upper::Many.to_string(), "*");
        assert_eq!(Upper::Bounded(3).to_string(), "3");
    }
}
