//! # mmt-model — metamodel and model substrate
//!
//! The MDE substrate the paper assumes from Eclipse/EMF, rebuilt from
//! scratch: metamodels ([`Metamodel`]) describe classes with attributes,
//! references and inheritance; models ([`Model`]) are typed object graphs
//! conforming to a metamodel. A textual format ([`text`]) and a
//! conformance validator ([`conformance`]) round the substrate out.
//!
//! Everything downstream — the QVT-R front-end, the checking engine, the
//! enforcement engines — operates on these types.

pub mod conformance;
pub mod fx;
pub mod intern;
pub mod meta;
pub mod mmt_sync;
pub mod model;
pub mod text;
pub mod value;

pub use intern::Sym;
pub use meta::{
    Attr, AttrId, Class, ClassId, MetaError, Metamodel, MetamodelBuilder, RefId, Reference, Upper,
};
pub use model::{Model, ModelError, ObjId, Object};
pub use value::{AttrType, Value};
