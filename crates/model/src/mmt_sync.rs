//! Sync-primitive shim for the model layer (the global interner).
//!
//! Production builds re-export `std::sync` unchanged; under the
//! `model-check` feature the same names resolve to `loomlite`'s instrumented
//! primitives so interner races can be explored by the model checker.
//! Off-model the loomlite types delegate to `std::sync` with identical
//! semantics, so the feature is behaviour-preserving for normal tests.

#[cfg(feature = "model-check")]
pub use loomlite::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(feature = "model-check"))]
pub use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
