//! Textual serialization for metamodels and models.
//!
//! The format is line-oriented and human-editable; it is what the `mmt`
//! CLI reads and writes. Example:
//!
//! ```text
//! metamodel FM {
//!   class Feature {
//!     attr name: Str;
//!     attr mandatory: Bool;
//!   }
//!   class FeatureModel {
//!     ref features: Feature [0..*] containment;
//!   }
//! }
//! ```
//!
//! ```text
//! model fm : FM {
//!   f1 = Feature { name = "engine", mandatory = true }
//!   root = FeatureModel { features = [f1] }
//! }
//! ```

use crate::intern::Sym;
use crate::meta::{ClassId, Metamodel, MetamodelBuilder, Upper};
use crate::model::{Model, ObjId};
use crate::value::{AttrType, Value};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// Error raised while parsing the textual formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Punct(char),
    DotDot,
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    /// Position of the token most recently returned by `next`.
    tok_line: u32,
    tok_col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
            col: 1,
            tok_line: 1,
            tok_col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.tok_line,
            col: self.tok_col,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_char() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.src[self.pos..].starts_with("//") => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        self.skip_trivia();
        self.tok_line = self.line;
        self.tok_col = self.col;
        let Some(c) = self.peek_char() else {
            return Ok(Tok::Eof);
        };
        if c.is_alphabetic() || c == '_' {
            let start = self.pos;
            while matches!(self.peek_char(), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            return Ok(Tok::Ident(self.src[start..self.pos].to_owned()));
        }
        if c.is_ascii_digit() || c == '-' {
            let start = self.pos;
            self.bump();
            while matches!(self.peek_char(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
            let text = &self.src[start..self.pos];
            return text
                .parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| self.err(format!("bad integer literal `{text}`")));
        }
        if c == '"' {
            self.bump();
            let mut s = String::new();
            loop {
                match self.bump() {
                    None => return Err(self.err("unterminated string literal")),
                    Some('"') => break,
                    Some('\\') => match self.bump() {
                        Some('"') => s.push('"'),
                        Some('\\') => s.push('\\'),
                        Some('n') => s.push('\n'),
                        other => {
                            return Err(self.err(format!("bad escape `\\{:?}`", other)));
                        }
                    },
                    Some(c) => s.push(c),
                }
            }
            return Ok(Tok::Str(s));
        }
        if c == '.' && self.src[self.pos..].starts_with("..") {
            self.bump();
            self.bump();
            return Ok(Tok::DotDot);
        }
        self.bump();
        Ok(Tok::Punct(c))
    }
}

struct Parser<'a> {
    lx: Lexer<'a>,
    tok: Tok,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lx = Lexer::new(src);
        let tok = lx.next()?;
        Ok(Parser { lx, tok })
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        self.lx.err(msg)
    }

    fn advance(&mut self) -> Result<Tok, ParseError> {
        let next = self.lx.next()?;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        if self.tok == Tok::Punct(c) {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`, found {:?}", self.tok)))
        }
    }

    fn eat_punct(&mut self, c: char) -> Result<bool, ParseError> {
        if self.tok == Tok::Punct(c) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found `{id}`")))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == kw)
    }
}

/// Parses a metamodel from its textual form.
pub fn parse_metamodel(src: &str) -> Result<Arc<Metamodel>, ParseError> {
    let mut p = Parser::new(src)?;
    p.expect_keyword("metamodel")?;
    let name = p.expect_ident()?;
    p.expect_punct('{')?;
    // Two passes over class bodies so forward references work: first
    // declare classes, then fill members.
    #[allow(clippy::type_complexity)]
    let mut decls: Vec<(String, Vec<String>, bool, Vec<MemberDecl>)> = Vec::new();
    while !p.eat_punct('}')? {
        let is_abstract = if p.at_keyword("abstract") {
            p.advance()?;
            true
        } else {
            false
        };
        p.expect_keyword("class")?;
        let cname = p.expect_ident()?;
        let mut supers = Vec::new();
        if p.at_keyword("extends") {
            p.advance()?;
            supers.push(p.expect_ident()?);
            while p.eat_punct(',')? {
                supers.push(p.expect_ident()?);
            }
        }
        p.expect_punct('{')?;
        let mut members = Vec::new();
        while !p.eat_punct('}')? {
            members.push(parse_member(&mut p)?);
        }
        decls.push((cname, supers, is_abstract, members));
    }
    if p.tok != Tok::Eof {
        return Err(p.err("trailing input after metamodel"));
    }
    let mut b = MetamodelBuilder::new(&name);
    let mut ids: HashMap<String, ClassId> = HashMap::new();
    for (cname, _, is_abstract, _) in &decls {
        let id = b
            .class_full(cname, &[], *is_abstract)
            .map_err(|e| p.err(e.to_string()))?;
        ids.insert(cname.clone(), id);
    }
    for (cname, supers, _, members) in &decls {
        let cid = ids[cname];
        for s in supers {
            let sid = *ids
                .get(s)
                .ok_or_else(|| p.err(format!("unknown supertype `{s}`")))?;
            b.add_super(cid, sid).map_err(|e| p.err(e.to_string()))?;
        }
        for m in members {
            match m {
                MemberDecl::Attr { name, ty } => {
                    b.attr(cid, name, *ty).map_err(|e| p.err(e.to_string()))?;
                }
                MemberDecl::Ref {
                    name,
                    target,
                    lower,
                    upper,
                    containment,
                } => {
                    let tid = *ids
                        .get(target)
                        .ok_or_else(|| p.err(format!("unknown class `{target}`")))?;
                    b.reference(cid, name, tid, *lower, *upper, *containment)
                        .map_err(|e| p.err(e.to_string()))?;
                }
            }
        }
    }
    b.build().map_err(|e| ParseError {
        line: 0,
        col: 0,
        msg: e.to_string(),
    })
}

enum MemberDecl {
    Attr {
        name: String,
        ty: AttrType,
    },
    Ref {
        name: String,
        target: String,
        lower: u32,
        upper: Upper,
        containment: bool,
    },
}

fn parse_member(p: &mut Parser<'_>) -> Result<MemberDecl, ParseError> {
    if p.at_keyword("attr") {
        p.advance()?;
        let name = p.expect_ident()?;
        p.expect_punct(':')?;
        let ty_name = p.expect_ident()?;
        let ty = match ty_name.as_str() {
            "Str" => AttrType::Str,
            "Bool" => AttrType::Bool,
            "Int" => AttrType::Int,
            other => return Err(p.err(format!("unknown attribute type `{other}`"))),
        };
        p.expect_punct(';')?;
        Ok(MemberDecl::Attr { name, ty })
    } else if p.at_keyword("ref") {
        p.advance()?;
        let name = p.expect_ident()?;
        p.expect_punct(':')?;
        let target = p.expect_ident()?;
        let (mut lower, mut upper) = (0u32, Upper::Many);
        if p.eat_punct('[')? {
            lower = match p.advance()? {
                Tok::Int(i) if i >= 0 => i as u32,
                other => return Err(p.err(format!("expected lower bound, found {other:?}"))),
            };
            if p.tok == Tok::DotDot {
                p.advance()?;
                upper = match p.advance()? {
                    Tok::Int(i) if i >= 0 => Upper::Bounded(i as u32),
                    Tok::Punct('*') => Upper::Many,
                    other => return Err(p.err(format!("expected upper bound, found {other:?}"))),
                };
            } else {
                upper = Upper::Bounded(lower);
            }
            p.expect_punct(']')?;
        }
        let containment = if p.at_keyword("containment") {
            p.advance()?;
            true
        } else {
            false
        };
        p.expect_punct(';')?;
        Ok(MemberDecl::Ref {
            name,
            target,
            lower,
            upper,
            containment,
        })
    } else {
        Err(p.err(format!("expected `attr` or `ref`, found {:?}", p.tok)))
    }
}

/// Parses a model in textual form against a known metamodel.
pub fn parse_model(src: &str, meta: &Arc<Metamodel>) -> Result<Model, ParseError> {
    let mut p = Parser::new(src)?;
    p.expect_keyword("model")?;
    let name = p.expect_ident()?;
    p.expect_punct(':')?;
    let mm_name = p.expect_ident()?;
    if Sym::new(&mm_name) != meta.name {
        return Err(p.err(format!(
            "model declares metamodel `{mm_name}` but `{}` was supplied",
            meta.name
        )));
    }
    p.expect_punct('{')?;
    // First pass: collect object declarations so links can forward-reference.
    struct ObjDecl {
        label: String,
        class: String,
        props: Vec<(String, PropValue)>,
    }
    enum PropValue {
        Scalar(Value),
        Objects(Vec<String>),
    }
    let mut decls: Vec<ObjDecl> = Vec::new();
    while !p.eat_punct('}')? {
        let label = p.expect_ident()?;
        p.expect_punct('=')?;
        let class = p.expect_ident()?;
        p.expect_punct('{')?;
        let mut props = Vec::new();
        while !p.eat_punct('}')? {
            let pname = p.expect_ident()?;
            p.expect_punct('=')?;
            let value = if p.eat_punct('[')? {
                let mut labels = Vec::new();
                if !p.eat_punct(']')? {
                    loop {
                        labels.push(p.expect_ident()?);
                        if p.eat_punct(']')? {
                            break;
                        }
                        p.expect_punct(',')?;
                    }
                }
                PropValue::Objects(labels)
            } else {
                match p.advance()? {
                    Tok::Str(s) => PropValue::Scalar(Value::str(&s)),
                    Tok::Int(i) => PropValue::Scalar(Value::Int(i)),
                    Tok::Ident(s) if s == "true" => PropValue::Scalar(Value::Bool(true)),
                    Tok::Ident(s) if s == "false" => PropValue::Scalar(Value::Bool(false)),
                    other => return Err(p.err(format!("bad property value {other:?}"))),
                }
            };
            props.push((pname, value));
            let _ = p.eat_punct(',')?;
        }
        decls.push(ObjDecl {
            label,
            class,
            props,
        });
    }
    if p.tok != Tok::Eof {
        return Err(p.err("trailing input after model"));
    }
    let mut model = Model::new(&name, Arc::clone(meta));
    let mut by_label: HashMap<String, ObjId> = HashMap::new();
    for d in &decls {
        let class = meta
            .class_named(&d.class)
            .ok_or_else(|| p.err(format!("unknown class `{}`", d.class)))?;
        let id = model.add(class).map_err(|e| p.err(e.to_string()))?;
        if by_label.insert(d.label.clone(), id).is_some() {
            return Err(p.err(format!("duplicate object label `{}`", d.label)));
        }
    }
    for d in &decls {
        let id = by_label[&d.label];
        let class = model.class_of(id).expect("just added");
        for (pname, value) in &d.props {
            let psym = Sym::new(pname);
            match value {
                PropValue::Scalar(v) => {
                    let attr = meta.attr_of(class, psym).ok_or_else(|| {
                        p.err(format!("class `{}` has no attribute `{pname}`", d.class))
                    })?;
                    model
                        .set_attr(id, attr, *v)
                        .map_err(|e| p.err(e.to_string()))?;
                }
                PropValue::Objects(labels) => {
                    let r = meta.ref_of(class, psym).ok_or_else(|| {
                        p.err(format!("class `{}` has no reference `{pname}`", d.class))
                    })?;
                    for l in labels {
                        let dst = *by_label
                            .get(l)
                            .ok_or_else(|| p.err(format!("unknown object label `{l}`")))?;
                        model
                            .add_link(id, r, dst)
                            .map_err(|e| p.err(e.to_string()))?;
                    }
                }
            }
        }
    }
    Ok(model)
}

/// Renders a metamodel in the textual format accepted by
/// [`parse_metamodel`].
pub fn print_metamodel(meta: &Metamodel) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "metamodel {} {{", meta.name);
    for (_, class) in meta.classes() {
        let kw = if class.is_abstract {
            "abstract class"
        } else {
            "class"
        };
        let _ = write!(s, "  {kw} {}", class.name);
        if !class.supers.is_empty() {
            let names: Vec<String> = class
                .supers
                .iter()
                .map(|&c| meta.class(c).name.resolve())
                .collect();
            let _ = write!(s, " extends {}", names.join(", "));
        }
        let _ = writeln!(s, " {{");
        for &a in &class.own_attrs {
            let attr = meta.attr(a);
            let _ = writeln!(s, "    attr {}: {};", attr.name, attr.ty);
        }
        for &r in &class.own_refs {
            let rf = meta.reference(r);
            let cont = if rf.containment { " containment" } else { "" };
            let _ = writeln!(
                s,
                "    ref {}: {} [{}..{}]{cont};",
                rf.name,
                meta.class(rf.target).name,
                rf.lower,
                rf.upper
            );
        }
        let _ = writeln!(s, "  }}");
    }
    s.push_str("}\n");
    s
}

/// Renders a model in the textual format accepted by [`parse_model`].
pub fn print_model(model: &Model) -> String {
    let meta = model.metamodel();
    let mut s = String::new();
    let _ = writeln!(s, "model {} : {} {{", model.name, meta.name);
    for (id, obj) in model.objects() {
        let class = meta.class(obj.class);
        let _ = write!(s, "  o{} = {} {{ ", id.0, class.name);
        let mut first = true;
        for (slot, &attr_id) in class.all_attrs.iter().enumerate() {
            if !first {
                s.push_str(", ");
            }
            first = false;
            let _ = write!(s, "{} = {}", meta.attr(attr_id).name, obj.attrs[slot]);
        }
        for (slot, &ref_id) in class.all_refs.iter().enumerate() {
            if obj.refs[slot].is_empty() {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            first = false;
            let targets: Vec<String> = obj.refs[slot].iter().map(|t| format!("o{}", t.0)).collect();
            let _ = write!(
                s,
                "{} = [{}]",
                meta.reference(ref_id).name,
                targets.join(", ")
            );
        }
        let _ = writeln!(s, " }}");
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const FM_SRC: &str = r#"
metamodel FM {
  class Feature {
    attr name: Str;
    attr mandatory: Bool;
  }
  class FeatureModel {
    ref features: Feature [0..*] containment;
  }
}
"#;

    #[test]
    fn parse_metamodel_basics() {
        let mm = parse_metamodel(FM_SRC).unwrap();
        assert_eq!(mm.name.resolve(), "FM");
        let f = mm.class_named("Feature").unwrap();
        assert_eq!(mm.class(f).all_attrs.len(), 2);
        let root = mm.class_named("FeatureModel").unwrap();
        let r = mm.ref_of(root, Sym::new("features")).unwrap();
        assert!(mm.reference(r).containment);
        assert_eq!(mm.reference(r).upper, Upper::Many);
    }

    #[test]
    fn parse_model_and_roundtrip() {
        let mm = parse_metamodel(FM_SRC).unwrap();
        let src = r#"
model fm : FM {
  f1 = Feature { name = "engine", mandatory = true }
  f2 = Feature { name = "radio" }
  root = FeatureModel { features = [f1, f2] }
}
"#;
        let m = parse_model(src, &mm).unwrap();
        assert_eq!(m.len(), 3);
        let printed = print_model(&m);
        let m2 = parse_model(&printed, &mm).unwrap();
        assert!(m.graph_eq(&m2));
    }

    #[test]
    fn metamodel_roundtrip() {
        let mm = parse_metamodel(FM_SRC).unwrap();
        let printed = print_metamodel(&mm);
        let mm2 = parse_metamodel(&printed).unwrap();
        assert_eq!(mm.class_count(), mm2.class_count());
        assert_eq!(mm.attr_count(), mm2.attr_count());
        assert_eq!(mm.ref_count(), mm2.ref_count());
    }

    #[test]
    fn inheritance_syntax() {
        let src = r#"
metamodel X {
  abstract class Named { attr name: Str; }
  class Person extends Named { attr age: Int; }
}
"#;
        let mm = parse_metamodel(src).unwrap();
        let p = mm.class_named("Person").unwrap();
        let n = mm.class_named("Named").unwrap();
        assert!(mm.conforms(p, n));
        assert!(mm.class(n).is_abstract);
        // Round-trips through the printer too.
        let mm2 = parse_metamodel(&print_metamodel(&mm)).unwrap();
        assert!(mm2.conforms(
            mm2.class_named("Person").unwrap(),
            mm2.class_named("Named").unwrap()
        ));
    }

    #[test]
    fn forward_references_in_metamodel() {
        let src = r#"
metamodel X {
  class A { ref b: B; }
  class B { }
}
"#;
        let mm = parse_metamodel(src).unwrap();
        assert!(mm.class_named("B").is_some());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_metamodel("metamodel X {\n  klass Y {}\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("class"));
    }

    #[test]
    fn unknown_label_rejected() {
        let mm = parse_metamodel(FM_SRC).unwrap();
        let src = r#"model m : FM { root = FeatureModel { features = [ghost] } }"#;
        let err = parse_model(src, &mm).unwrap_err();
        assert!(err.msg.contains("ghost"));
    }

    #[test]
    fn metamodel_name_mismatch_rejected() {
        let mm = parse_metamodel(FM_SRC).unwrap();
        let err = parse_model("model m : CF { }", &mm).unwrap_err();
        assert!(err.msg.contains("CF"));
    }

    #[test]
    fn string_escapes() {
        let mm = parse_metamodel(FM_SRC).unwrap();
        let src = r#"model m : FM { f = Feature { name = "a\"b\\c" } }"#;
        let m = parse_model(src, &mm).unwrap();
        let (id, _) = m.objects().next().unwrap();
        assert_eq!(m.attr_named(id, "name").unwrap(), Value::str("a\"b\\c"));
        // And the printer escapes them back.
        let m2 = parse_model(&print_model(&m), &mm).unwrap();
        assert!(m.graph_eq(&m2));
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// header\nmetamodel X { // c\n  class A { } // trailing\n}";
        assert!(parse_metamodel(src).is_ok());
    }

    #[test]
    fn bounded_multiplicity_syntax() {
        let src = "metamodel X { class A { ref one: A [1..1]; ref opt: A [0..1]; } }";
        let mm = parse_metamodel(src).unwrap();
        let a = mm.class_named("A").unwrap();
        let one = mm.ref_of(a, Sym::new("one")).unwrap();
        assert_eq!(mm.reference(one).lower, 1);
        assert_eq!(mm.reference(one).upper, Upper::Bounded(1));
    }
}
