//! Conformance checking: validates that a [`Model`] is a well-formed
//! instance of its [`Metamodel`](crate::meta::Metamodel).
//!
//! Mutation APIs already enforce local typing, but models can also be
//! produced by deserialization or by enforcement engines applying raw edit
//! scripts, so a global validation pass is provided. It checks:
//!
//! * attribute slot types,
//! * link target liveness and typing,
//! * reference multiplicity bounds,
//! * single-container and acyclicity of containment.

use crate::model::{Model, ObjId};
use std::fmt;

/// A single conformance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Attribute slot holds a value of the wrong type.
    AttrType {
        /// Offending object.
        obj: ObjId,
        /// Attribute name.
        attr: String,
    },
    /// A link points to a deleted or never-existing object.
    DanglingLink {
        /// Source object.
        src: ObjId,
        /// Reference name.
        reference: String,
        /// The dangling target id.
        dst: ObjId,
    },
    /// A link target does not conform to the reference's declared target.
    LinkTargetType {
        /// Source object.
        src: ObjId,
        /// Reference name.
        reference: String,
        /// The ill-typed target.
        dst: ObjId,
    },
    /// A reference slot violates its multiplicity bounds.
    Multiplicity {
        /// Source object.
        src: ObjId,
        /// Reference name.
        reference: String,
        /// Actual target count.
        count: usize,
        /// Declared bounds rendered as `lower..upper`.
        bounds: String,
    },
    /// An object is contained by more than one container link.
    MultipleContainers {
        /// The multiply-contained object.
        obj: ObjId,
    },
    /// Containment links form a cycle through this object.
    ContainmentCycle {
        /// An object on the cycle.
        obj: ObjId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::AttrType { obj, attr } => {
                write!(f, "{obj}: attribute `{attr}` has wrong value type")
            }
            Violation::DanglingLink {
                src,
                reference,
                dst,
            } => write!(f, "{src}: reference `{reference}` dangles to {dst}"),
            Violation::LinkTargetType {
                src,
                reference,
                dst,
            } => write!(f, "{src}: reference `{reference}` target {dst} ill-typed"),
            Violation::Multiplicity {
                src,
                reference,
                count,
                bounds,
            } => write!(
                f,
                "{src}: reference `{reference}` has {count} targets, bounds {bounds}"
            ),
            Violation::MultipleContainers { obj } => {
                write!(f, "{obj}: contained by more than one container")
            }
            Violation::ContainmentCycle { obj } => {
                write!(f, "{obj}: containment cycle")
            }
        }
    }
}

/// Validates `model`, returning every violation found (empty = conformant).
pub fn validate(model: &Model) -> Vec<Violation> {
    let meta = model.metamodel();
    let mut out = Vec::new();
    // Container back-pointers for containment analysis.
    let mut container: Vec<Option<ObjId>> = vec![None; model.id_bound()];
    for (id, obj) in model.objects() {
        let class = meta.class(obj.class);
        for (slot, &attr_id) in class.all_attrs.iter().enumerate() {
            let decl = meta.attr(attr_id);
            if obj.attrs[slot].ty() != decl.ty {
                out.push(Violation::AttrType {
                    obj: id,
                    attr: decl.name.resolve(),
                });
            }
        }
        for (slot, &ref_id) in class.all_refs.iter().enumerate() {
            let decl = meta.reference(ref_id);
            let targets = &obj.refs[slot];
            let count = targets.len();
            if (count as u32) < decl.lower || !decl.upper.admits(count) {
                out.push(Violation::Multiplicity {
                    src: id,
                    reference: decl.name.resolve(),
                    count,
                    bounds: format!("{}..{}", decl.lower, decl.upper),
                });
            }
            for &dst in targets {
                match model.get(dst) {
                    None => out.push(Violation::DanglingLink {
                        src: id,
                        reference: decl.name.resolve(),
                        dst,
                    }),
                    Some(t) => {
                        if !meta.conforms(t.class, decl.target) {
                            out.push(Violation::LinkTargetType {
                                src: id,
                                reference: decl.name.resolve(),
                                dst,
                            });
                        } else if decl.containment {
                            let cell = &mut container[dst.index()];
                            if cell.is_some() {
                                out.push(Violation::MultipleContainers { obj: dst });
                            } else {
                                *cell = Some(id);
                            }
                        }
                    }
                }
            }
        }
    }
    // Containment acyclicity: follow container chains; a chain longer than
    // the object count must loop.
    let bound = model.id_bound();
    for (id, _) in model.objects() {
        let mut cur = id;
        let mut steps = 0usize;
        while let Some(parent) = container[cur.index()] {
            if parent == id {
                out.push(Violation::ContainmentCycle { obj: id });
                break;
            }
            cur = parent;
            steps += 1;
            if steps > bound {
                out.push(Violation::ContainmentCycle { obj: id });
                break;
            }
        }
    }
    out
}

/// Convenience: true iff `model` has no violations.
pub fn is_conformant(model: &Model) -> bool {
    validate(model).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{MetamodelBuilder, Upper};
    use crate::value::AttrType;

    #[test]
    fn valid_model_passes() {
        let mut b = MetamodelBuilder::new("FM");
        let f = b.class("Feature").unwrap();
        b.attr(f, "name", AttrType::Str).unwrap();
        let root = b.class("FeatureModel").unwrap();
        let feats = b
            .reference(root, "features", f, 0, Upper::Many, true)
            .unwrap();
        let meta = b.build().unwrap();
        let mut m = Model::new("m", meta);
        let r = m.add(root).unwrap();
        let a = m.add(f).unwrap();
        m.add_link(r, feats, a).unwrap();
        assert!(is_conformant(&m));
    }

    #[test]
    fn lower_bound_violation_detected() {
        let mut b = MetamodelBuilder::new("X");
        let a = b.class("A").unwrap();
        let bcls = b.class("B").unwrap();
        b.reference(a, "must", bcls, 1, Upper::Many, false).unwrap();
        let meta = b.build().unwrap();
        let mut m = Model::new("m", meta);
        m.add(a).unwrap();
        let v = validate(&m);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::Multiplicity { count: 0, .. }));
    }

    #[test]
    fn upper_bound_violation_detected() {
        let mut b = MetamodelBuilder::new("X");
        let a = b.class("A").unwrap();
        let bcls = b.class("B").unwrap();
        let r = b
            .reference(a, "one", bcls, 0, Upper::Bounded(1), false)
            .unwrap();
        let meta = b.build().unwrap();
        let mut m = Model::new("m", meta);
        let src = m.add(a).unwrap();
        let t1 = m.add(bcls).unwrap();
        let t2 = m.add(bcls).unwrap();
        m.add_link(src, r, t1).unwrap();
        m.add_link(src, r, t2).unwrap();
        let v = validate(&m);
        assert!(matches!(v[0], Violation::Multiplicity { count: 2, .. }));
    }

    #[test]
    fn multiple_containers_detected() {
        let mut b = MetamodelBuilder::new("X");
        let box_c = b.class("Box").unwrap();
        let item = b.class("Item").unwrap();
        let holds = b
            .reference(box_c, "holds", item, 0, Upper::Many, true)
            .unwrap();
        let meta = b.build().unwrap();
        let mut m = Model::new("m", meta);
        let b1 = m.add(box_c).unwrap();
        let b2 = m.add(box_c).unwrap();
        let it = m.add(item).unwrap();
        m.add_link(b1, holds, it).unwrap();
        m.add_link(b2, holds, it).unwrap();
        let v = validate(&m);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MultipleContainers { .. })));
    }

    #[test]
    fn containment_cycle_detected() {
        let mut b = MetamodelBuilder::new("X");
        let node = b.class("Node").unwrap();
        let child = b
            .reference(node, "child", node, 0, Upper::Many, true)
            .unwrap();
        let meta = b.build().unwrap();
        let mut m = Model::new("m", meta);
        let n1 = m.add(node).unwrap();
        let n2 = m.add(node).unwrap();
        m.add_link(n1, child, n2).unwrap();
        m.add_link(n2, child, n1).unwrap();
        let v = validate(&m);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ContainmentCycle { .. })));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::MultipleContainers { obj: ObjId(3) };
        assert!(v.to_string().contains("@3"));
    }
}
