//! Global string interner.
//!
//! Names (classes, attributes, references) and string attribute values are
//! interned to [`Sym`] handles so that equality tests during pattern
//! matching are integer comparisons and models never store duplicate
//! strings. Interning is global: QVT-R checking compares string values
//! *across* models (e.g. feature names between a feature model and its
//! configurations), so all models must share one symbol space.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use crate::mmt_sync::RwLock;

/// An interned string handle. Cheap to copy, hash and compare.
///
/// Two `Sym`s are equal iff the strings they denote are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Interns `s`, returning its handle. Idempotent.
    pub fn new(s: &str) -> Sym {
        interner().write().expect("interner poisoned").intern(s)
    }

    /// Returns the string this symbol denotes (allocates a fresh `String`).
    ///
    /// Use [`Sym::with_str`] in hot paths to avoid the allocation.
    pub fn resolve(self) -> String {
        self.with_str(str::to_owned)
    }

    /// Calls `f` with the interned string without allocating.
    pub fn with_str<R>(self, f: impl FnOnce(&str) -> R) -> R {
        let g = interner().read().expect("interner poisoned");
        f(g.resolve(self))
    }

    /// Raw index of this symbol in the global table.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| write!(f, "Sym({s:?})"))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| f.write_str(s))
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

#[derive(Default)]
struct Interner {
    map: HashMap<Box<str>, u32>,
    strings: Vec<Box<str>>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> Sym {
        if let Some(&id) = self.map.get(s) {
            return Sym(id);
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        Sym(id)
    }

    fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::default()))
}

/// Number of distinct symbols interned so far (diagnostics only).
pub fn interned_count() -> usize {
    interner().read().expect("interner poisoned").strings.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("engine");
        let b = Sym::new("engine");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        let a = Sym::new("alpha-unique-x1");
        let b = Sym::new("alpha-unique-x2");
        assert_ne!(a, b);
    }

    #[test]
    fn resolve_round_trips() {
        let a = Sym::new("round/trip value");
        assert_eq!(a.resolve(), "round/trip value");
        a.with_str(|s| assert_eq!(s, "round/trip value"));
    }

    #[test]
    fn display_and_debug() {
        let a = Sym::new("shown");
        assert_eq!(a.to_string(), "shown");
        assert_eq!(format!("{a:?}"), "Sym(\"shown\")");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Sym::from("abc"), Sym::new("abc"));
        assert_eq!(Sym::from(String::from("abc")), Sym::new("abc"));
    }

    #[test]
    fn empty_string_is_internable() {
        let e = Sym::new("");
        assert_eq!(e.resolve(), "");
    }
}
