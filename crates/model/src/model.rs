//! Models: typed object graphs conforming to a [`Metamodel`].
//!
//! Objects are addressed by stable [`ObjId`]s. Deleting an object leaves a
//! tombstone so ids are never reused; this keeps diffs between a model and
//! its edited copies well-defined (the enforcement engines rely on it).

use crate::fx::FxHashMap;
use crate::intern::Sym;
use crate::meta::{AttrId, ClassId, Metamodel, RefId};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Identifier of an object within one model. Stable across edits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Index into the model's object table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A live object: its class, attribute slots and reference slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Object {
    /// Instantiated class (always concrete).
    pub class: ClassId,
    /// Attribute values, indexed by the class's slot layout.
    pub attrs: Box<[Value]>,
    /// Reference targets, indexed by the class's slot layout. Order within
    /// a slot is not semantically significant; the model keeps each slot
    /// sorted so graph equality is order-insensitive.
    pub refs: Box<[Vec<ObjId>]>,
}

/// Errors raised by model mutation and access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Object id does not exist or has been deleted.
    NoSuchObject(ObjId),
    /// The class is abstract and cannot be instantiated.
    AbstractClass(String),
    /// The property is not declared on the object's class.
    NoSuchProperty {
        /// The class name.
        class: String,
        /// The missing property name.
        name: String,
    },
    /// The value's type does not match the attribute's declared type.
    TypeMismatch {
        /// Attribute name.
        attr: String,
        /// Declared type name.
        expected: &'static str,
        /// Provided type name.
        got: &'static str,
    },
    /// A link target does not conform to the reference's target class.
    BadLinkTarget {
        /// Reference name.
        reference: String,
        /// Offending target.
        target: ObjId,
    },
    /// The two models belong to different metamodels.
    MetamodelMismatch,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoSuchObject(o) => write!(f, "no such object {o}"),
            ModelError::AbstractClass(c) => write!(f, "class `{c}` is abstract"),
            ModelError::NoSuchProperty { class, name } => {
                write!(f, "class `{class}` has no property `{name}`")
            }
            ModelError::TypeMismatch {
                attr,
                expected,
                got,
            } => write!(f, "attribute `{attr}` expects {expected}, got {got}"),
            ModelError::BadLinkTarget { reference, target } => {
                write!(f, "reference `{reference}`: target {target} has wrong type")
            }
            ModelError::MetamodelMismatch => f.write_str("metamodel mismatch"),
        }
    }
}

impl std::error::Error for ModelError {}

/// A model: a named, typed object graph.
///
/// Besides the forward object table, the model maintains an **inverse
/// link index** (`incoming`): for every object that is the target of at
/// least one link, the sorted list of `(source, reference)` pairs
/// pointing at it. This makes [`Model::delete`] — which must scrub every
/// incoming link — O(degree) instead of O(model), and lets incremental
/// consumers ([`Model::incoming`]) discover a deletion's blast radius
/// without scanning the object table. The index is derived state: it is
/// maintained by every link mutation and ignored by [`Model::graph_eq`].
#[derive(Clone, Debug)]
pub struct Model {
    /// Model name (e.g. the file stem or the QVT-R domain name it binds to).
    pub name: Sym,
    meta: Arc<Metamodel>,
    objs: Vec<Option<Object>>,
    live: usize,
    /// `incoming[dst]` = sorted `(src, ref)` pairs with `dst ∈
    /// src.refs[ref]`. Sparse: objects with no incoming links carry no
    /// entry, so ref-less metamodels pay nothing. Behind [`Arc`] with
    /// copy-on-write semantics: cloning a model — which the enforcement
    /// search does for every explored candidate — shares the index, and
    /// only link-mutating edits ([`Model::link`], [`Model::unlink`],
    /// [`Model::delete`]) pay for the deep copy.
    incoming: Arc<FxHashMap<ObjId, Vec<(ObjId, RefId)>>>,
}

impl Model {
    /// Creates an empty model named `name` conforming to `meta`.
    pub fn new(name: &str, meta: Arc<Metamodel>) -> Model {
        Model::with_capacity(name, meta, 0)
    }

    /// As [`Model::new`], with the object table pre-sized for `capacity`
    /// objects — builders that know the final size up front (generators,
    /// snapshot loaders) avoid the O(log n) re-allocations of organic
    /// growth.
    pub fn with_capacity(name: &str, meta: Arc<Metamodel>, capacity: usize) -> Model {
        Model {
            name: Sym::new(name),
            meta,
            objs: Vec::with_capacity(capacity),
            live: 0,
            incoming: Arc::default(),
        }
    }

    /// Pre-sizes the object table for `additional` more objects.
    pub fn reserve(&mut self, additional: usize) {
        self.objs.reserve(additional);
    }

    /// The metamodel this model conforms to.
    pub fn metamodel(&self) -> &Arc<Metamodel> {
        &self.meta
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the model has no live objects.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total id-space size (live + tombstones); ids are `0..id_bound()`.
    pub fn id_bound(&self) -> usize {
        self.objs.len()
    }

    /// Creates an object of concrete class `class` with default attributes.
    pub fn add(&mut self, class: ClassId) -> Result<ObjId, ModelError> {
        let c = self.meta.class(class);
        if c.is_abstract {
            return Err(ModelError::AbstractClass(c.name.resolve()));
        }
        let id = ObjId(self.objs.len() as u32);
        let n_refs = c.all_refs.len();
        self.objs.push(Some(Object {
            class,
            attrs: self.meta.default_attrs(class),
            refs: vec![Vec::new(); n_refs].into_boxed_slice(),
        }));
        self.live += 1;
        Ok(id)
    }

    /// Creates an object of class `class` at a specific id, padding the id
    /// space with tombstones as needed. Errors when the id is already live.
    ///
    /// Used to replay deltas deterministically
    /// (`mmt_dist::Delta::apply`): ids in a delta refer to the edited
    /// copy's id space, which may contain gaps.
    pub fn add_at(&mut self, id: ObjId, class: ClassId) -> Result<(), ModelError> {
        let c = self.meta.class(class);
        if c.is_abstract {
            return Err(ModelError::AbstractClass(c.name.resolve()));
        }
        if self.contains(id) {
            return Err(ModelError::NoSuchObject(id)); // occupied: cannot re-add
        }
        if id.index() >= self.objs.len() {
            self.objs.resize(id.index() + 1, None);
        }
        let n_refs = c.all_refs.len();
        self.objs[id.index()] = Some(Object {
            class,
            attrs: self.meta.default_attrs(class),
            refs: vec![Vec::new(); n_refs].into_boxed_slice(),
        });
        self.live += 1;
        Ok(())
    }

    /// Deletes `obj` and removes every link that targets it.
    ///
    /// O(degree): incoming links are found through the inverse index and
    /// outgoing links unregister themselves from it — no object-table
    /// scan.
    pub fn delete(&mut self, obj: ObjId) -> Result<(), ModelError> {
        if self.get(obj).is_none() {
            return Err(ModelError::NoSuchObject(obj));
        }
        // Scrub incoming links: only the recorded sources are touched.
        // (`contains_key` first: don't copy-on-write a shared index when
        // the object has no incoming links.)
        let sources = if self.incoming.contains_key(&obj) {
            Arc::make_mut(&mut self.incoming).remove(&obj)
        } else {
            None
        };
        if let Some(sources) = sources {
            for (src, r) in sources {
                let o = self.objs[src.index()]
                    .as_mut()
                    .expect("link source is live");
                let slot = self
                    .meta
                    .ref_slot(o.class, r)
                    .expect("indexed link reads a declared reference");
                if let Ok(pos) = o.refs[slot].binary_search(&obj) {
                    o.refs[slot].remove(pos);
                }
            }
        }
        // Unregister the object's own outgoing links from the index.
        let meta = Arc::clone(&self.meta);
        let o = self.objs[obj.index()].take().expect("checked live above");
        self.live -= 1;
        for (slot, &r) in meta.class(o.class).all_refs.iter().enumerate() {
            for &dst in &o.refs[slot] {
                self.unindex_link(obj, r, dst);
            }
        }
        Ok(())
    }

    /// Sorted `(source, reference)` pairs of every link targeting `obj`
    /// (empty for unknown or link-free objects). O(1) lookup — the
    /// inverse of [`Model::targets`].
    pub fn incoming(&self, obj: ObjId) -> &[(ObjId, RefId)] {
        self.incoming.get(&obj).map(Vec::as_slice).unwrap_or(&[])
    }

    fn index_link(&mut self, src: ObjId, r: RefId, dst: ObjId) {
        let entry = Arc::make_mut(&mut self.incoming).entry(dst).or_default();
        if let Err(pos) = entry.binary_search(&(src, r)) {
            entry.insert(pos, (src, r));
        }
    }

    fn unindex_link(&mut self, src: ObjId, r: RefId, dst: ObjId) {
        if !self.incoming.contains_key(&dst) {
            return; // don't copy-on-write a shared index for a no-op
        }
        let incoming = Arc::make_mut(&mut self.incoming);
        if let Some(entry) = incoming.get_mut(&dst) {
            if let Ok(pos) = entry.binary_search(&(src, r)) {
                entry.remove(pos);
            }
            if entry.is_empty() {
                incoming.remove(&dst);
            }
        }
    }

    /// Returns the object behind `obj`, if live.
    pub fn get(&self, obj: ObjId) -> Option<&Object> {
        self.objs.get(obj.index()).and_then(Option::as_ref)
    }

    /// True iff `obj` is a live object.
    pub fn contains(&self, obj: ObjId) -> bool {
        self.get(obj).is_some()
    }

    /// The class of `obj`.
    pub fn class_of(&self, obj: ObjId) -> Result<ClassId, ModelError> {
        self.get(obj)
            .map(|o| o.class)
            .ok_or(ModelError::NoSuchObject(obj))
    }

    fn obj_mut(&mut self, obj: ObjId) -> Result<&mut Object, ModelError> {
        self.objs
            .get_mut(obj.index())
            .and_then(Option::as_mut)
            .ok_or(ModelError::NoSuchObject(obj))
    }

    /// Sets attribute `attr` of `obj` to `value`, checking types.
    pub fn set_attr(&mut self, obj: ObjId, attr: AttrId, value: Value) -> Result<(), ModelError> {
        let meta = Arc::clone(&self.meta);
        let o = self.obj_mut(obj)?;
        let decl = meta.attr(attr);
        let slot = meta
            .attr_slot(o.class, attr)
            .ok_or_else(|| ModelError::NoSuchProperty {
                class: meta.class(o.class).name.resolve(),
                name: decl.name.resolve(),
            })?;
        if value.ty() != decl.ty {
            return Err(ModelError::TypeMismatch {
                attr: decl.name.resolve(),
                expected: decl.ty.name(),
                got: value.ty().name(),
            });
        }
        o.attrs[slot] = value;
        Ok(())
    }

    /// Sets attribute named `name` of `obj` (resolving through inheritance).
    pub fn set_attr_named(
        &mut self,
        obj: ObjId,
        name: &str,
        value: Value,
    ) -> Result<(), ModelError> {
        let class = self.class_of(obj)?;
        let attr =
            self.meta
                .attr_of(class, Sym::new(name))
                .ok_or_else(|| ModelError::NoSuchProperty {
                    class: self.meta.class(class).name.resolve(),
                    name: name.to_owned(),
                })?;
        self.set_attr(obj, attr, value)
    }

    /// Reads attribute `attr` of `obj`.
    pub fn attr(&self, obj: ObjId, attr: AttrId) -> Result<Value, ModelError> {
        let o = self.get(obj).ok_or(ModelError::NoSuchObject(obj))?;
        let slot =
            self.meta
                .attr_slot(o.class, attr)
                .ok_or_else(|| ModelError::NoSuchProperty {
                    class: self.meta.class(o.class).name.resolve(),
                    name: self.meta.attr(attr).name.resolve(),
                })?;
        Ok(o.attrs[slot])
    }

    /// Reads attribute named `name` of `obj`.
    pub fn attr_named(&self, obj: ObjId, name: &str) -> Result<Value, ModelError> {
        let class = self.class_of(obj)?;
        let attr =
            self.meta
                .attr_of(class, Sym::new(name))
                .ok_or_else(|| ModelError::NoSuchProperty {
                    class: self.meta.class(class).name.resolve(),
                    name: name.to_owned(),
                })?;
        self.attr(obj, attr)
    }

    /// Adds a link `src --r--> dst`, keeping the slot sorted and duplicate
    /// free. Returns `true` if the link was newly added.
    pub fn add_link(&mut self, src: ObjId, r: RefId, dst: ObjId) -> Result<bool, ModelError> {
        let meta = Arc::clone(&self.meta);
        let decl = meta.reference(r);
        let dst_class = self.class_of(dst)?;
        if !meta.conforms(dst_class, decl.target) {
            return Err(ModelError::BadLinkTarget {
                reference: decl.name.resolve(),
                target: dst,
            });
        }
        let o = self.obj_mut(src)?;
        let slot = meta
            .ref_slot(o.class, r)
            .ok_or_else(|| ModelError::NoSuchProperty {
                class: meta.class(o.class).name.resolve(),
                name: decl.name.resolve(),
            })?;
        match o.refs[slot].binary_search(&dst) {
            Ok(_) => Ok(false),
            Err(pos) => {
                o.refs[slot].insert(pos, dst);
                self.index_link(src, r, dst);
                Ok(true)
            }
        }
    }

    /// Removes the link `src --r--> dst`. Returns `true` if it existed.
    pub fn remove_link(&mut self, src: ObjId, r: RefId, dst: ObjId) -> Result<bool, ModelError> {
        let meta = Arc::clone(&self.meta);
        let o = self.obj_mut(src)?;
        let decl = meta.reference(r);
        let slot = meta
            .ref_slot(o.class, r)
            .ok_or_else(|| ModelError::NoSuchProperty {
                class: meta.class(o.class).name.resolve(),
                name: decl.name.resolve(),
            })?;
        match o.refs[slot].binary_search(&dst) {
            Ok(pos) => {
                o.refs[slot].remove(pos);
                self.unindex_link(src, r, dst);
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// The targets of reference `r` on `obj` (sorted, duplicate free).
    pub fn targets(&self, obj: ObjId, r: RefId) -> Result<&[ObjId], ModelError> {
        let o = self.get(obj).ok_or(ModelError::NoSuchObject(obj))?;
        let slot = self
            .meta
            .ref_slot(o.class, r)
            .ok_or_else(|| ModelError::NoSuchProperty {
                class: self.meta.class(o.class).name.resolve(),
                name: self.meta.reference(r).name.resolve(),
            })?;
        Ok(&o.refs[slot])
    }

    /// True iff the link `src --r--> dst` is present.
    pub fn has_link(&self, src: ObjId, r: RefId, dst: ObjId) -> bool {
        self.targets(src, r)
            .map(|t| t.binary_search(&dst).is_ok())
            .unwrap_or(false)
    }

    /// Iterates over all live objects as `(id, object)`.
    pub fn objects(&self) -> impl Iterator<Item = (ObjId, &Object)> {
        self.objs
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|o| (ObjId(i as u32), o)))
    }

    /// Iterates over ids of live objects whose class conforms to `class`.
    pub fn objects_of<'a>(&'a self, class: ClassId) -> impl Iterator<Item = ObjId> + 'a {
        self.objects()
            .filter(move |(_, o)| self.meta.conforms(o.class, class))
            .map(|(id, _)| id)
    }

    /// Counts live instances conforming to `class`.
    pub fn count_of(&self, class: ClassId) -> usize {
        self.objects_of(class).count()
    }

    /// Structural equality on the live object graph, id-sensitive.
    ///
    /// Two models are graph-equal when they conform to the same metamodel
    /// and contain the same live ids with equal class, attributes and link
    /// sets. (Link slots are kept sorted, so `Vec` equality is set
    /// equality.) Tombstone layout and model names are ignored.
    pub fn graph_eq(&self, other: &Model) -> bool {
        if !Arc::ptr_eq(&self.meta, &other.meta) {
            return false;
        }
        if self.live != other.live {
            return false;
        }
        self.objects().all(|(id, o)| other.get(id) == Some(o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{MetamodelBuilder, Upper};
    use crate::value::AttrType;

    fn mm() -> (Arc<Metamodel>, ClassId, AttrId, AttrId, ClassId, RefId) {
        let mut b = MetamodelBuilder::new("FM");
        let f = b.class("Feature").unwrap();
        let name = b.attr(f, "name", AttrType::Str).unwrap();
        let mand = b.attr(f, "mandatory", AttrType::Bool).unwrap();
        let m = b.class("FeatureModel").unwrap();
        let feats = b.reference(m, "features", f, 0, Upper::Many, true).unwrap();
        let meta = b.build().unwrap();
        (meta, f, name, mand, m, feats)
    }

    #[test]
    fn add_set_get() {
        let (meta, f, name, mand, _, _) = mm();
        let mut m = Model::new("m", meta);
        let o = m.add(f).unwrap();
        assert_eq!(m.len(), 1);
        m.set_attr(o, name, Value::str("engine")).unwrap();
        assert_eq!(m.attr(o, name).unwrap(), Value::str("engine"));
        assert_eq!(m.attr(o, mand).unwrap(), Value::Bool(false));
        m.set_attr_named(o, "mandatory", Value::Bool(true)).unwrap();
        assert_eq!(m.attr_named(o, "mandatory").unwrap(), Value::Bool(true));
    }

    #[test]
    fn type_checked_set() {
        let (meta, f, name, _, _, _) = mm();
        let mut m = Model::new("m", meta);
        let o = m.add(f).unwrap();
        assert!(matches!(
            m.set_attr(o, name, Value::Int(4)).unwrap_err(),
            ModelError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn links_sorted_and_deduped() {
        let (meta, f, _, _, fm, feats) = mm();
        let mut m = Model::new("m", meta);
        let root = m.add(fm).unwrap();
        let a = m.add(f).unwrap();
        let b = m.add(f).unwrap();
        assert!(m.add_link(root, feats, b).unwrap());
        assert!(m.add_link(root, feats, a).unwrap());
        assert!(!m.add_link(root, feats, a).unwrap());
        assert_eq!(m.targets(root, feats).unwrap(), &[a, b]);
        assert!(m.has_link(root, feats, a));
        assert!(m.remove_link(root, feats, a).unwrap());
        assert!(!m.remove_link(root, feats, a).unwrap());
        assert!(!m.has_link(root, feats, a));
    }

    #[test]
    fn link_target_type_checked() {
        let (meta, _, _, _, fm, feats) = mm();
        let mut m = Model::new("m", meta);
        let root = m.add(fm).unwrap();
        let other = m.add(fm).unwrap();
        assert!(matches!(
            m.add_link(root, feats, other).unwrap_err(),
            ModelError::BadLinkTarget { .. }
        ));
    }

    #[test]
    fn delete_scrubs_incoming_links() {
        let (meta, f, _, _, fm, feats) = mm();
        let mut m = Model::new("m", meta);
        let root = m.add(fm).unwrap();
        let a = m.add(f).unwrap();
        m.add_link(root, feats, a).unwrap();
        m.delete(a).unwrap();
        assert!(!m.contains(a));
        assert_eq!(m.targets(root, feats).unwrap(), &[] as &[ObjId]);
        assert_eq!(m.len(), 1);
        // Ids are not reused.
        let b = m.add(f).unwrap();
        assert_ne!(a, b);
        // Deleting twice errors.
        assert!(m.delete(a).is_err());
    }

    #[test]
    fn extents_respect_subtyping() {
        let mut b = MetamodelBuilder::new("X");
        let top = b.abstract_class("Named").unwrap();
        let p = b.class_full("Person", &[top], false).unwrap();
        let c = b.class_full("Company", &[top], false).unwrap();
        let meta = b.build().unwrap();
        let mut m = Model::new("m", meta);
        let o1 = m.add(p).unwrap();
        let o2 = m.add(c).unwrap();
        assert!(m.add(top).is_err());
        let named: Vec<_> = m.objects_of(top).collect();
        assert_eq!(named, vec![o1, o2]);
        assert_eq!(m.count_of(p), 1);
    }

    #[test]
    fn graph_eq_is_id_sensitive_and_ignores_tombstones() {
        let (meta, f, name, _, _, _) = mm();
        let mut a = Model::new("a", Arc::clone(&meta));
        let mut b = Model::new("b", meta);
        let oa = a.add(f).unwrap();
        let ob = b.add(f).unwrap();
        assert_eq!(oa, ob);
        a.set_attr(oa, name, Value::str("x")).unwrap();
        b.set_attr(ob, name, Value::str("x")).unwrap();
        assert!(a.graph_eq(&b));
        // A diverging attribute breaks equality.
        b.set_attr(ob, name, Value::str("y")).unwrap();
        assert!(!a.graph_eq(&b));
        // Tombstones don't matter: delete and re-add the same shape at a
        // different id is NOT equal (id-sensitive)...
        b.set_attr(ob, name, Value::str("x")).unwrap();
        let extra = b.add(f).unwrap();
        b.delete(extra).unwrap();
        // ...but a tombstone with identical live ids is equal.
        assert!(a.graph_eq(&b));
    }

    /// The inverse link index tracks every mutation path: add, remove,
    /// delete-with-scrub — `incoming` always equals what a full scan
    /// would find.
    #[test]
    fn incoming_index_tracks_link_mutations() {
        let (meta, f, _, _, fm, feats) = mm();
        let mut m = Model::new("m", meta);
        let r1 = m.add(fm).unwrap();
        let r2 = m.add(fm).unwrap();
        let a = m.add(f).unwrap();
        assert_eq!(m.incoming(a), &[]);
        m.add_link(r1, feats, a).unwrap();
        m.add_link(r2, feats, a).unwrap();
        assert_eq!(m.incoming(a), &[(r1, feats), (r2, feats)]);
        // Duplicate adds don't duplicate index entries.
        m.add_link(r1, feats, a).unwrap();
        assert_eq!(m.incoming(a).len(), 2);
        m.remove_link(r1, feats, a).unwrap();
        assert_eq!(m.incoming(a), &[(r2, feats)]);
        // Deleting the source scrubs its outgoing entry from the index.
        m.delete(r2).unwrap();
        assert_eq!(m.incoming(a), &[]);
        // Deleting a target with live incoming links scrubs the sources.
        m.add_link(r1, feats, a).unwrap();
        m.delete(a).unwrap();
        assert_eq!(m.targets(r1, feats).unwrap(), &[] as &[ObjId]);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let (meta, f, name, _, _, _) = mm();
        let mut m = Model::with_capacity("m", meta, 100);
        assert!(m.is_empty());
        let o = m.add(f).unwrap();
        m.set_attr(o, name, Value::str("x")).unwrap();
        m.reserve(1000);
        assert_eq!(m.len(), 1);
        assert_eq!(m.attr(o, name).unwrap(), Value::str("x"));
    }

    #[test]
    fn clone_is_deep() {
        let (meta, f, name, _, _, _) = mm();
        let mut a = Model::new("a", meta);
        let o = a.add(f).unwrap();
        let mut b = a.clone();
        b.set_attr(o, name, Value::str("changed")).unwrap();
        assert_eq!(a.attr(o, name).unwrap(), Value::str(""));
        assert!(!a.graph_eq(&b));
    }
}
