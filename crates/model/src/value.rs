//! Attribute value types and runtime values.

use crate::intern::Sym;
use std::fmt;

/// The type of an attribute.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AttrType {
    /// Interned string.
    Str,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
}

impl AttrType {
    /// The default value a fresh object carries for this type.
    pub fn default_value(self) -> Value {
        match self {
            AttrType::Str => Value::Str(Sym::new("")),
            AttrType::Bool => Value::Bool(false),
            AttrType::Int => Value::Int(0),
        }
    }

    /// Human-readable type name as used in the textual syntax.
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Str => "Str",
            AttrType::Bool => "Bool",
            AttrType::Int => "Int",
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime attribute value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// Interned string value.
    Str(Sym),
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
}

impl Value {
    /// The type this value inhabits.
    pub fn ty(self) -> AttrType {
        match self {
            Value::Str(_) => AttrType::Str,
            Value::Bool(_) => AttrType::Bool,
            Value::Int(_) => AttrType::Int,
        }
    }

    /// Convenience constructor interning `s`.
    pub fn str(s: &str) -> Value {
        Value::Str(Sym::new(s))
    }

    /// Returns the string symbol if this is a `Str` value.
    pub fn as_sym(self) -> Option<Sym> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool` value.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int` value.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => s.with_str(|s| write!(f, "{s:?}")),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<Sym> for Value {
    fn from(s: Sym) -> Value {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types() {
        assert_eq!(Value::str("x").ty(), AttrType::Str);
        assert_eq!(Value::Bool(true).ty(), AttrType::Bool);
        assert_eq!(Value::Int(7).ty(), AttrType::Int);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::str("x").as_sym(), Some(Sym::new("x")));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(9).as_int(), Some(9));
        assert_eq!(Value::Int(9).as_bool(), None);
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Int(1).as_sym(), None);
    }

    #[test]
    fn defaults_inhabit_their_types() {
        for ty in [AttrType::Str, AttrType::Bool, AttrType::Int] {
            assert_eq!(ty.default_value().ty(), ty);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(AttrType::Str.to_string(), "Str");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("v"), Value::str("v"));
        assert_eq!(Value::from(Sym::new("v")), Value::str("v"));
    }
}
