//! A fast, deterministic hasher for internal index maps.
//!
//! The model and checker layers keep several hash maps on the per-edit
//! hot path (the inverse link index, the attribute value index, the
//! match-state inverted indexes, evaluation memos). Their keys are
//! small fixed-size tuples of ids, where SipHash's per-call setup cost
//! dominates the lookup; this multiply-xor hasher (the algorithm
//! popularized by rustc's `FxHasher`) hashes a word in a couple of
//! cycles instead.
//!
//! Not DoS-resistant — use only for maps keyed by internal ids, never
//! by attacker-controlled strings. Unlike `RandomState` the hasher is
//! unseeded, so map layout (and thus iteration order) is a pure
//! function of the insertion sequence — one less source of run-to-run
//! nondeterminism, though callers should still never let map iteration
//! order reach output.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher; see the [module docs](self).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (unseeded, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_usable() {
        let mut m: FxHashMap<(u32, u64), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, (i as u64) << 32), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, (i as u64) << 32)), Some(&i));
        }
        // Unseeded: two hashers agree on every input.
        use std::hash::Hash;
        let probe = |v: &[u8]| {
            let mut h = FxHasher::default();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(probe(b"abcdefghijk"), probe(b"abcdefghijk"));
        assert_ne!(probe(b"abcdefghijk"), probe(b"abcdefghij"));
    }
}
