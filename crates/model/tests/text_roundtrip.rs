//! Property-based round-trip tests for the textual model format over
//! randomly generated models.

use mmt_model::text::{parse_metamodel, parse_model, print_metamodel, print_model};
use mmt_model::{conformance, AttrType, Metamodel, MetamodelBuilder, Model, Upper, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn rich_metamodel() -> Arc<Metamodel> {
    let mut b = MetamodelBuilder::new("Rich");
    let named = b.abstract_class("Named").unwrap();
    b.attr(named, "name", AttrType::Str).unwrap();
    let item = b.class_full("Item", &[named], false).unwrap();
    b.attr(item, "weight", AttrType::Int).unwrap();
    b.attr(item, "fragile", AttrType::Bool).unwrap();
    let bin = b.class_full("Bin", &[named], false).unwrap();
    b.reference(bin, "holds", item, 0, Upper::Many, true)
        .unwrap();
    b.reference(bin, "next", bin, 0, Upper::Bounded(1), false)
        .unwrap();
    b.build().unwrap()
}

/// Instruction stream → model, fully deterministic.
fn build_model(meta: &Arc<Metamodel>, script: &[(u8, u8, i64)]) -> Model {
    let item = meta.class_named("Item").unwrap();
    let bin = meta.class_named("Bin").unwrap();
    let holds = meta.ref_of(bin, mmt_model::Sym::new("holds")).unwrap();
    let next = meta.ref_of(bin, mmt_model::Sym::new("next")).unwrap();
    let mut m = Model::new("m", Arc::clone(meta));
    for &(op, sel, val) in script {
        let items: Vec<_> = m.objects_of(item).collect();
        let bins: Vec<_> = m.objects_of(bin).collect();
        match op % 6 {
            0 => {
                let id = m.add(item).unwrap();
                m.set_attr_named(id, "name", Value::str(&format!("i{}", val % 10)))
                    .unwrap();
                m.set_attr_named(id, "weight", Value::Int(val % 100))
                    .unwrap();
                m.set_attr_named(id, "fragile", Value::Bool(val % 2 == 0))
                    .unwrap();
            }
            1 => {
                let id = m.add(bin).unwrap();
                m.set_attr_named(id, "name", Value::str(&format!("b{}", val % 10)))
                    .unwrap();
            }
            2 => {
                if !bins.is_empty() && !items.is_empty() {
                    let b0 = bins[sel as usize % bins.len()];
                    let i0 = items[val.unsigned_abs() as usize % items.len()];
                    // Keep containment single-parent: only link if the
                    // item has no container yet.
                    let already = bins
                        .iter()
                        .any(|&b| m.targets(b, holds).unwrap().contains(&i0));
                    if !already {
                        m.add_link(b0, holds, i0).unwrap();
                    }
                }
            }
            3 => {
                if bins.len() >= 2 {
                    let b0 = bins[sel as usize % bins.len()];
                    let b1 = bins[val.unsigned_abs() as usize % bins.len()];
                    if m.targets(b0, next).unwrap().is_empty() {
                        m.add_link(b0, next, b1).unwrap();
                    }
                }
            }
            4 => {
                if !items.is_empty() {
                    let i0 = items[sel as usize % items.len()];
                    m.set_attr_named(i0, "weight", Value::Int(val)).unwrap();
                }
            }
            _ => {
                if !items.is_empty() && val % 3 == 0 {
                    let i0 = items[sel as usize % items.len()];
                    m.delete(i0).unwrap();
                }
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print → parse reproduces the exact object graph (modulo ids, which
    /// the printer renumbers densely).
    #[test]
    fn model_text_round_trip(script in proptest::collection::vec((0u8..6, 0u8..8, -50i64..50), 0..30)) {
        let meta = rich_metamodel();
        let m = build_model(&meta, &script);
        let printed = print_model(&m);
        let reparsed = parse_model(&printed, &meta).expect("printer output parses");
        // Same number of objects per class, same multiset of attribute
        // tuples, same link count.
        prop_assert_eq!(m.len(), reparsed.len());
        let sig = |m: &Model| {
            let mut v: Vec<String> = m
                .objects()
                .map(|(_id, o)| {
                    let links: usize = o.refs.iter().map(Vec::len).sum();
                    format!("{:?}|{:?}|{}", o.class, o.attrs, links)
                })
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(sig(&m), sig(&reparsed));
        // And the reparsed model still conforms.
        prop_assert!(conformance::is_conformant(&reparsed));
    }

    /// Metamodel printing round-trips structurally.
    #[test]
    fn metamodel_text_round_trip(_x in 0u8..4) {
        let meta = rich_metamodel();
        let printed = print_metamodel(&meta);
        let reparsed = parse_metamodel(&printed).expect("printer output parses");
        prop_assert_eq!(meta.class_count(), reparsed.class_count());
        prop_assert_eq!(meta.attr_count(), reparsed.attr_count());
        prop_assert_eq!(meta.ref_count(), reparsed.ref_count());
    }
}
