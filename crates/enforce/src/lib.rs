//! # mmt-enforce — least-change enforcement engines
//!
//! Implements the paper's §3 enforcement semantics: given a consistency
//! specification, a tuple of models, and a repair *shape* (which models
//! may change — the multidirectional generalization of QVT-R's single
//! enforcement direction), produce new target models that are consistent
//! and at minimal (weighted) distance from the originals.
//!
//! Two engines implement the common [`RepairEngine`] trait:
//!
//! * [`SearchEngine`] — direct uniform-cost search over repair-guided
//!   edits, with the concrete checker as oracle (the paper's "iterative
//!   process of searching for all consistent models at increasing
//!   distance", run natively);
//! * [`SatEngine`] — bounded grounding to CNF with a cost counter,
//!   relaxed `k = 0, 1, 2, …` (the Alloy/Kodkod/PMax-SAT realization
//!   Echo uses).
//!
//! Both return the minimal cost, the repaired tuple, and per-model edit
//! scripts. They are differentially tested against each other.
//!
//! ```
//! use mmt_model::text::{parse_metamodel, parse_model};
//! use mmt_qvtr::parse_and_resolve;
//! use mmt_deps::{DomIdx, DomSet};
//! use mmt_enforce::{RepairEngine, SearchEngine};
//!
//! let cf = parse_metamodel("metamodel CF { class Feature { attr name: Str; } }").unwrap();
//! let fm = parse_metamodel(
//!     "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }").unwrap();
//! let hir = std::sync::Arc::new(parse_and_resolve(r#"
//! transformation F(cf1 : CF, fm : FM) {
//!   top relation Sel {
//!     n : Str;
//!     domain cf1 s : Feature { name = n };
//!     domain fm  f : Feature { name = n };
//!     depend cf1 -> fm;
//!     depend fm -> cf1;
//!   }
//! }"#, &[cf.clone(), fm.clone()]).unwrap());
//! // The configuration selects `engine`; the feature model doesn't know it.
//! let m_cf = parse_model(r#"model cf1 : CF { f = Feature { name = "engine" } }"#, &cf).unwrap();
//! let m_fm = parse_model(r#"model fm : FM { }"#, &fm).unwrap();
//!
//! // Repair shape →F_FM: only the feature model may change.
//! let out = SearchEngine::default()
//!     .repair(&hir, &[m_cf, m_fm], DomSet::single(DomIdx(1)))
//!     .unwrap()
//!     .expect("repairable");
//! // Least change: create the feature and name it (2 ops).
//! assert_eq!(out.cost, 2);
//! assert_eq!(out.deltas[1].len(), 2);
//! assert!(out.deltas[0].is_empty()); // cf1 untouched
//! ```

pub mod mmt_sync;
pub mod search;

use mmt_check::{CheckError, DeltaChecker, EvalError};
use mmt_deps::DomSet;
use mmt_dist::{CostModel, Delta, TupleCost};
use mmt_ground::{GroundError, GroundOptions, GroundProblem, Scope};
use mmt_model::{Model, ModelError};
use mmt_qvtr::Hir;
use std::fmt;
use std::sync::Arc;

/// Options shared by the repair engines.
///
/// Every field trades completeness or repair quality against time; the
/// per-field docs spell the trade-off out. The defaults are tuned for
/// the paper-scale workloads exercised by `mmt-bench`.
#[derive(Clone, Debug)]
pub struct RepairOptions {
    /// Per-operation costs (the §3 graph-edit distance). Raising one
    /// op's price steers repairs away from that op kind; it does not
    /// change engine speed, but a coarse price scale deepens the search
    /// frontier / the SAT cost counter before `max_cost` bites.
    pub cost: CostModel,
    /// Per-model weight multipliers (§3's weighted tuple distance).
    /// [`TupleCost::auto`] (the default) is uniform at the tuple's
    /// arity; an explicit weighting must match the arity exactly or the
    /// engines return [`RepairError::Tuple`]. Strongly asymmetric
    /// weights make the search frontier deeper (cheap models absorb
    /// many edits before an expensive one is considered), so pair them
    /// with a proportionally larger `max_cost`.
    pub tuple: TupleCost,
    /// Maximum total weighted cost to consider before giving up.
    /// The hard bound on both engines' runtime: search explores
    /// O(branching^depth) states and the SAT engine relaxes its cost
    /// counter `k = 0, 1, 2, …` up to this bound. Too small → repairable
    /// tuples report `None`; too large → worst-case blow-up on
    /// unrepairable inputs.
    pub max_cost: u64,
    /// Fresh string symbols available to repairs (values not occurring
    /// in any model or pattern literal). Each fresh string multiplies
    /// the attribute-candidate pool (search) and the string universe
    /// (SAT grounding); 1 suffices unless a repair must invent several
    /// distinct new names.
    pub fresh_strings: usize,
    /// Search engine: cap on explored states — the safety net against
    /// exponential frontiers. When hit, the engine errors with
    /// [`RepairError::SearchBudgetExhausted`] rather than silently
    /// reporting unrepairable.
    pub max_states: u64,
    /// Search engine: counterexamples consumed per directional check
    /// when deriving repair candidates. Higher values widen the
    /// branching factor (more candidate edits per state, more heap
    /// pressure) but can find repairs that need to fix a *specific*
    /// violation first; lower values keep expansion cheap but may
    /// detour through longer edit sequences.
    pub violations_per_check: usize,
    /// Search engine: use the incremental
    /// [`DeltaChecker`] oracle (default
    /// `true`). Each search state then carries its parent's checker
    /// state plus one applied edit, making the per-state oracle cost
    /// proportional to the edit instead of the model tuple — ≥5× faster
    /// on the paper-scale enforce benches. `false` restores the PR 1
    /// from-scratch oracle (every state re-checks everything): slower,
    /// but useful for ablation measurements and as a differential
    /// reference.
    pub incremental_oracle: bool,
    /// SAT engine: universe slack (fresh objects per class). Grounding
    /// size — and thus CNF size and solve time — grows roughly linearly
    /// in the slack per quantifier nest; repairs that must *create*
    /// more than this many objects in one class are invisible to the
    /// SAT engine.
    pub slack_objs: usize,
    /// Worker threads (default 1 = fully sequential). Two things
    /// parallelize under `jobs > 1`: the search engine's frontier (safe
    /// batches of states expanded concurrently, merged in deterministic
    /// order — see `mmt_enforce::search`) and
    /// [`RepairEngine::repair_batch`]'s fan-out over independent
    /// requests. Parallelism only changes wall-clock time: results are
    /// bit-identical for every value of `jobs`.
    pub jobs: usize,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            cost: CostModel::default(),
            tuple: TupleCost::auto(),
            max_cost: 16,
            fresh_strings: 1,
            max_states: 200_000,
            violations_per_check: 4,
            incremental_oracle: true,
            slack_objs: 2,
            jobs: 1,
        }
    }
}

/// A successful repair.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// Total weighted distance from the originals.
    pub cost: u64,
    /// The repaired model tuple (non-targets unchanged).
    pub models: Vec<Model>,
    /// Per-model edit scripts (empty for untouched models).
    pub deltas: Vec<Delta>,
}

/// Errors raised during enforcement.
#[derive(Clone, Debug)]
pub enum RepairError {
    /// The checking oracle failed.
    Eval(EvalError),
    /// Binding models to the transformation failed.
    Check(CheckError),
    /// Grounding failed.
    Ground(GroundError),
    /// A model operation failed (internal).
    Model(ModelError),
    /// The search engine exhausted its state budget.
    SearchBudgetExhausted {
        /// The configured budget.
        states: u64,
    },
    /// The target set is empty.
    NoTargets,
    /// An explicit tuple weighting does not match the tuple's arity.
    Tuple(mmt_dist::TupleArityError),
    /// A weighted cost sum exceeded `u64` (op prices × tuple weights too
    /// large). Surfaced instead of silently wrapping, which would make
    /// expensive edits look spuriously cheap and break the least-change
    /// guarantee.
    CostOverflow,
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Eval(e) => write!(f, "evaluation error: {e}"),
            RepairError::Check(e) => write!(f, "binding error: {e}"),
            RepairError::Ground(e) => write!(f, "grounding error: {e}"),
            RepairError::Model(e) => write!(f, "model error: {e}"),
            RepairError::SearchBudgetExhausted { states } => {
                write!(f, "search exhausted its budget of {states} states")
            }
            RepairError::NoTargets => f.write_str("repair shape selects no models"),
            RepairError::Tuple(e) => write!(f, "{e}"),
            RepairError::CostOverflow => {
                f.write_str("weighted repair cost overflows u64 (op prices × tuple weights)")
            }
        }
    }
}

impl std::error::Error for RepairError {}

impl From<EvalError> for RepairError {
    fn from(e: EvalError) -> Self {
        RepairError::Eval(e)
    }
}

impl From<CheckError> for RepairError {
    fn from(e: CheckError) -> Self {
        RepairError::Check(e)
    }
}

impl From<GroundError> for RepairError {
    fn from(e: GroundError) -> Self {
        RepairError::Ground(e)
    }
}

impl From<ModelError> for RepairError {
    fn from(e: ModelError) -> Self {
        RepairError::Model(e)
    }
}

/// One request in a [`RepairEngine::repair_batch`] call: a model tuple
/// plus the repair shape to apply to it. Requests are independent — they
/// share the transformation but nothing else.
#[derive(Clone, Debug)]
pub struct RepairRequest {
    /// The model tuple to repair, in model-space order.
    pub models: Vec<Model>,
    /// The models the repair may rewrite.
    pub targets: DomSet,
}

/// A least-change repair engine.
///
/// Both engines implement this trait, so callers can switch (or
/// differentially compare) them behind one interface:
///
/// ```
/// use mmt_enforce::{RepairEngine, SatEngine, SearchEngine};
///
/// let engines: Vec<Box<dyn RepairEngine>> = vec![
///     Box::new(SearchEngine::default()),
///     Box::new(SatEngine::default()),
/// ];
/// let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
/// assert_eq!(names, ["search", "sat"]);
/// ```
///
/// Engines are `Sync`, so one engine value can serve concurrent repair
/// calls — [`RepairEngine::repair_batch`] relies on this to fan a batch
/// of requests across a worker pool.
pub trait RepairEngine: Sync {
    /// Engine name (for reports and benches).
    fn name(&self) -> &'static str;

    /// Worker threads [`RepairEngine::repair_batch`] fans requests
    /// across (engines expose their [`RepairOptions::jobs`] here).
    /// Defaults to 1: sequential.
    fn jobs(&self) -> usize {
        1
    }

    /// Repairs `models` so that every directional check of `hir` holds,
    /// changing only the models in `targets`. Returns `None` when no
    /// repair exists within the engine's bounds.
    ///
    /// The transformation is passed as a shared [`Arc`] handle: engines
    /// that build long-lived oracle state (the incremental search keeps
    /// a [`DeltaChecker`] per explored state) clone the handle instead
    /// of borrowing the caller's stack frame.
    fn repair(
        &self,
        hir: &Arc<Hir>,
        models: &[Model],
        targets: DomSet,
    ) -> Result<Option<RepairOutcome>, RepairError>;

    /// Repairs a batch of independent requests, fanning them across
    /// [`RepairEngine::jobs`] worker threads. Results come back in
    /// request order and each slot is exactly what [`RepairEngine::repair`]
    /// would have returned for that request — the worker pool changes
    /// wall-clock time, never outcomes.
    ///
    /// ```
    /// use mmt_deps::{DomIdx, DomSet};
    /// use mmt_enforce::{RepairEngine, RepairOptions, RepairRequest, SearchEngine};
    /// use mmt_model::text::{parse_metamodel, parse_model};
    /// use mmt_qvtr::parse_and_resolve;
    ///
    /// let cf = parse_metamodel("metamodel CF { class Feature { attr name: Str; } }").unwrap();
    /// let fm = parse_metamodel(
    ///     "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }").unwrap();
    /// let hir = std::sync::Arc::new(parse_and_resolve(r#"
    /// transformation F(cf1 : CF, fm : FM) {
    ///   top relation Sel {
    ///     n : Str;
    ///     domain cf1 s : Feature { name = n };
    ///     domain fm  f : Feature { name = n };
    ///     depend cf1 -> fm;
    ///     depend fm -> cf1;
    ///   }
    /// }"#, &[cf.clone(), fm.clone()]).unwrap());
    /// let m_fm = parse_model(r#"model fm : FM { }"#, &fm).unwrap();
    /// // Two independent sync requests against the same specification.
    /// let requests: Vec<RepairRequest> = ["engine", "gps"].iter().map(|name| {
    ///     let src = format!(r#"model cf1 : CF {{ f = Feature {{ name = "{name}" }} }}"#);
    ///     RepairRequest {
    ///         models: vec![parse_model(&src, &cf).unwrap(), m_fm.clone()],
    ///         targets: DomSet::single(DomIdx(1)),
    ///     }
    /// }).collect();
    /// let engine = SearchEngine::new(RepairOptions { jobs: 2, ..Default::default() });
    /// let outcomes = engine.repair_batch(&hir, &requests);
    /// assert_eq!(outcomes.len(), 2);
    /// for out in outcomes {
    ///     assert_eq!(out.unwrap().expect("repairable").cost, 2);
    /// }
    /// ```
    fn repair_batch(
        &self,
        hir: &Arc<Hir>,
        requests: &[RepairRequest],
    ) -> Vec<Result<Option<RepairOutcome>, RepairError>> {
        pooled_map(requests, self.jobs(), |_, r| {
            self.repair(hir, &r.models, r.targets)
        })
    }

    /// Repairs the tuple owned by a **pre-warmed** [`DeltaChecker`] —
    /// the stateful entry point behind `mmt_core`'s sync sessions.
    /// Instead of rebuilding the consistency oracle from scratch
    /// (cold-start cost proportional to the whole tuple), an engine that
    /// can exploit warm state forks `root` and searches from its cached
    /// match state.
    ///
    /// The outcome contract is strict: `repair_warm(root, targets)`
    /// returns **exactly** what [`RepairEngine::repair`] would return
    /// for `(root.hir(), root.models(), targets)` — warmth changes
    /// wall-clock time, never results. The default implementation
    /// simply does that cold call (how [`SatEngine`] seeds its
    /// grounding: from the session's live tuple, since CNF grounding
    /// has no incremental state to reuse); [`SearchEngine`] overrides it
    /// to seed the incremental search from the forked root.
    fn repair_warm(
        &self,
        root: &DeltaChecker,
        targets: DomSet,
    ) -> Result<Option<RepairOutcome>, RepairError> {
        self.repair(root.hir_arc(), root.models(), targets)
    }

    /// As [`RepairEngine::repair_batch`], but over pre-warmed roots:
    /// each `(checker, targets)` pair is one independent request, fanned
    /// across [`RepairEngine::jobs`] workers. Slot `i` is exactly what
    /// [`RepairEngine::repair_warm`] returns for pair `i`.
    fn repair_batch_warm(
        &self,
        roots: &[(DeltaChecker, DomSet)],
    ) -> Vec<Result<Option<RepairOutcome>, RepairError>> {
        pooled_map(roots, self.jobs(), |_, (root, targets)| {
            self.repair_warm(root, *targets)
        })
    }
}

/// Model-check-only window onto [`pooled_map`]: the root `model_check`
/// test suite drives the real fan-out funnel (cursor + slots + scope)
/// under the interleaving checker without widening the normal API.
#[cfg(feature = "model-check")]
pub fn pooled_map_modeled<T: Sync, R: Send>(
    items: &[T],
    jobs: usize,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    pooled_map(items, jobs, f)
}

/// The deterministic worker pool shared by [`RepairEngine::repair_batch`]
/// and the search engine's parallel frontier: maps `f` over `items` on
/// up to `jobs` threads draining an atomic cursor. Each result slot is
/// written exactly once, so output order is item order by construction —
/// thread scheduling never leaks into the results. `jobs <= 1` (or a
/// single item) runs inline without spawning.
pub(crate) fn pooled_map<T: Sync, R: Send>(
    items: &[T],
    jobs: usize,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = mmt_sync::atomic::AtomicUsize::new(0);
    let slots: Vec<mmt_sync::Mutex<Option<R>>> =
        items.iter().map(|_| mmt_sync::Mutex::new(None)).collect();
    mmt_sync::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, mmt_sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every slot is filled")
        })
        .collect()
}

/// The uniform-cost search engine (§3 run natively): explores edit
/// sequences in order of increasing weighted distance, with an
/// incremental [`mmt_check::DeltaChecker`] as the per-state consistency
/// oracle (see [`RepairOptions::incremental_oracle`]).
///
/// ```
/// use mmt_model::text::{parse_metamodel, parse_model};
/// use mmt_qvtr::parse_and_resolve;
/// use mmt_deps::{DomIdx, DomSet};
/// use mmt_dist::TupleCost;
/// use mmt_enforce::{RepairEngine, RepairOptions, SearchEngine};
///
/// let cf = parse_metamodel("metamodel CF { class Feature { attr name: Str; } }").unwrap();
/// let fm = parse_metamodel(
///     "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }").unwrap();
/// let hir = std::sync::Arc::new(parse_and_resolve(r#"
/// transformation F(cf1 : CF, fm : FM) {
///   top relation Sel {
///     n : Str;
///     domain cf1 s : Feature { name = n };
///     domain fm  f : Feature { name = n };
///     depend cf1 -> fm;
///     depend fm -> cf1;
///   }
/// }"#, &[cf.clone(), fm.clone()]).unwrap());
/// let m_cf = parse_model(r#"model cf1 : CF { f = Feature { name = "gps" } }"#, &cf).unwrap();
/// let m_fm = parse_model(r#"model fm : FM { f = Feature { name = "radio" } }"#, &fm).unwrap();
///
/// // Make the feature model 100× as expensive as the configuration:
/// // the least-change repair rewrites cf1 instead of fm.
/// let engine = SearchEngine::new(RepairOptions {
///     tuple: TupleCost::weighted(vec![1, 100]),
///     ..RepairOptions::default()
/// });
/// let both = DomSet::single(DomIdx(0)).with(DomIdx(1));
/// let out = engine.repair(&hir, &[m_cf, m_fm.clone()], both).unwrap().unwrap();
/// assert!(out.deltas[1].is_empty(), "fm untouched:\n{}", out.deltas[1]);
/// assert!(out.models[1].graph_eq(&m_fm));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SearchEngine {
    /// Engine options.
    pub opts: RepairOptions,
}

impl SearchEngine {
    /// Engine with the given options.
    pub fn new(opts: RepairOptions) -> SearchEngine {
        SearchEngine { opts }
    }
}

impl RepairEngine for SearchEngine {
    fn name(&self) -> &'static str {
        "search"
    }

    fn jobs(&self) -> usize {
        self.opts.jobs
    }

    fn repair(
        &self,
        hir: &Arc<Hir>,
        models: &[Model],
        targets: DomSet,
    ) -> Result<Option<RepairOutcome>, RepairError> {
        if targets.is_empty() {
            return Err(RepairError::NoTargets);
        }
        let mut opts = self.opts.clone();
        opts.tuple = opts
            .tuple
            .resolved(models.len())
            .map_err(RepairError::Tuple)?;
        search::repair_search(hir, models, targets, &opts)
    }

    /// Batch fan-out parallelizes at the coarsest level: the worker pool
    /// runs each request's *search* sequentially (`jobs = 1` inside),
    /// because request-level parallelism already saturates the workers
    /// and nested frontier batching would only add thread-scope
    /// overhead. Outcomes are identical either way.
    fn repair_batch(
        &self,
        hir: &Arc<Hir>,
        requests: &[RepairRequest],
    ) -> Vec<Result<Option<RepairOutcome>, RepairError>> {
        let inner = SearchEngine::new(RepairOptions {
            jobs: 1,
            ..self.opts.clone()
        });
        pooled_map(requests, self.opts.jobs, |_, r| {
            inner.repair(hir, &r.models, r.targets)
        })
    }

    /// Seeds the incremental search from a fork of `root` — no initial
    /// full check runs, which is the whole point of keeping a session's
    /// checker warm. With `incremental_oracle: false` the warm state is
    /// unusable (the scratch oracle re-checks every state from the
    /// models alone), so the call degrades to a cold
    /// [`SearchEngine::repair`] over `root.models()` — same outcome,
    /// cold-start price.
    fn repair_warm(
        &self,
        root: &DeltaChecker,
        targets: DomSet,
    ) -> Result<Option<RepairOutcome>, RepairError> {
        if targets.is_empty() {
            return Err(RepairError::NoTargets);
        }
        if !self.opts.incremental_oracle {
            return self.repair(root.hir_arc(), root.models(), targets);
        }
        let mut opts = self.opts.clone();
        opts.tuple = opts
            .tuple
            .resolved(root.models().len())
            .map_err(RepairError::Tuple)?;
        search::search_from_root(root.fork(), targets, &opts)
    }

    /// As [`SearchEngine::repair_batch`]: request-level fan-out with
    /// `jobs = 1` inside each warm search.
    fn repair_batch_warm(
        &self,
        roots: &[(DeltaChecker, DomSet)],
    ) -> Vec<Result<Option<RepairOutcome>, RepairError>> {
        let inner = SearchEngine::new(RepairOptions {
            jobs: 1,
            ..self.opts.clone()
        });
        pooled_map(roots, self.opts.jobs, |_, (root, targets)| {
            inner.repair_warm(root, *targets)
        })
    }
}

/// The SAT-based engine: bounded grounding to CNF with a sequential
/// cost counter, relaxed `k = 0, 1, 2, …` until satisfiable — the
/// Alloy/Kodkod/PMax-SAT realization the paper's Echo tool uses. Unlike
/// [`SearchEngine`] it is complete within its universe bounds
/// ([`RepairOptions::slack_objs`] fresh objects per class,
/// [`RepairOptions::fresh_strings`] fresh strings).
///
/// ```
/// use mmt_model::text::{parse_metamodel, parse_model};
/// use mmt_qvtr::parse_and_resolve;
/// use mmt_deps::{DomIdx, DomSet};
/// use mmt_enforce::{RepairEngine, SatEngine};
///
/// let cf = parse_metamodel("metamodel CF { class Feature { attr name: Str; } }").unwrap();
/// let fm = parse_metamodel(
///     "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }").unwrap();
/// let hir = std::sync::Arc::new(parse_and_resolve(r#"
/// transformation F(cf1 : CF, fm : FM) {
///   top relation Sel {
///     n : Str;
///     domain cf1 s : Feature { name = n };
///     domain fm  f : Feature { name = n, mandatory = true };
///     depend cf1 -> fm;
///   }
/// }"#, &[cf.clone(), fm.clone()]).unwrap());
/// let m_cf = parse_model(r#"model cf1 : CF { f = Feature { name = "engine" } }"#, &cf).unwrap();
/// let m_fm = parse_model(
///     r#"model fm : FM { f = Feature { name = "engine", mandatory = false } }"#, &fm).unwrap();
///
/// // Minimal repair towards FM: flip one `mandatory` bit.
/// let out = SatEngine::default()
///     .repair(&hir, &[m_cf, m_fm], DomSet::single(DomIdx(1)))
///     .unwrap()
///     .expect("repairable");
/// assert_eq!(out.cost, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SatEngine {
    /// Engine options.
    pub opts: RepairOptions,
}

impl SatEngine {
    /// Engine with the given options.
    pub fn new(opts: RepairOptions) -> SatEngine {
        SatEngine { opts }
    }
}

impl RepairEngine for SatEngine {
    fn name(&self) -> &'static str {
        "sat"
    }

    fn jobs(&self) -> usize {
        self.opts.jobs
    }

    fn repair(
        &self,
        hir: &Arc<Hir>,
        models: &[Model],
        targets: DomSet,
    ) -> Result<Option<RepairOutcome>, RepairError> {
        if targets.is_empty() {
            return Err(RepairError::NoTargets);
        }
        let tuple = self
            .opts
            .tuple
            .resolved(models.len())
            .map_err(RepairError::Tuple)?;
        let gopts = GroundOptions {
            scope: Scope {
                slack_objs: self.opts.slack_objs,
                fresh_strings: self.opts.fresh_strings,
            },
            cost: self.opts.cost,
            tuple,
            max_cost: self.opts.max_cost,
            ..GroundOptions::default()
        };
        let mut problem = GroundProblem::build(hir, models, targets, gopts)?;
        match problem.solve_min_cost() {
            None => Ok(None),
            Some((cost, repaired)) => {
                let mut deltas = Vec::with_capacity(models.len());
                for (o, n) in models.iter().zip(&repaired) {
                    deltas.push(Delta::between(o, n)?);
                }
                Ok(Some(RepairOutcome {
                    cost,
                    models: repaired,
                    deltas,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_check::Checker;
    use mmt_deps::DomIdx;
    use mmt_model::text::{parse_metamodel, parse_model};
    use mmt_model::Metamodel;
    use mmt_qvtr::parse_and_resolve;
    use std::sync::Arc;

    fn metamodels() -> (Arc<Metamodel>, Arc<Metamodel>) {
        let cf = parse_metamodel("metamodel CF { class Feature { attr name: Str; } }").unwrap();
        let fm = parse_metamodel(
            "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }",
        )
        .unwrap();
        (cf, fm)
    }

    /// The paper's full F = MF ∧ OF specification.
    const F_SRC: &str = r#"
transformation F(cf1 : CF, cf2 : CF, fm : FM) {
  top relation MF {
    n : Str;
    domain cf1 s1 : Feature { name = n };
    domain cf2 s2 : Feature { name = n };
    domain fm  f  : Feature { name = n, mandatory = true };
    depend cf1 cf2 -> fm;
    depend fm -> cf1 cf2;
  }
  top relation OF {
    m : Str;
    domain cf1 t1 : Feature { name = m };
    domain cf2 t2 : Feature { name = m };
    domain fm  g  : Feature { name = m };
    depend cf1 | cf2 -> fm;
  }
}
"#;

    fn cf_model(cf: &Arc<Metamodel>, name: &str, feats: &[&str]) -> Model {
        let mut body = String::new();
        for (i, f) in feats.iter().enumerate() {
            body.push_str(&format!("f{i} = Feature {{ name = \"{f}\" }}\n"));
        }
        parse_model(&format!("model {name} : CF {{ {body} }}"), cf).unwrap()
    }

    fn fm_model(fm: &Arc<Metamodel>, feats: &[(&str, bool)]) -> Model {
        let mut body = String::new();
        for (i, (f, m)) in feats.iter().enumerate() {
            body.push_str(&format!(
                "f{i} = Feature {{ name = \"{f}\", mandatory = {m} }}\n"
            ));
        }
        parse_model(&format!("model fm : FM {{ {body} }}"), fm).unwrap()
    }

    fn targets(idx: &[u8]) -> DomSet {
        DomSet::from_iter(idx.iter().map(|&i| DomIdx(i)))
    }

    fn engines() -> Vec<Box<dyn RepairEngine>> {
        vec![
            Box::new(SearchEngine::default()),
            Box::new(SatEngine::default()),
        ]
    }

    #[test]
    fn consistent_input_costs_zero_on_both_engines() {
        let (cf, fm) = metamodels();
        let hir = Arc::new(parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap());
        let models = [
            cf_model(&cf, "cf1", &["engine"]),
            cf_model(&cf, "cf2", &["engine"]),
            fm_model(&fm, &[("engine", true)]),
        ];
        for engine in engines() {
            let out = engine
                .repair(&hir, &models, targets(&[0, 1]))
                .unwrap()
                .expect("consistent");
            assert_eq!(out.cost, 0, "{}", engine.name());
            for d in &out.deltas {
                assert!(d.is_empty());
            }
        }
    }

    /// §3: a new mandatory feature in FM — the single-CF shape `→Fⁱ_CF`
    /// cannot restore consistency; the multi-target `→F_CFᵏ` can.
    #[test]
    fn single_target_fails_multi_target_succeeds() {
        let (cf, fm) = metamodels();
        let hir = Arc::new(parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap());
        let models = [
            cf_model(&cf, "cf1", &["engine"]),
            cf_model(&cf, "cf2", &["engine"]),
            fm_model(&fm, &[("engine", true), ("brakes", true)]),
        ];
        for engine in engines() {
            let single = engine.repair(&hir, &models, targets(&[0])).unwrap();
            assert!(single.is_none(), "{} single-target", engine.name());
            let multi = engine
                .repair(&hir, &models, targets(&[0, 1]))
                .unwrap()
                .expect("multi-target repairable");
            assert_eq!(multi.cost, 4, "{} multi-target", engine.name());
            let report = Checker::new(&hir, &multi.models).unwrap().check().unwrap();
            assert!(report.consistent(), "{}\n{report}", engine.name());
        }
    }

    /// §3: `→F_FM : CFᵏ → FM` — a feature selected everywhere becomes
    /// mandatory with a single attribute flip.
    #[test]
    fn repair_towards_fm_is_minimal() {
        let (cf, fm) = metamodels();
        let hir = Arc::new(parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap());
        let models = [
            cf_model(&cf, "cf1", &["engine", "gps"]),
            cf_model(&cf, "cf2", &["engine", "gps"]),
            fm_model(&fm, &[("engine", true), ("gps", false)]),
        ];
        for engine in engines() {
            let out = engine
                .repair(&hir, &models, targets(&[2]))
                .unwrap()
                .expect("repairable");
            assert_eq!(out.cost, 1, "{}", engine.name());
            let report = Checker::new(&hir, &out.models).unwrap().check().unwrap();
            assert!(report.consistent(), "{}", engine.name());
        }
    }

    /// §1: renaming a feature in one configuration; the shape
    /// `→Fⁱ_{FM×CFᵏ⁻¹}` propagates the rename to the other artifacts.
    #[test]
    fn rename_propagates_to_remaining_models() {
        let (cf, fm) = metamodels();
        let hir = Arc::new(parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap());
        // cf1 renamed engine → motor; fm and cf2 still say engine.
        let models = [
            cf_model(&cf, "cf1", &["motor"]),
            cf_model(&cf, "cf2", &["engine"]),
            fm_model(&fm, &[("engine", true)]),
        ];
        for engine in engines() {
            let out = engine
                .repair(&hir, &models, targets(&[1, 2]))
                .unwrap()
                .expect("repairable");
            // Minimal: rename in cf2 and in fm = 2 attribute changes.
            assert_eq!(out.cost, 2, "{}", engine.name());
            let report = Checker::new(&hir, &out.models).unwrap().check().unwrap();
            assert!(report.consistent(), "{}", engine.name());
            // The rename really happened (fm now has `motor`).
            let fm_new = &out.models[2];
            let has_motor = fm_new
                .objects()
                .any(|(id, _)| fm_new.attr_named(id, "name") == Ok(mmt_model::Value::str("motor")));
            assert!(has_motor, "{}", engine.name());
        }
    }

    /// The two engines agree on minimal distances (differential test over
    /// a batch of §1/§3 scenarios).
    #[test]
    fn engines_agree_on_minimal_cost() {
        let (cf, fm) = metamodels();
        let hir = Arc::new(parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap());
        let scenarios: Vec<([Model; 3], DomSet)> = vec![
            (
                [
                    cf_model(&cf, "cf1", &["a"]),
                    cf_model(&cf, "cf2", &["a", "b"]),
                    fm_model(&fm, &[("a", true), ("b", false)]),
                ],
                targets(&[0, 1]),
            ),
            (
                [
                    cf_model(&cf, "cf1", &["a", "b"]),
                    cf_model(&cf, "cf2", &["a", "b"]),
                    fm_model(&fm, &[("a", true)]),
                ],
                targets(&[2]),
            ),
            (
                [
                    cf_model(&cf, "cf1", &[]),
                    cf_model(&cf, "cf2", &[]),
                    fm_model(&fm, &[("a", true)]),
                ],
                targets(&[0, 1]),
            ),
        ];
        let search = SearchEngine::default();
        let sat = SatEngine::default();
        for (i, (models, tg)) in scenarios.iter().enumerate() {
            let a = search.repair(&hir, models, *tg).unwrap();
            let b = sat.repair(&hir, models, *tg).unwrap();
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.cost, y.cost, "scenario {i}");
                    for m in [&x.models, &y.models] {
                        assert!(Checker::new(&hir, m).unwrap().consistent().unwrap());
                    }
                }
                (None, None) => {}
                _ => panic!(
                    "scenario {i}: engines disagree on repairability: {:?} vs {:?}",
                    a.as_ref().map(|x| x.cost),
                    b.as_ref().map(|x| x.cost)
                ),
            }
        }
    }

    #[test]
    fn empty_target_set_rejected() {
        let (cf, fm) = metamodels();
        let hir = Arc::new(parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap());
        let models = [
            cf_model(&cf, "cf1", &[]),
            cf_model(&cf, "cf2", &[]),
            fm_model(&fm, &[]),
        ];
        for engine in engines() {
            assert!(matches!(
                engine.repair(&hir, &models, DomSet::EMPTY),
                Err(RepairError::NoTargets)
            ));
        }
    }

    /// ISSUE 3 bugfix regression: a weight × op-price product that
    /// overflows `u64` must surface as [`RepairError::CostOverflow`].
    /// The historical wrapping multiply priced `set_attr(4) ×
    /// (u64::MAX/4 + 1)` at **zero**, so the search happily edited the
    /// "infinitely expensive" model for free.
    #[test]
    fn weighted_cost_overflow_is_an_error_not_a_wrap() {
        let (cf, fm) = metamodels();
        let src = r#"
transformation G(cf1 : CF, fm : FM) {
  top relation Sel {
    n : Str;
    domain cf1 s : Feature { name = n };
    domain fm  f : Feature { name = n };
    depend cf1 -> fm;
    depend fm -> cf1;
  }
}
"#;
        let hir = Arc::new(parse_and_resolve(src, &[cf.clone(), fm.clone()]).unwrap());
        let models = [
            cf_model(&cf, "cf1", &["engine"]),
            fm_model(&fm, &[("radio", false)]),
        ];
        for incremental in [true, false] {
            let engine = SearchEngine::new(RepairOptions {
                cost: mmt_dist::CostModel {
                    set_attr: 4,
                    ..Default::default()
                },
                tuple: TupleCost::weighted(vec![1, u64::MAX / 4 + 1]),
                max_cost: 30,
                incremental_oracle: incremental,
                ..RepairOptions::default()
            });
            let err = engine
                .repair(&hir, &models, targets(&[0, 1]))
                .expect_err("overflowing weights are a configuration error");
            assert!(
                matches!(err, RepairError::CostOverflow),
                "incremental={incremental}: unexpected error {err}"
            );
        }
    }

    /// Weighted tuple distance (§3 future work, implemented): making FM
    /// expensive steers the repair into the configurations.
    #[test]
    fn weighted_distance_steers_repair() {
        let (cf, fm) = metamodels();
        let src = r#"
transformation G(cf1 : CF, fm : FM) {
  top relation Sel {
    n : Str;
    domain cf1 s : Feature { name = n };
    domain fm  f : Feature { name = n };
    depend cf1 -> fm;
    depend fm -> cf1;
  }
}
"#;
        let hir = Arc::new(parse_and_resolve(src, &[cf.clone(), fm.clone()]).unwrap());
        let models = [
            cf_model(&cf, "cf1", &["engine"]),
            fm_model(&fm, &[("radio", false)]),
        ];
        let opts = RepairOptions {
            tuple: TupleCost::weighted(vec![1, 100]),
            max_cost: 30,
            ..RepairOptions::default()
        };
        for engine in [
            Box::new(SearchEngine::new(opts.clone())) as Box<dyn RepairEngine>,
            Box::new(SatEngine::new(opts.clone())),
        ] {
            let out = engine
                .repair(&hir, &models, targets(&[0, 1]))
                .unwrap()
                .expect("repairable");
            assert!(
                models[1].graph_eq(&out.models[1]),
                "{}: fm should be untouched",
                engine.name()
            );
        }
    }
}
