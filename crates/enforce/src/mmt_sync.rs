//! Sync/thread-primitive shim for the enforcement layer's fan-out.
//!
//! `pooled_map` is the single funnel through which every parallel workspace
//! operation runs (atomic work-stealing cursor + per-slot mutexes + scoped
//! threads).  Production builds re-export `std` unchanged; under the
//! `model-check` feature the same names resolve to `loomlite`'s instrumented
//! primitives so slot-write and cursor interleavings can be explored
//! exhaustively.  Off-model the loomlite types delegate to `std`, so the
//! feature is behaviour-preserving for normal tests.

#[cfg(feature = "model-check")]
pub use loomlite::sync::atomic;
#[cfg(feature = "model-check")]
pub use loomlite::sync::{Mutex, MutexGuard};
#[cfg(feature = "model-check")]
pub use loomlite::thread;
#[cfg(not(feature = "model-check"))]
pub use std::sync::atomic;
#[cfg(not(feature = "model-check"))]
pub use std::sync::{Mutex, MutexGuard};
#[cfg(not(feature = "model-check"))]
pub use std::thread;
