//! Search-based least-change repair.
//!
//! Implements §3's enforcement technique directly: uniform-cost search
//! over edit sequences applied to the target models, using the concrete
//! checking engine as the consistency oracle. States are explored in
//! order of increasing total (weighted) distance from the originals, so
//! the first consistent state found is a least-change repair *within the
//! generated candidate space*.
//!
//! Candidate edits are *repair-guided*: they are derived from the
//! counterexample bindings of failing directional checks — create or
//! adapt a witness on the target side, or destroy the universal match on
//! a source side — rather than enumerating every conceivable edit. This
//! keeps the branching factor proportional to the number of violations.
//! The SAT engine ([`crate::SatEngine`]) is the complete reference.
//!
//! ## The incremental oracle
//!
//! With [`RepairOptions::incremental_oracle`] (the default), every
//! search state carries a [`mmt_check::DeltaChecker`] — its parent's
//! checker state plus the one edit that produced it — so the per-state
//! consistency oracle costs O(edit) instead of re-running every
//! directional check against the whole tuple. Two further consequences
//! of the incremental design:
//!
//! * **lazy materialization** — a pushed-but-unpopped state is just
//!   `(parent, edit, cost, fingerprint)`; models are only cloned when a
//!   state is actually popped for expansion;
//! * **incremental fingerprints** — the duplicate-state filter uses a
//!   commutative (per-object sum) hash, so a candidate's fingerprint is
//!   computed from its parent's in O(touched objects) — one model scan
//!   for `DelObj`, whose scrub touches every incoming link — without
//!   applying the edit.
//!
//! The legacy from-scratch oracle is kept behind
//! `incremental_oracle: false` for ablation benchmarks
//! (`enforce_search_incremental`) and differential testing.

use crate::{RepairError, RepairOptions, RepairOutcome};
use mmt_check::{Binding, CheckOptions, DeltaChecker, DeltaError, EvalCtx, ModelIndex, Slot};
use mmt_deps::{Dep, DomIdx, DomSet};
use mmt_dist::{Delta, EditOp};
use mmt_model::{AttrType, Model, ObjId, Object, Sym, Value};
use mmt_qvtr::{Atom, Constraint, Hir, HirExpr, HirRelation, VarTy};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{Hash, Hasher};

/// One candidate edit on a specific model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Candidate {
    model: DomIdx,
    op: EditOp,
}

/// Uniform-cost search for a least-change repair. Dispatches on
/// [`RepairOptions::incremental_oracle`].
pub fn repair_search(
    hir: &Hir,
    originals: &[Model],
    targets: DomSet,
    opts: &RepairOptions,
) -> Result<Option<RepairOutcome>, RepairError> {
    if opts.incremental_oracle {
        repair_search_incremental(hir, originals, targets, opts)
    } else {
        repair_search_scratch(hir, originals, targets, opts)
    }
}

fn delta_repair_err(e: DeltaError) -> RepairError {
    match e {
        DeltaError::Check(e) => RepairError::Check(e),
        DeltaError::Eval(e) => RepairError::Eval(e),
        DeltaError::Model(e) => RepairError::Model(e),
    }
}

/// A not-yet-materialized search state: its parent in the node arena,
/// the one edit that distinguishes it, and the incrementally computed
/// duplicate-filter fingerprint.
struct PendingState {
    parent: Option<usize>,
    cand: Option<Candidate>,
    fp: u64,
}

/// Incremental-oracle search: states carry their parent's
/// [`DeltaChecker`] plus one applied edit.
fn repair_search_incremental(
    hir: &Hir,
    originals: &[Model],
    targets: DomSet,
    opts: &RepairOptions,
) -> Result<Option<RepairOutcome>, RepairError> {
    let value_pool = collect_value_pool(originals, hir, opts.fresh_strings);
    let check_opts = CheckOptions {
        memoize: true,
        max_violations: opts.violations_per_check,
    };
    let mut root_checker =
        Some(DeltaChecker::with_options(hir, originals, check_opts).map_err(delta_repair_err)?);
    let root_fp = fingerprint(originals, targets);
    // Materialized (popped) states, kept alive as clone sources.
    let mut nodes: Vec<DeltaChecker<'_>> = Vec::new();
    let mut pending: Vec<PendingState> = vec![PendingState {
        parent: None,
        cand: None,
        fp: root_fp,
    }];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    heap.push(Reverse((0, 0)));
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(root_fp);
    let mut expanded: u64 = 0;
    while let Some(Reverse((cost, idx))) = heap.pop() {
        let fp = pending[idx].fp;
        // Materialize: clone the parent's checker state, apply the edit.
        let mut checker = match pending[idx].parent {
            None => root_checker.take().expect("root is popped exactly once"),
            Some(p) => nodes[p].clone(),
        };
        if let Some(cand) = &pending[idx].cand {
            match checker.apply(cand.model, &cand.op) {
                Ok(()) => {}
                Err(DeltaError::Model(_)) => continue, // stale candidate
                Err(e) => return Err(delta_repair_err(e)),
            }
        }
        expanded += 1;
        if expanded > opts.max_states {
            return Err(RepairError::SearchBudgetExhausted {
                states: opts.max_states,
            });
        }
        // Oracle: the cached (incrementally maintained) violations.
        let mut violations: Vec<Violation> = Vec::new();
        checker.for_each_violation(opts.violations_per_check, |rel, dep, binding| {
            violations.push(Violation {
                rel,
                dep,
                binding: binding.clone(),
            });
        });
        // Structural unrepairability: a violated check none of whose
        // participating models is editable can never be fixed by this
        // shape — the paper's "not all update directions are able to
        // restore consistency".
        for v in &violations {
            if participating_models(hir.relation(v.rel), v.dep)
                .intersect(targets)
                .is_empty()
            {
                return Ok(None);
            }
        }
        if violations.is_empty() {
            let models = checker.models().to_vec();
            let mut deltas = Vec::with_capacity(models.len());
            for (o, n) in originals.iter().zip(&models) {
                deltas.push(Delta::between(o, n)?);
            }
            return Ok(Some(RepairOutcome {
                cost,
                models,
                deltas,
            }));
        }
        if cost >= opts.max_cost {
            continue;
        }
        // Generate repair-guided candidates from every violation.
        let mut candidates: Vec<Candidate> = Vec::new();
        for v in &violations {
            derive_candidates(
                hir,
                checker.models(),
                targets,
                v,
                &value_pool,
                &mut candidates,
            );
        }
        let mut dedup: HashSet<Candidate> = HashSet::with_capacity(candidates.len());
        nodes.push(checker);
        let node_idx = nodes.len() - 1;
        let models = nodes[node_idx].models();
        for cand in candidates {
            if !dedup.insert(cand) {
                continue;
            }
            let step = op_cost(&cand.op, opts) * opts.tuple.weight(cand.model.index());
            if cost + step > opts.max_cost {
                continue;
            }
            // O(touched) child fingerprint — no clone, no edit replay.
            let Some(child_fp) = fingerprint_apply(models, fp, &cand) else {
                continue; // stale candidate
            };
            if seen.insert(child_fp) {
                pending.push(PendingState {
                    parent: Some(node_idx),
                    cand: Some(cand),
                    fp: child_fp,
                });
                heap.push(Reverse((cost + step, pending.len() - 1)));
            }
        }
    }
    Ok(None)
}

/// From-scratch-oracle search (the PR 1 baseline, kept for ablation and
/// differential testing): every state stores a full model tuple and
/// re-checks every directional check.
fn repair_search_scratch(
    hir: &Hir,
    originals: &[Model],
    targets: DomSet,
    opts: &RepairOptions,
) -> Result<Option<RepairOutcome>, RepairError> {
    let value_pool = collect_value_pool(originals, hir, opts.fresh_strings);
    // Model is not Ord, so the heap carries indices into a state arena.
    let mut states: Vec<Vec<Model>> = vec![originals.to_vec()];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut seen: HashSet<u64> = HashSet::new();
    heap.push(Reverse((0, 0)));
    seen.insert(fingerprint(originals, targets));
    let mut expanded: u64 = 0;
    while let Some(Reverse((cost, state_idx))) = heap.pop() {
        let models = states[state_idx].clone();
        expanded += 1;
        if expanded > opts.max_states {
            return Err(RepairError::SearchBudgetExhausted {
                states: opts.max_states,
            });
        }
        // Oracle: collect violations (with Slot-level bindings).
        let violations = collect_violations(hir, &models, opts)?;
        for v in &violations {
            if participating_models(hir.relation(v.rel), v.dep)
                .intersect(targets)
                .is_empty()
            {
                return Ok(None);
            }
        }
        if violations.is_empty() {
            let mut deltas = Vec::with_capacity(models.len());
            for (o, n) in originals.iter().zip(&models) {
                deltas.push(Delta::between(o, n)?);
            }
            return Ok(Some(RepairOutcome {
                cost,
                models,
                deltas,
            }));
        }
        if cost >= opts.max_cost {
            continue;
        }
        // Generate repair-guided candidates from every violation.
        let mut candidates: Vec<Candidate> = Vec::new();
        for v in &violations {
            derive_candidates(hir, &models, targets, v, &value_pool, &mut candidates);
        }
        let mut dedup: HashSet<Candidate> = HashSet::with_capacity(candidates.len());
        for cand in candidates {
            if !dedup.insert(cand) {
                continue;
            }
            let step = op_cost(&cand.op, opts) * opts.tuple.weight(cand.model.index());
            if cost + step > opts.max_cost {
                continue;
            }
            let mut next = models.clone();
            if apply_candidate(&mut next[cand.model.index()], &cand.op).is_err() {
                continue; // stale candidate (object vanished, etc.)
            }
            let fp = fingerprint(&next, targets);
            if seen.insert(fp) {
                states.push(next);
                heap.push(Reverse((cost + step, states.len() - 1)));
            }
        }
    }
    Ok(None)
}

fn op_cost(op: &EditOp, opts: &RepairOptions) -> u64 {
    opts.cost.of(op)
}

fn apply_candidate(m: &mut Model, op: &EditOp) -> Result<(), mmt_model::ModelError> {
    match *op {
        EditOp::AddObj { class, .. } => {
            m.add(class)?;
            Ok(())
        }
        EditOp::DelObj { id, .. } => m.delete(id),
        EditOp::SetAttr {
            id, attr, value, ..
        } => m.set_attr(id, attr, value),
        EditOp::AddLink { src, r, dst } => m.add_link(src, r, dst).map(|_| ()),
        EditOp::DelLink { src, r, dst } => m.remove_link(src, r, dst).map(|_| ()),
    }
}

/// A failing directional check with one counterexample binding.
struct Violation {
    rel: mmt_qvtr::RelId,
    dep: Dep,
    binding: Binding,
}

fn collect_violations(
    hir: &Hir,
    models: &[Model],
    opts: &RepairOptions,
) -> Result<Vec<Violation>, RepairError> {
    let indexes: Vec<ModelIndex> = models.iter().map(ModelIndex::build).collect();
    let ctx = EvalCtx::new(hir, models, &indexes, true);
    let mut out = Vec::new();
    for (rid, rel) in hir.top_relations() {
        for &dep in rel.deps.deps() {
            let mut captured: Vec<Binding> = Vec::new();
            let max = opts.violations_per_check;
            ctx.check_dep(rid, dep, &mut |_, b| {
                captured.push(b.clone());
                captured.len() < max
            })?;
            for binding in captured {
                out.push(Violation {
                    rel: rid,
                    dep,
                    binding,
                });
            }
        }
    }
    Ok(out)
}

/// The active value pool used for attribute-change candidates.
struct ValuePool {
    strings: Vec<Value>,
    ints: Vec<Value>,
}

fn collect_value_pool(models: &[Model], hir: &Hir, fresh_strings: usize) -> ValuePool {
    let mut strings = Vec::new();
    let mut ints = Vec::new();
    for m in models {
        let meta = m.metamodel();
        for (_, obj) in m.objects() {
            for (slot, &attr) in meta.class(obj.class).all_attrs.iter().enumerate() {
                let v = obj.attrs[slot];
                match meta.attr(attr).ty {
                    AttrType::Str if !strings.contains(&v) => strings.push(v),
                    AttrType::Int if !ints.contains(&v) => ints.push(v),
                    _ => {}
                }
            }
        }
    }
    for rel in &hir.relations {
        for d in &rel.domains {
            for c in &d.constraints {
                if let Constraint::AttrEq {
                    rhs: Atom::Lit(v), ..
                } = c
                {
                    match v.ty() {
                        AttrType::Str if !strings.contains(v) => strings.push(*v),
                        AttrType::Int if !ints.contains(v) => ints.push(*v),
                        _ => {}
                    }
                }
            }
        }
    }
    for i in 0..fresh_strings {
        let v = Value::Str(Sym::new(&format!("$new{i}")));
        if !strings.contains(&v) {
            strings.push(v);
        }
    }
    ValuePool { strings, ints }
}

impl ValuePool {
    fn of(&self, ty: AttrType) -> Vec<Value> {
        match ty {
            AttrType::Str => self.strings.clone(),
            AttrType::Int => self.ints.clone(),
            AttrType::Bool => vec![Value::Bool(false), Value::Bool(true)],
        }
    }
}

/// Derives single-op candidates from one violation: witness creation on
/// the target side, match destruction on mutable source sides.
fn derive_candidates(
    hir: &Hir,
    models: &[Model],
    targets: DomSet,
    v: &Violation,
    pool: &ValuePool,
    out: &mut Vec<Candidate>,
) {
    let rel = hir.relation(v.rel);
    // --- Witness creation in the dependency's target model. ---
    let t = v.dep.target;
    if targets.contains(t) {
        if let Some(dom) = rel.domain_for_model(t) {
            witness_candidates(rel, dom, &v.binding, models, t, pool, out);
        }
        // `where` adaptation: x.attr = value patterns.
        if let Some(wher) = &rel.where_ {
            where_candidates(rel, wher, &v.binding, models, t, pool, out);
        }
    }
    // --- Match destruction in mutable source models. ---
    for s in v.dep.sources.iter() {
        if !targets.contains(s) {
            continue;
        }
        let Some(dom) = rel.domain_for_model(s) else {
            continue;
        };
        let m = &models[s.index()];
        for c in &dom.constraints {
            match *c {
                Constraint::Obj { var, .. } => {
                    if let Some(Slot::Obj(o)) = v.binding[var.index()] {
                        if m.contains(o) {
                            if let Ok(class) = m.class_of(o) {
                                out.push(Candidate {
                                    model: s,
                                    op: EditOp::DelObj { id: o, class },
                                });
                            }
                        }
                    }
                }
                Constraint::AttrEq { obj, attr, .. } => {
                    if let Some(Slot::Obj(o)) = v.binding[obj.index()] {
                        if let Ok(cur) = m.attr(o, attr) {
                            for val in pool.of(cur.ty()) {
                                if val != cur {
                                    out.push(Candidate {
                                        model: s,
                                        op: EditOp::SetAttr {
                                            id: o,
                                            attr,
                                            value: val,
                                            old: cur,
                                        },
                                    });
                                }
                            }
                        }
                    }
                }
                Constraint::RefContains { obj, r, dst } => {
                    if let (Some(Slot::Obj(so)), Some(Slot::Obj(dobj))) =
                        (v.binding[obj.index()], v.binding[dst.index()])
                    {
                        out.push(Candidate {
                            model: s,
                            op: EditOp::DelLink {
                                src: so,
                                r,
                                dst: dobj,
                            },
                        });
                    }
                }
            }
        }
    }
}

/// Candidates that build (or adapt towards) a witness for the target
/// pattern under the violated binding.
fn witness_candidates(
    rel: &HirRelation,
    dom: &mmt_qvtr::HirDomain,
    binding: &Binding,
    models: &[Model],
    t: DomIdx,
    pool: &ValuePool,
    out: &mut Vec<Candidate>,
) {
    let m = &models[t.index()];
    let meta = m.metamodel();
    for c in &dom.constraints {
        match *c {
            Constraint::Obj { class, .. } => {
                // A fresh instance of the pattern class.
                out.push(Candidate {
                    model: t,
                    op: EditOp::AddObj {
                        id: ObjId(m.id_bound() as u32),
                        class,
                    },
                });
            }
            Constraint::AttrEq { obj, attr, rhs } => {
                // Set the pattern attribute of existing candidates to the
                // value demanded by the binding (or the literal).
                let desired = match rhs {
                    Atom::Lit(v) => Some(v),
                    Atom::Var(pv) => match binding[pv.index()] {
                        Some(Slot::Val(v)) => Some(v),
                        _ => None,
                    },
                };
                let class = match rel.vars[obj.index()].ty {
                    VarTy::Obj { class, .. } => class,
                    VarTy::Prim(_) => continue,
                };
                match desired {
                    Some(val) => {
                        for o in m.objects_of(class) {
                            if m.attr(o, attr) != Ok(val) {
                                let old = m.attr(o, attr).unwrap_or(val);
                                out.push(Candidate {
                                    model: t,
                                    op: EditOp::SetAttr {
                                        id: o,
                                        attr,
                                        value: val,
                                        old,
                                    },
                                });
                            }
                        }
                    }
                    None => {
                        // Existentially free value: offer the pool.
                        let ty = meta.attr(attr).ty;
                        for o in m.objects_of(class) {
                            let cur = m.attr(o, attr).ok();
                            for val in pool.of(ty) {
                                if Some(val) != cur {
                                    out.push(Candidate {
                                        model: t,
                                        op: EditOp::SetAttr {
                                            id: o,
                                            attr,
                                            value: val,
                                            old: cur.unwrap_or(val),
                                        },
                                    });
                                }
                            }
                        }
                    }
                }
            }
            Constraint::RefContains { obj, r, dst } => {
                // Offer links between class-compatible pairs.
                let (sc, dc) = match (rel.vars[obj.index()].ty, rel.vars[dst.index()].ty) {
                    (VarTy::Obj { class: sc, .. }, VarTy::Obj { class: dc, .. }) => (sc, dc),
                    _ => continue,
                };
                let sources: Vec<ObjId> = m.objects_of(sc).collect();
                let dests: Vec<ObjId> = m.objects_of(dc).collect();
                for &so in &sources {
                    for &dobj in &dests {
                        if !m.has_link(so, r, dobj) {
                            out.push(Candidate {
                                model: t,
                                op: EditOp::AddLink {
                                    src: so,
                                    r,
                                    dst: dobj,
                                },
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Candidates from `where` equality constraints on target-side objects,
/// e.g. `f.mandatory = true`.
fn where_candidates(
    rel: &HirRelation,
    e: &HirExpr,
    binding: &Binding,
    models: &[Model],
    t: DomIdx,
    pool: &ValuePool,
    out: &mut Vec<Candidate>,
) {
    match e {
        HirExpr::Cmp(mmt_qvtr::CmpOp::Eq, a, b) => {
            let (nav, other) = match (&**a, &**b) {
                (HirExpr::Nav(v, attr), o) | (o, HirExpr::Nav(v, attr)) => ((*v, *attr), o),
                _ => return,
            };
            let (v, attr) = nav;
            let (model, class) = match rel.vars[v.index()].ty {
                VarTy::Obj { model, class } => (model, class),
                VarTy::Prim(_) => return,
            };
            if model != t {
                return;
            }
            let desired: Vec<Value> = match other {
                HirExpr::Lit(val) => vec![*val],
                HirExpr::Var(pv) => match binding[pv.index()] {
                    Some(Slot::Val(val)) => vec![val],
                    _ => pool.of(models[t.index()].metamodel().attr(attr).ty),
                },
                _ => return,
            };
            let m = &models[t.index()];
            for o in m.objects_of(class) {
                let cur = m.attr(o, attr).ok();
                for &val in &desired {
                    if Some(val) != cur {
                        out.push(Candidate {
                            model: t,
                            op: EditOp::SetAttr {
                                id: o,
                                attr,
                                value: val,
                                old: cur.unwrap_or(val),
                            },
                        });
                    }
                }
            }
        }
        HirExpr::And(a, b) | HirExpr::Or(a, b) | HirExpr::Implies(a, b) => {
            where_candidates(rel, a, binding, models, t, pool, out);
            where_candidates(rel, b, binding, models, t, pool, out);
        }
        HirExpr::Not(a) => where_candidates(rel, a, binding, models, t, pool, out),
        _ => {}
    }
}

/// The models a directional check can read: dependency sources, the
/// target, and the models of variables free in `when`/`where`.
fn participating_models(rel: &HirRelation, dep: Dep) -> DomSet {
    let mut set = dep.sources.with(dep.target);
    let mut fv: Vec<mmt_qvtr::VarId> = Vec::new();
    if let Some(w) = &rel.when {
        w.free_vars(&mut fv);
    }
    if let Some(w) = &rel.where_ {
        w.free_vars(&mut fv);
    }
    for v in fv {
        if let VarTy::Obj { model, .. } = rel.vars[v.index()].ty {
            set = set.with(model);
        }
    }
    set
}

/// Hash of one object's full state, tagged with its model position.
fn obj_fp(t: DomIdx, id: ObjId, obj: &Object) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.0.hash(&mut h);
    id.hash(&mut h);
    obj.class.hash(&mut h);
    obj.attrs.hash(&mut h);
    obj.refs.hash(&mut h);
    h.finish()
}

/// Order-insensitive structural fingerprint of the mutable models: the
/// wrapping sum of per-object hashes. Commutativity is what makes
/// [`fingerprint_apply`] possible — an edit's effect on the fingerprint
/// is the difference of the touched objects' hashes.
fn fingerprint(models: &[Model], targets: DomSet) -> u64 {
    let mut fp: u64 = 0x9e37_79b9_7f4a_7c15;
    for t in targets.iter() {
        let m = &models[t.index()];
        for (id, obj) in m.objects() {
            fp = fp.wrapping_add(obj_fp(t, id, obj));
        }
    }
    fp
}

/// The fingerprint of the state reached by applying `cand` to `models`
/// (which fingerprint to `fp`), computed without cloning or mutating
/// anything — O(touched objects) for every op except `DelObj`, whose
/// arm scans the model once for incoming links (deletion scrubs them). Returns `None` when the candidate is
/// stale (its object vanished, the link already exists, …) — exactly
/// the cases where [`apply_candidate`] would fail or no-op.
fn fingerprint_apply(models: &[Model], fp: u64, cand: &Candidate) -> Option<u64> {
    let t = cand.model;
    let m = &models[t.index()];
    let meta = m.metamodel();
    match cand.op {
        EditOp::AddObj { id, class } => {
            if m.contains(id) || meta.class(class).is_abstract {
                return None;
            }
            let fresh = Object {
                class,
                attrs: meta.default_attrs(class),
                refs: vec![Vec::new(); meta.class(class).all_refs.len()].into_boxed_slice(),
            };
            Some(fp.wrapping_add(obj_fp(t, id, &fresh)))
        }
        EditOp::DelObj { id, .. } => {
            let obj = m.get(id)?;
            let mut fp = fp.wrapping_sub(obj_fp(t, id, obj));
            // Deletion scrubs incoming links: survivors pointing at `id`
            // change too.
            for (oid, o) in m.objects() {
                if oid == id || !o.refs.iter().any(|s| s.contains(&id)) {
                    continue;
                }
                let mut o2 = o.clone();
                for s in o2.refs.iter_mut() {
                    s.retain(|&d| d != id);
                }
                fp = fp
                    .wrapping_sub(obj_fp(t, oid, o))
                    .wrapping_add(obj_fp(t, oid, &o2));
            }
            Some(fp)
        }
        EditOp::SetAttr {
            id, attr, value, ..
        } => {
            let obj = m.get(id)?;
            let slot = meta.attr_slot(obj.class, attr)?;
            if obj.attrs[slot] == value {
                return None; // no-op
            }
            let mut o2 = obj.clone();
            o2.attrs[slot] = value;
            Some(
                fp.wrapping_sub(obj_fp(t, id, obj))
                    .wrapping_add(obj_fp(t, id, &o2)),
            )
        }
        EditOp::AddLink { src, r, dst } => {
            let obj = m.get(src)?;
            if !m.contains(dst) {
                return None;
            }
            let slot = meta.ref_slot(obj.class, r)?;
            let pos = match obj.refs[slot].binary_search(&dst) {
                Ok(_) => return None, // already linked
                Err(pos) => pos,
            };
            let mut o2 = obj.clone();
            o2.refs[slot].insert(pos, dst);
            Some(
                fp.wrapping_sub(obj_fp(t, src, obj))
                    .wrapping_add(obj_fp(t, src, &o2)),
            )
        }
        EditOp::DelLink { src, r, dst } => {
            let obj = m.get(src)?;
            let slot = meta.ref_slot(obj.class, r)?;
            let pos = obj.refs[slot].binary_search(&dst).ok()?;
            let mut o2 = obj.clone();
            o2.refs[slot].remove(pos);
            Some(
                fp.wrapping_sub(obj_fp(t, src, obj))
                    .wrapping_add(obj_fp(t, src, &o2)),
            )
        }
    }
}

/// Exposed for differential tests: the same fingerprint the search uses.
pub fn state_fingerprint(models: &[Model], targets: DomSet) -> u64 {
    fingerprint(models, targets)
}

#[cfg(test)]
mod fp_tests {
    use super::*;
    use mmt_model::text::{parse_metamodel, parse_model};
    use mmt_model::Sym;

    /// `fingerprint_apply` agrees with applying the edit and
    /// re-fingerprinting from scratch, for every op kind.
    #[test]
    fn incremental_fingerprint_matches_recompute() {
        let mm = parse_metamodel(
            "metamodel X { class Node { attr name: Str; ref next: Node [0..*]; } }",
        )
        .unwrap();
        let m = parse_model(
            r#"model m : X {
                a = Node { name = "a", next = [b] }
                b = Node { name = "b" }
                c = Node { name = "c", next = [a, b] }
            }"#,
            &mm,
        )
        .unwrap();
        let node = mm.class_named("Node").unwrap();
        let name = mm.attr_of(node, Sym::new("name")).unwrap();
        let next = mm.ref_of(node, Sym::new("next")).unwrap();
        let targets = DomSet::from_iter([DomIdx(0)]);
        let ops = [
            EditOp::AddObj {
                id: ObjId(3),
                class: node,
            },
            EditOp::DelObj {
                id: ObjId(1),
                class: node,
            },
            EditOp::SetAttr {
                id: ObjId(0),
                attr: name,
                value: Value::str("z"),
                old: Value::str("a"),
            },
            EditOp::AddLink {
                src: ObjId(1),
                r: next,
                dst: ObjId(2),
            },
            EditOp::DelLink {
                src: ObjId(2),
                r: next,
                dst: ObjId(0),
            },
        ];
        for op in ops {
            let models = [m.clone()];
            let fp = fingerprint(&models, targets);
            let cand = Candidate {
                model: DomIdx(0),
                op,
            };
            let predicted = fingerprint_apply(&models, fp, &cand).expect("op applies");
            let mut edited = m.clone();
            apply_candidate(&mut edited, &op).unwrap();
            let actual = fingerprint(&[edited], targets);
            assert_eq!(predicted, actual, "{op}");
        }
        // Stale candidates are detected without mutation.
        let models = [m.clone()];
        let fp = fingerprint(&models, targets);
        for stale in [
            EditOp::DelObj {
                id: ObjId(9),
                class: node,
            },
            EditOp::AddLink {
                src: ObjId(0),
                r: next,
                dst: ObjId(1), // already linked
            },
            EditOp::DelLink {
                src: ObjId(1),
                r: next,
                dst: ObjId(0), // not linked
            },
        ] {
            assert!(fingerprint_apply(
                &models,
                fp,
                &Candidate {
                    model: DomIdx(0),
                    op: stale
                }
            )
            .is_none());
        }
    }
}
