//! # mmt-dist — edits, diffs, and weighted graph-edit distances
//!
//! This crate is the metric space underneath the paper's §3 enforcement
//! semantics. QVT-R's `enforce` mode — and its multidirectional
//! generalization — is specified as *least change*: given an
//! inconsistent tuple of models and a repair shape selecting which
//! models may be rewritten, the engines must return consistent models
//! at **minimal distance** from the originals. "Distance" has to mean
//! something precise for that sentence to define anything; here it is a
//! **weighted graph-edit distance** over typed object graphs.
//!
//! ## The edit alphabet
//!
//! [`EditOp`] fixes the alphabet of atomic edits on an
//! [`mmt_model::Model`]:
//!
//! * `AddObj` / `DelObj` — create or destroy an object of a concrete
//!   class (deletion implicitly scrubs incoming links, mirroring
//!   [`mmt_model::Model::delete`]);
//! * `SetAttr` — overwrite one attribute slot (the op records the old
//!   value, so scripts are invertible and human-readable);
//! * `AddLink` / `DelLink` — insert or remove one edge in a reference
//!   slot.
//!
//! An edit *script* is a [`Delta`]. [`Delta::between`] computes a
//! canonical minimal script between two models over the same metamodel,
//! exploiting the id-stability contract of [`mmt_model::Model`] (ids
//! are never reused, deletions leave tombstones): objects are matched
//! **by id**, so the diff is a cheap slot-wise comparison rather than a
//! graph-isomorphism search. [`Delta::apply`] replays a script, and
//! `apply ∘ between` is a round-trip: `apply(between(a, b), a)` is
//! [`graph_eq`](mmt_model::Model::graph_eq) to `b`.
//!
//! ## Weighted distance, and why it is the §3 metric
//!
//! [`CostModel`] prices each op kind (`Default` is the uniform
//! all-ones model, i.e. plain graph-edit distance — what §3 calls
//! "some notion of distance between models" instantiated the way the
//! Echo tool does it). The distance from `a` to `b` is then
//! `Delta::between(a, b)` summed under the cost model
//! ([`Delta::cost`]). Two properties matter to the engines:
//!
//! 1. **Decomposability.** The cost of a script is the sum of its op
//!    costs, so uniform-cost search can explore candidate edits in
//!    increasing cumulative cost and stop at the first consistent
//!    state, and the SAT grounding can mirror every potential edit as
//!    one weighted cost literal under a sequential counter. Both
//!    engines consume *this* crate's prices, which is what makes their
//!    minima comparable in the differential tests.
//! 2. **No free structure.** A deleted object does not additionally pay
//!    for its vanishing links or attribute values, and a fresh object
//!    pays `add_obj` plus only the attributes that differ from the
//!    class defaults. [`Delta::between`] and the grounding encode the
//!    same convention, so "cost 4" means the same thing in both.
//!
//! ## `TupleCost`: the multidirectional weighting
//!
//! The paper's enforcement is over *tuples*: a shape like `→F_CFᵏ`
//! rewrites `k` configurations at once, and §3 ends by proposing that
//! users "prioritize the update of some models over others" — e.g.
//! prefer touching configurations to touching the feature model.
//! [`TupleCost`] realizes exactly that: per-model multipliers over the
//! tuple, with the total distance
//!
//! ```text
//! Δ(ā, b̄) = Σᵢ  wᵢ · cost(between(aᵢ, bᵢ))
//! ```
//!
//! [`TupleCost::uniform`] recovers the unweighted §3 semantics;
//! [`TupleCost::weighted`] (e.g. `weighted(vec![1, 100])`) makes the
//! second model two orders of magnitude more expensive, steering every
//! least-change repair away from it whenever the cheap models can
//! absorb the change. [`TupleCost::auto`] — the engines' default — is
//! uniform at whatever arity the tuple at hand has; explicit weightings
//! are arity-checked on entry ([`TupleCost::resolved`]), so a weight
//! vector built for the wrong tuple is an error, never a silently
//! mispriced repair.

use mmt_model::{AttrId, ClassId, Model, ModelError, ObjId, RefId, Value};
use std::fmt;

/// One atomic edit on a model.
///
/// Ids refer to the id space of the model the op applies to; the
/// id-stability contract of [`mmt_model::Model`] (tombstoned deletes,
/// never-reused ids) keeps them meaningful across edits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EditOp {
    /// Create an object of concrete `class` at `id`.
    AddObj {
        /// Id the object is created at.
        id: ObjId,
        /// Concrete class instantiated.
        class: ClassId,
    },
    /// Delete the object at `id` (incoming links are scrubbed).
    DelObj {
        /// Id of the deleted object.
        id: ObjId,
        /// Class it had (for display and inversion).
        class: ClassId,
    },
    /// Overwrite attribute `attr` of `id` with `value`.
    SetAttr {
        /// Object edited.
        id: ObjId,
        /// Attribute overwritten.
        attr: AttrId,
        /// New value.
        value: Value,
        /// Previous value (for display and inversion).
        old: Value,
    },
    /// Insert the link `src --r--> dst`.
    AddLink {
        /// Link source.
        src: ObjId,
        /// Reference the link belongs to.
        r: RefId,
        /// Link target.
        dst: ObjId,
    },
    /// Remove the link `src --r--> dst`.
    DelLink {
        /// Link source.
        src: ObjId,
        /// Reference the link belongs to.
        r: RefId,
        /// Link target.
        dst: ObjId,
    },
}

impl EditOp {
    /// The object whose slots this edit writes.
    ///
    /// For link edits that is the *source* object — link sets are stored
    /// on the source side, so `AddLink`/`DelLink` leave the target
    /// object's slots untouched. Incremental consumers (the
    /// `DeltaChecker` in `mmt-check`) use this as the seed of the edit's
    /// write-set.
    pub fn primary_obj(&self) -> ObjId {
        match *self {
            EditOp::AddObj { id, .. } | EditOp::DelObj { id, .. } | EditOp::SetAttr { id, .. } => {
                id
            }
            EditOp::AddLink { src, .. } | EditOp::DelLink { src, .. } => src,
        }
    }

    /// The class whose extent this edit grows or shrinks (`AddObj` /
    /// `DelObj` only).
    ///
    /// A check whose read-set contains a superclass of this class must be
    /// re-evaluated; attribute and link edits never change extents.
    pub fn touched_class(&self) -> Option<ClassId> {
        match *self {
            EditOp::AddObj { class, .. } | EditOp::DelObj { class, .. } => Some(class),
            _ => None,
        }
    }

    /// The attribute slot this edit overwrites (`SetAttr` only).
    pub fn touched_attr(&self) -> Option<AttrId> {
        match *self {
            EditOp::SetAttr { attr, .. } => Some(attr),
            _ => None,
        }
    }

    /// The reference this edit rewires (`AddLink` / `DelLink` only).
    ///
    /// Note that `DelObj` *also* rewires references — deletion scrubs
    /// every incoming link — but which references those are depends on
    /// the model state, not the op; consumers must consult the pre-edit
    /// model (see `DeltaChecker::apply` in `mmt-check`).
    pub fn touched_ref(&self) -> Option<RefId> {
        match *self {
            EditOp::AddLink { r, .. } | EditOp::DelLink { r, .. } => Some(r),
            _ => None,
        }
    }

    /// True when this edit can only *remove* structure (objects or
    /// links), never add any: `DelObj` and `DelLink`.
    ///
    /// Under the positive pattern language (templates read attributes,
    /// extents and links without negation) a purely-destructive edit can
    /// never create a new match or witness, which lets incremental
    /// checkers skip the "did a new witness appear?" probe.
    pub fn is_destructive_only(&self) -> bool {
        matches!(self, EditOp::DelObj { .. } | EditOp::DelLink { .. })
    }

    /// The edit that undoes this one: `AddObj ↔ DelObj`, `AddLink ↔
    /// DelLink`, and `SetAttr` with `value`/`old` swapped.
    ///
    /// Exact for every op except `DelObj` of an object carrying
    /// non-default attributes or links: deletion scrubs those for free,
    /// and a single `AddObj` cannot restore them. Callers that need
    /// exact undo of arbitrary deletions must *expand* the deletion
    /// first (explicit `DelLink`/`SetAttr`-to-default ops before the
    /// `DelObj`), which is what the session journal in `mmt-core` does —
    /// its entries invert exactly through [`Delta::inverse`].
    pub fn inverse(&self) -> EditOp {
        match *self {
            EditOp::AddObj { id, class } => EditOp::DelObj { id, class },
            EditOp::DelObj { id, class } => EditOp::AddObj { id, class },
            EditOp::SetAttr {
                id,
                attr,
                value,
                old,
            } => EditOp::SetAttr {
                id,
                attr,
                value: old,
                old: value,
            },
            EditOp::AddLink { src, r, dst } => EditOp::DelLink { src, r, dst },
            EditOp::DelLink { src, r, dst } => EditOp::AddLink { src, r, dst },
        }
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EditOp::AddObj { id, class } => write!(f, "+ {id} : class#{}", class.0),
            EditOp::DelObj { id, class } => write!(f, "- {id} : class#{}", class.0),
            EditOp::SetAttr {
                id,
                attr,
                value,
                old,
            } => write!(f, "{id}.attr#{} = {value} (was {old})", attr.0),
            EditOp::AddLink { src, r, dst } => write!(f, "+ {src} --ref#{}--> {dst}", r.0),
            EditOp::DelLink { src, r, dst } => write!(f, "- {src} --ref#{}--> {dst}", r.0),
        }
    }
}

/// Per-op-kind prices for the graph-edit distance.
///
/// The `Default` is the uniform all-ones model. Both enforcement
/// engines take their prices from here, which is what makes the search
/// engine's path costs and the SAT engine's cost literals comparable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// Price of creating an object.
    pub add_obj: u64,
    /// Price of deleting an object.
    pub del_obj: u64,
    /// Price of overwriting one attribute.
    pub set_attr: u64,
    /// Price of inserting one link.
    pub add_link: u64,
    /// Price of removing one link.
    pub del_link: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            add_obj: 1,
            del_obj: 1,
            set_attr: 1,
            add_link: 1,
            del_link: 1,
        }
    }
}

impl CostModel {
    /// The price of one edit.
    pub fn of(&self, op: &EditOp) -> u64 {
        match op {
            EditOp::AddObj { .. } => self.add_obj,
            EditOp::DelObj { .. } => self.del_obj,
            EditOp::SetAttr { .. } => self.set_attr,
            EditOp::AddLink { .. } => self.add_link,
            EditOp::DelLink { .. } => self.del_link,
        }
    }
}

/// Per-model weight multipliers over a model tuple (§3's proposed
/// "prioritize the update of some models over others").
///
/// The weighted tuple distance is `Σᵢ wᵢ · dᵢ` where `dᵢ` is the
/// single-model edit distance of the `i`-th component.
///
/// A weighting is either **auto** ([`TupleCost::auto`]) — uniform `wᵢ = 1`
/// at whatever arity the tuple at hand has — or **explicit**
/// ([`TupleCost::uniform`] / [`TupleCost::weighted`]) with a fixed arity.
/// Explicit weightings are arity-checked: the engines reject a mismatch
/// via [`TupleCost::resolved`] instead of silently padding with 1s, and
/// [`TupleCost::weight`] panics on an out-of-range index, so a weight
/// vector built for the wrong tuple can never silently misprice a repair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TupleCost {
    /// `None` = auto (uniform at any arity).
    weights: Option<Vec<u64>>,
}

/// An explicit [`TupleCost`] was applied to a tuple of a different arity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TupleArityError {
    /// The tuple's arity.
    pub expected: usize,
    /// The weighting's arity.
    pub got: usize,
}

impl fmt::Display for TupleArityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tuple cost has {} weights but the model tuple has arity {}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for TupleArityError {}

impl TupleCost {
    /// Uniform weights at whatever arity the model tuple at hand has —
    /// the default of the enforcement engines. Use this instead of the
    /// historical `uniform(0)` "resized per call" placeholder.
    pub fn auto() -> TupleCost {
        TupleCost { weights: None }
    }

    /// Uniform weights (`wᵢ = 1`) over an `n`-tuple: plain §3 least
    /// change, arity-checked against the tuple it is applied to.
    pub fn uniform(n: usize) -> TupleCost {
        TupleCost {
            weights: Some(vec![1; n]),
        }
    }

    /// Explicit per-model weights, in model-space order.
    pub fn weighted(weights: Vec<u64>) -> TupleCost {
        TupleCost {
            weights: Some(weights),
        }
    }

    /// True for the [`TupleCost::auto`] weighting.
    pub fn is_auto(&self) -> bool {
        self.weights.is_none()
    }

    /// The arity an explicit weighting was built for (`None` for auto).
    pub fn arity(&self) -> Option<usize> {
        self.weights.as_ref().map(Vec::len)
    }

    /// Resolves this weighting against a tuple of arity `n`: auto becomes
    /// `uniform(n)`; an explicit weighting must match `n` exactly.
    pub fn resolved(&self, n: usize) -> Result<TupleCost, TupleArityError> {
        match &self.weights {
            None => Ok(TupleCost::uniform(n)),
            Some(w) if w.len() == n => Ok(self.clone()),
            Some(w) => Err(TupleArityError {
                expected: n,
                got: w.len(),
            }),
        }
    }

    /// The weight multiplier of the model at `idx`.
    ///
    /// # Panics
    ///
    /// Panics when the weighting is explicit and `idx` is out of range —
    /// resolve the weighting against the tuple's arity first
    /// ([`TupleCost::resolved`]); the engines do this on entry.
    pub fn weight(&self, idx: usize) -> u64 {
        match &self.weights {
            None => 1,
            Some(w) => match w.get(idx) {
                Some(&x) => x,
                None => panic!(
                    "tuple cost of arity {} indexed at {idx}; resolve against the tuple first",
                    w.len()
                ),
            },
        }
    }

    /// The weighted total over per-model distances, in model-space
    /// order: `Σᵢ wᵢ · dᵢ`. Saturates at [`u64::MAX`] instead of
    /// wrapping — a silently wrapped total would make an enormous
    /// distance look small, inverting every least-change comparison
    /// built on it. (The repair engines go further and treat an
    /// overflowing step as an explicit error.)
    ///
    /// # Panics
    ///
    /// Panics when the weighting is explicit and shorter than
    /// `per_model` (see [`TupleCost::weight`]).
    pub fn total(&self, per_model: &[u64]) -> u64 {
        per_model.iter().enumerate().fold(0u64, |acc, (i, &d)| {
            acc.saturating_add(self.weight(i).saturating_mul(d))
        })
    }
}

/// An edit script between two models over the same metamodel.
///
/// Scripts from [`Delta::between`] are *canonical*: ops are grouped
/// del-link, del-obj, add-obj, set-attr, add-link (a safe replay
/// order) and sorted by id within each group.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Delta {
    ops: Vec<EditOp>,
}

impl Delta {
    /// The empty script.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Computes a minimal edit script turning `old` into `new`.
    ///
    /// Both models must share the same metamodel instance
    /// (`MetamodelMismatch` otherwise). Objects are matched by id —
    /// valid because model edits never reuse ids — so the script is
    /// minimal for the id-faithful edit semantics the engines use:
    ///
    /// * ids live in `old` but not `new` become `DelObj` (their links
    ///   ride along for free, as in [`mmt_model::Model::delete`]);
    /// * ids live in `new` but not `old` become `AddObj` plus `SetAttr`
    ///   for every attribute differing from the class default, plus
    ///   `AddLink` for their outgoing links;
    /// * ids live in both with the same class diff slot-wise; a class
    ///   change at one id is a delete/re-add pair.
    pub fn between(old: &Model, new: &Model) -> Result<Delta, ModelError> {
        if !std::sync::Arc::ptr_eq(old.metamodel(), new.metamodel()) {
            return Err(ModelError::MetamodelMismatch);
        }
        let meta = old.metamodel();
        let mut del_links = Vec::new();
        let mut del_objs = Vec::new();
        let mut add_objs = Vec::new();
        let mut set_attrs = Vec::new();
        let mut add_links = Vec::new();
        // Ids live on both sides but with different classes: replayed
        // as a delete/re-add pair, so links *to* them from survivors
        // are scrubbed by the delete and must be re-added.
        let mut reclassed: Vec<ObjId> = Vec::new();

        // Deletions: live in old, dead (or re-classed) in new.
        for (id, o) in old.objects() {
            match new.get(id) {
                Some(n) if n.class == o.class => {}
                Some(_) => {
                    reclassed.push(id);
                    del_objs.push(EditOp::DelObj { id, class: o.class });
                }
                None => del_objs.push(EditOp::DelObj { id, class: o.class }),
            }
        }
        // Additions: live in new, dead (or re-classed) in old. A fresh
        // object pays only for attributes off the class default.
        for (id, n) in new.objects() {
            let fresh = !matches!(old.get(id), Some(o) if o.class == n.class);
            if fresh {
                add_objs.push(EditOp::AddObj { id, class: n.class });
                let defaults = meta.default_attrs(n.class);
                for (slot, &attr) in meta.class(n.class).all_attrs.iter().enumerate() {
                    if n.attrs[slot] != defaults[slot] {
                        set_attrs.push(EditOp::SetAttr {
                            id,
                            attr,
                            value: n.attrs[slot],
                            old: defaults[slot],
                        });
                    }
                }
                for (slot, &r) in meta.class(n.class).all_refs.iter().enumerate() {
                    for &dst in &n.refs[slot] {
                        add_links.push(EditOp::AddLink { src: id, r, dst });
                    }
                }
            }
        }
        // Survivors: slot-wise attribute and link diffs.
        for (id, o) in old.objects() {
            let Some(n) = new.get(id) else { continue };
            if n.class != o.class {
                continue; // handled as delete + add above
            }
            for (slot, &attr) in meta.class(o.class).all_attrs.iter().enumerate() {
                if o.attrs[slot] != n.attrs[slot] {
                    set_attrs.push(EditOp::SetAttr {
                        id,
                        attr,
                        value: n.attrs[slot],
                        old: o.attrs[slot],
                    });
                }
            }
            for (slot, &r) in meta.class(o.class).all_refs.iter().enumerate() {
                // Slots are sorted and duplicate-free; set-diff them.
                for &dst in &o.refs[slot] {
                    if !n.refs[slot].contains(&dst) {
                        // A link whose target dies — or is re-classed,
                        // i.e. replayed as delete + re-add — rides along
                        // with the DelObj; only survivor→survivor
                        // removals are edits in their own right.
                        if new.contains(dst) && !reclassed.contains(&dst) {
                            del_links.push(EditOp::DelLink { src: id, r, dst });
                        }
                    }
                }
                for &dst in &n.refs[slot] {
                    // Links to a re-classed target are scrubbed by its
                    // DelObj even when present on both sides, so they
                    // must be re-established unconditionally.
                    if !o.refs[slot].contains(&dst) || reclassed.contains(&dst) {
                        add_links.push(EditOp::AddLink { src: id, r, dst });
                    }
                }
            }
        }
        let mut ops = del_links;
        ops.append(&mut del_objs);
        ops.append(&mut add_objs);
        ops.append(&mut set_attrs);
        ops.append(&mut add_links);
        Ok(Delta { ops })
    }

    /// Replays this script on `m` (which should be graph-equal to the
    /// `old` side of [`Delta::between`]). Ops are applied in script
    /// order; `between` emits them in a safe order.
    pub fn apply(&self, m: &mut Model) -> Result<(), ModelError> {
        for op in &self.ops {
            match *op {
                EditOp::AddObj { id, class } => m.add_at(id, class)?,
                EditOp::DelObj { id, .. } => m.delete(id)?,
                EditOp::SetAttr {
                    id, attr, value, ..
                } => m.set_attr(id, attr, value)?,
                EditOp::AddLink { src, r, dst } => {
                    m.add_link(src, r, dst)?;
                }
                EditOp::DelLink { src, r, dst } => {
                    m.remove_link(src, r, dst)?;
                }
            }
        }
        Ok(())
    }

    /// Appends one op to the script.
    pub fn push(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the script changes nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The script's total price under `cost` — the (unweighted)
    /// graph-edit distance when the script came from [`Delta::between`].
    pub fn cost(&self, cost: &CostModel) -> u64 {
        self.ops.iter().map(|op| cost.of(op)).sum()
    }

    /// The script that undoes this one: each op inverted
    /// ([`EditOp::inverse`]), in reverse order, so that
    /// `apply(inverse(d), apply(d, m))` restores `m`.
    ///
    /// Exactness inherits [`EditOp::inverse`]'s caveat: a `DelObj` whose
    /// object still carried attributes or links at deletion time
    /// (possible in [`Delta::between`] scripts, where scrubbed structure
    /// rides the deletion for free) inverts to a bare `AddObj` and loses
    /// that structure. Scripts built op-by-op against a live model with
    /// deletions expanded — the form the `mmt-core` session journal
    /// stores — invert exactly; for arbitrary diffs, use
    /// `Delta::between(new, old)` instead.
    pub fn inverse(&self) -> Delta {
        Delta {
            ops: self.ops.iter().rev().map(EditOp::inverse).collect(),
        }
    }

    /// The distinct objects whose slots this script writes, ascending
    /// (the union of [`EditOp::primary_obj`] over the ops, plus link
    /// targets). The coarse write-set incremental checkers intersect
    /// against their per-check read-sets.
    pub fn touched_objs(&self) -> Vec<ObjId> {
        let mut out: Vec<ObjId> = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            out.push(op.primary_obj());
            if let EditOp::AddLink { dst, .. } | EditOp::DelLink { dst, .. } = *op {
                out.push(dst);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return f.write_str("(no changes)");
        }
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

/// The weighted distance between two model tuples: per-component
/// [`Delta::between`] costs combined under `tuple`. Saturates at
/// [`u64::MAX`] (see [`TupleCost::total`]). Errors when any component
/// pair disagrees on its metamodel.
///
/// # Panics
///
/// Panics when `tuple` is explicit and its arity differs from the
/// tuples' — pass [`TupleCost::auto`] (or a weighting of the right
/// arity) rather than relying on padding.
pub fn tuple_distance(
    old: &[Model],
    new: &[Model],
    cost: &CostModel,
    tuple: &TupleCost,
) -> Result<u64, ModelError> {
    debug_assert_eq!(old.len(), new.len());
    let tuple = tuple
        .resolved(old.len())
        .expect("tuple cost arity matches the model tuple");
    let mut total: u64 = 0;
    for (i, (o, n)) in old.iter().zip(new).enumerate() {
        total = total.saturating_add(
            tuple
                .weight(i)
                .saturating_mul(Delta::between(o, n)?.cost(cost)),
        );
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_model::{AttrType, Metamodel, MetamodelBuilder, Upper};
    use std::sync::Arc;

    /// Feature/FeatureModel metamodel with attrs and a containment ref.
    fn mm() -> Arc<Metamodel> {
        let mut b = MetamodelBuilder::new("FM");
        let f = b.class("Feature").unwrap();
        b.attr(f, "name", AttrType::Str).unwrap();
        b.attr(f, "mandatory", AttrType::Bool).unwrap();
        let m = b.class("FeatureModel").unwrap();
        b.reference(m, "features", f, 0, Upper::Many, true).unwrap();
        b.build().unwrap()
    }

    fn feature(m: &mut Model, name: &str) -> ObjId {
        let meta = Arc::clone(m.metamodel());
        let f = meta.class_named("Feature").unwrap();
        let id = m.add(f).unwrap();
        m.set_attr_named(id, "name", Value::str(name)).unwrap();
        id
    }

    #[test]
    fn identical_models_have_empty_delta() {
        let meta = mm();
        let mut a = Model::new("a", Arc::clone(&meta));
        feature(&mut a, "engine");
        let b = a.clone();
        let d = Delta::between(&a, &b).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.cost(&CostModel::default()), 0);
        assert_eq!(d.to_string(), "(no changes)");
    }

    #[test]
    fn add_object_with_attrs() {
        let meta = mm();
        let old = Model::new("m", Arc::clone(&meta));
        let mut new = old.clone();
        let id = feature(&mut new, "engine");
        let d = Delta::between(&old, &new).unwrap();
        // AddObj + one SetAttr (name off default; mandatory stays false).
        assert_eq!(d.len(), 2);
        assert!(matches!(d.ops()[0], EditOp::AddObj { .. }));
        assert!(matches!(
            d.ops()[1],
            EditOp::SetAttr { id: i, .. } if i == id
        ));
        assert_eq!(d.cost(&CostModel::default()), 2);
    }

    #[test]
    fn delete_object_swallows_incoming_links() {
        let meta = mm();
        let mut old = Model::new("m", Arc::clone(&meta));
        let fm = meta.class_named("FeatureModel").unwrap();
        let features = meta.ref_of(fm, mmt_model::Sym::new("features")).unwrap();
        let root = old.add(fm).unwrap();
        let f = feature(&mut old, "engine");
        old.add_link(root, features, f).unwrap();
        let mut new = old.clone();
        new.delete(f).unwrap();
        let d = Delta::between(&old, &new).unwrap();
        // One DelObj; the dangling link is NOT a separate DelLink.
        assert_eq!(d.len(), 1);
        assert!(matches!(d.ops()[0], EditOp::DelObj { id, .. } if id == f));
        assert_eq!(d.cost(&CostModel::default()), 1);
    }

    #[test]
    fn set_attr_records_old_and_new() {
        let meta = mm();
        let mut old = Model::new("m", Arc::clone(&meta));
        let f = feature(&mut old, "engine");
        let mut new = old.clone();
        new.set_attr_named(f, "mandatory", Value::Bool(true))
            .unwrap();
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.len(), 1);
        match d.ops()[0] {
            EditOp::SetAttr { id, value, old, .. } => {
                assert_eq!(id, f);
                assert_eq!(value, Value::Bool(true));
                assert_eq!(old, Value::Bool(false));
            }
            ref op => panic!("unexpected op {op}"),
        }
    }

    #[test]
    fn link_changes_between_survivors() {
        let meta = mm();
        let mut old = Model::new("m", Arc::clone(&meta));
        let fm = meta.class_named("FeatureModel").unwrap();
        let features = meta.ref_of(fm, mmt_model::Sym::new("features")).unwrap();
        let root = old.add(fm).unwrap();
        let a = feature(&mut old, "a");
        let b = feature(&mut old, "b");
        old.add_link(root, features, a).unwrap();
        let mut new = old.clone();
        new.remove_link(root, features, a).unwrap();
        new.add_link(root, features, b).unwrap();
        let d = Delta::between(&old, &new).unwrap();
        assert_eq!(d.len(), 2);
        assert!(matches!(d.ops()[0], EditOp::DelLink { dst, .. } if dst == a));
        assert!(matches!(d.ops()[1], EditOp::AddLink { dst, .. } if dst == b));
    }

    #[test]
    fn apply_then_diff_round_trips() {
        // A busy diff: delete one feature, rename another, add a third,
        // rewire links — apply(between(a, b), a) must reproduce b.
        let meta = mm();
        let mut old = Model::new("m", Arc::clone(&meta));
        let fm = meta.class_named("FeatureModel").unwrap();
        let features = meta.ref_of(fm, mmt_model::Sym::new("features")).unwrap();
        let root = old.add(fm).unwrap();
        let a = feature(&mut old, "a");
        let b = feature(&mut old, "b");
        old.add_link(root, features, a).unwrap();
        old.add_link(root, features, b).unwrap();

        let mut new = old.clone();
        new.delete(a).unwrap();
        new.set_attr_named(b, "name", Value::str("renamed"))
            .unwrap();
        let c = feature(&mut new, "c");
        new.set_attr_named(c, "mandatory", Value::Bool(true))
            .unwrap();
        new.add_link(root, features, c).unwrap();

        let d = Delta::between(&old, &new).unwrap();
        let mut replay = old.clone();
        d.apply(&mut replay).unwrap();
        assert!(replay.graph_eq(&new), "replayed:\n{d}");
        // And the reverse direction also round-trips.
        let back = Delta::between(&new, &old).unwrap();
        let mut undo = new.clone();
        back.apply(&mut undo).unwrap();
        assert!(undo.graph_eq(&old));
    }

    #[test]
    fn reclassed_target_keeps_incoming_links() {
        // A re-classed object replays as delete + re-add, which scrubs
        // links pointing at it from survivors; between() must re-add
        // them for the round-trip to hold.
        let mut b = MetamodelBuilder::new("X");
        let named = b.abstract_class("Named").unwrap();
        let a = b.class_full("A", &[named], false).unwrap();
        let bc = b.class_full("B", &[named], false).unwrap();
        let holder = b.class("Holder").unwrap();
        let holds = b
            .reference(holder, "holds", named, 0, Upper::Many, false)
            .unwrap();
        let meta = b.build().unwrap();

        let mut old = Model::new("m", Arc::clone(&meta));
        let h = old.add(holder).unwrap();
        let k = old.add(a).unwrap();
        old.add_link(h, holds, k).unwrap();
        // new: same id k, different class, link kept.
        let mut new = old.clone();
        new.delete(k).unwrap();
        new.add_at(k, bc).unwrap();
        new.add_link(h, holds, k).unwrap();

        let d = Delta::between(&old, &new).unwrap();
        // The link rides the DelObj for free but must be re-added.
        assert!(!d
            .ops()
            .iter()
            .any(|op| matches!(op, EditOp::DelLink { .. })));
        assert!(d
            .ops()
            .iter()
            .any(|op| matches!(*op, EditOp::AddLink { src, dst, .. } if src == h && dst == k)));
        let mut replay = old.clone();
        d.apply(&mut replay).unwrap();
        assert!(replay.graph_eq(&new), "replayed:\n{d}");
    }

    #[test]
    fn diff_after_apply_is_empty() {
        let meta = mm();
        let mut old = Model::new("m", Arc::clone(&meta));
        feature(&mut old, "x");
        let mut new = old.clone();
        feature(&mut new, "y");
        let d = Delta::between(&old, &new).unwrap();
        let mut replay = old.clone();
        d.apply(&mut replay).unwrap();
        assert!(Delta::between(&replay, &new).unwrap().is_empty());
    }

    #[test]
    fn metamodel_mismatch_rejected() {
        let a = Model::new("a", mm());
        let b = Model::new("b", mm()); // distinct Arc ⇒ distinct identity
        assert!(matches!(
            Delta::between(&a, &b),
            Err(ModelError::MetamodelMismatch)
        ));
    }

    #[test]
    fn cost_model_prices_each_kind() {
        let cm = CostModel {
            add_obj: 2,
            del_obj: 3,
            set_attr: 5,
            add_link: 7,
            del_link: 11,
        };
        let id = ObjId(0);
        let class = ClassId(0);
        let attr = AttrId(0);
        let r = RefId(0);
        assert_eq!(cm.of(&EditOp::AddObj { id, class }), 2);
        assert_eq!(cm.of(&EditOp::DelObj { id, class }), 3);
        assert_eq!(
            cm.of(&EditOp::SetAttr {
                id,
                attr,
                value: Value::Bool(true),
                old: Value::Bool(false),
            }),
            5
        );
        assert_eq!(
            cm.of(&EditOp::AddLink {
                src: id,
                r,
                dst: id
            }),
            7
        );
        assert_eq!(
            cm.of(&EditOp::DelLink {
                src: id,
                r,
                dst: id
            }),
            11
        );
        let default = CostModel::default();
        for op in [
            EditOp::AddObj { id, class },
            EditOp::DelObj { id, class },
            EditOp::AddLink {
                src: id,
                r,
                dst: id,
            },
        ] {
            assert_eq!(default.of(&op), 1);
        }
    }

    #[test]
    fn tuple_cost_uniform_and_weighted() {
        let u = TupleCost::uniform(3);
        assert_eq!(u.arity(), Some(3));
        assert!(!u.is_auto());
        for i in 0..3 {
            assert_eq!(u.weight(i), 1);
        }
        // The asymmetric weighting `ground` relies on: model 1 is 100×
        // as expensive as model 0.
        let w = TupleCost::weighted(vec![1, 100]);
        assert_eq!(w.arity(), Some(2));
        assert_eq!(w.weight(0), 1);
        assert_eq!(w.weight(1), 100);
        // Weighted totals.
        assert_eq!(w.total(&[3, 2]), 3 + 200);
        assert_eq!(u.total(&[1, 1, 1]), 3);
    }

    #[test]
    fn tuple_cost_auto_resolves_to_any_arity() {
        let a = TupleCost::auto();
        assert!(a.is_auto());
        assert_eq!(a.arity(), None);
        assert_eq!(a.weight(7), 1); // auto is uniform everywhere
        for n in [0, 1, 3] {
            let r = a.resolved(n).unwrap();
            assert_eq!(r, TupleCost::uniform(n));
        }
        // Explicit weightings resolve only at their own arity.
        let w = TupleCost::weighted(vec![1, 100]);
        assert_eq!(w.resolved(2).unwrap(), w);
        assert_eq!(
            w.resolved(3).unwrap_err(),
            TupleArityError {
                expected: 3,
                got: 2
            }
        );
        assert!(w.resolved(3).unwrap_err().to_string().contains("arity 3"));
    }

    #[test]
    #[should_panic(expected = "resolve against the tuple first")]
    fn tuple_cost_out_of_range_weight_panics() {
        TupleCost::weighted(vec![1, 100]).weight(7);
    }

    /// ISSUE 3 bugfix regression: near-`u64::MAX` weights must saturate,
    /// not wrap. `4 × (u64::MAX/4 + 1)` is exactly `2^64`, which the
    /// historical wrapping sum turned into **0** — a maximally expensive
    /// tuple priced as free.
    #[test]
    fn weighted_total_saturates_instead_of_wrapping() {
        let heavy = TupleCost::weighted(vec![u64::MAX / 4 + 1]);
        assert_eq!(heavy.total(&[4]), u64::MAX);
        // A huge component plus a small one stays saturated.
        let w = TupleCost::weighted(vec![u64::MAX / 4 + 1, 1]);
        assert_eq!(w.total(&[4, 3]), u64::MAX);
        // Ordinary magnitudes are untouched.
        assert_eq!(w.total(&[0, 3]), 3);
    }

    #[test]
    fn edit_op_read_set_helpers() {
        let id = ObjId(3);
        let class = ClassId(1);
        let attr = AttrId(2);
        let r = RefId(0);
        let add = EditOp::AddObj { id, class };
        let del = EditOp::DelObj { id, class };
        let set = EditOp::SetAttr {
            id,
            attr,
            value: Value::Bool(true),
            old: Value::Bool(false),
        };
        let link = EditOp::AddLink {
            src: ObjId(1),
            r,
            dst: id,
        };
        let unlink = EditOp::DelLink {
            src: ObjId(1),
            r,
            dst: id,
        };
        assert_eq!(add.touched_class(), Some(class));
        assert_eq!(add.touched_attr(), None);
        assert_eq!(set.touched_attr(), Some(attr));
        assert_eq!(set.touched_class(), None);
        assert_eq!(link.touched_ref(), Some(r));
        assert_eq!(link.primary_obj(), ObjId(1));
        assert_eq!(set.primary_obj(), id);
        assert!(del.is_destructive_only());
        assert!(unlink.is_destructive_only());
        assert!(!add.is_destructive_only() && !set.is_destructive_only());
        let mut d = Delta::new();
        d.push(set);
        d.push(link);
        d.push(del);
        assert_eq!(d.touched_objs(), vec![ObjId(1), id]);
    }

    #[test]
    fn edit_op_inverse_round_trips() {
        let id = ObjId(1);
        let class = ClassId(0);
        let attr = AttrId(0);
        let r = RefId(0);
        let ops = [
            EditOp::AddObj { id, class },
            EditOp::DelObj { id, class },
            EditOp::SetAttr {
                id,
                attr,
                value: Value::str("new"),
                old: Value::str("old"),
            },
            EditOp::AddLink {
                src: id,
                r,
                dst: ObjId(2),
            },
            EditOp::DelLink {
                src: id,
                r,
                dst: ObjId(2),
            },
        ];
        for op in ops {
            // Inversion is an involution.
            assert_eq!(op.inverse().inverse(), op);
        }
        assert_eq!(
            EditOp::AddObj { id, class }.inverse(),
            EditOp::DelObj { id, class }
        );
        let set = EditOp::SetAttr {
            id,
            attr,
            value: Value::str("new"),
            old: Value::str("old"),
        };
        match set.inverse() {
            EditOp::SetAttr { value, old, .. } => {
                assert_eq!(value, Value::str("old"));
                assert_eq!(old, Value::str("new"));
            }
            op => panic!("unexpected inverse {op}"),
        }
    }

    #[test]
    fn delta_inverse_undoes_expanded_scripts() {
        // An op-by-op script with the deletion expanded (links and
        // non-default attrs cleared first): inverse replay restores the
        // original exactly.
        let meta = mm();
        let mut m = Model::new("m", Arc::clone(&meta));
        let fm = meta.class_named("FeatureModel").unwrap();
        let features = meta.ref_of(fm, mmt_model::Sym::new("features")).unwrap();
        let feat_class = meta.class_named("Feature").unwrap();
        let name = meta
            .attr_of(feat_class, mmt_model::Sym::new("name"))
            .unwrap();
        let root = m.add(fm).unwrap();
        let f = feature(&mut m, "engine");
        m.add_link(root, features, f).unwrap();

        let mut d = Delta::new();
        d.push(EditOp::AddObj {
            id: ObjId(2),
            class: feat_class,
        });
        d.push(EditOp::SetAttr {
            id: ObjId(2),
            attr: name,
            value: Value::str("gps"),
            old: Value::str(""),
        });
        d.push(EditOp::AddLink {
            src: root,
            r: features,
            dst: ObjId(2),
        });
        // Expanded deletion of `f`: unlink + reset attr + delete.
        d.push(EditOp::DelLink {
            src: root,
            r: features,
            dst: f,
        });
        d.push(EditOp::SetAttr {
            id: f,
            attr: name,
            value: Value::str(""),
            old: Value::str("engine"),
        });
        d.push(EditOp::DelObj {
            id: f,
            class: feat_class,
        });

        let mut edited = m.clone();
        d.apply(&mut edited).unwrap();
        assert!(!edited.contains(f));
        let inv = d.inverse();
        assert_eq!(inv.len(), d.len());
        inv.apply(&mut edited).unwrap();
        assert!(edited.graph_eq(&m), "inverse replay:\n{inv}");
        // Involution at the script level.
        assert_eq!(inv.inverse(), d);
    }

    /// The documented caveat: inverting a `between` script whose
    /// `DelObj` swallowed structure is lossy — use `between(new, old)`
    /// for arbitrary diffs.
    #[test]
    fn delta_inverse_is_lossy_on_swallowed_deletions() {
        let meta = mm();
        let mut old = Model::new("m", Arc::clone(&meta));
        let f = feature(&mut old, "engine"); // name off default
        let mut new = old.clone();
        new.delete(f).unwrap();
        let d = Delta::between(&old, &new).unwrap();
        let mut back = new.clone();
        d.inverse().apply(&mut back).unwrap();
        // The object is back, but its name was swallowed by the delete.
        assert!(back.contains(f));
        assert!(!back.graph_eq(&old));
        let exact = Delta::between(&new, &old).unwrap();
        let mut exact_back = new.clone();
        exact.apply(&mut exact_back).unwrap();
        assert!(exact_back.graph_eq(&old));
    }

    #[test]
    fn tuple_distance_weights_components() {
        let meta = mm();
        let mut a0 = Model::new("a0", Arc::clone(&meta));
        feature(&mut a0, "x");
        let a1 = Model::new("a1", Arc::clone(&meta));
        // New tuple: one attr flip in component 0, one fresh feature
        // (AddObj + SetAttr) in component 1.
        let mut b0 = a0.clone();
        b0.set_attr_named(ObjId(0), "mandatory", Value::Bool(true))
            .unwrap();
        let mut b1 = a1.clone();
        feature(&mut b1, "y");
        let cost = CostModel::default();
        let old = [a0, a1];
        let new = [b0, b1];
        assert_eq!(
            tuple_distance(&old, &new, &cost, &TupleCost::uniform(2)).unwrap(),
            1 + 2
        );
        assert_eq!(
            tuple_distance(&old, &new, &cost, &TupleCost::weighted(vec![1, 100])).unwrap(),
            1 + 200
        );
    }

    #[test]
    fn display_is_line_oriented() {
        let meta = mm();
        let old = Model::new("m", Arc::clone(&meta));
        let mut new = old.clone();
        feature(&mut new, "engine");
        let d = Delta::between(&old, &new).unwrap();
        let printed = d.to_string();
        assert_eq!(printed.lines().count(), 2, "{printed}");
        assert!(printed.contains("+ @0"));
        assert!(printed.contains("\"engine\""));
    }
}
