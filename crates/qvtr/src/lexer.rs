//! Lexer for the QVT-R-like textual syntax.
//!
//! Tokens carry [`Span`]s (1-based line/column) so the parser and resolver
//! can produce precise diagnostics.

use std::fmt;

/// A source position range (start line/col inclusive).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds of the QVT-R surface syntax.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (unescaped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `->`
    Arrow,
    /// `|`
    Pipe,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Neq => f.write_str("`!=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Arrow => f.write_str("`->`"),
            TokenKind::Pipe => f.write_str("`|`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Position of the first character.
    pub span: Span,
}

/// A lexical error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Where the error occurred.
    pub span: Span,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, producing the full token stream (ending with `Eof`).
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some((_, ch)) = c {
                if ch == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }
    loop {
        // Skip whitespace and `//` comments.
        loop {
            match chars.peek() {
                Some(&(_, c)) if c.is_whitespace() => {
                    bump!();
                }
                Some(&(i, '/')) if src[i..].starts_with("//") => {
                    while let Some((_, c)) = bump!() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        let span = Span { line, col };
        let Some(&(start, c)) = chars.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                span,
            });
            return Ok(out);
        };
        let kind = if c.is_alphabetic() || c == '_' {
            let mut end = start;
            while let Some(&(i, c)) = chars.peek() {
                if c.is_alphanumeric() || c == '_' {
                    end = i + c.len_utf8();
                    bump!();
                } else {
                    break;
                }
            }
            TokenKind::Ident(src[start..end].to_owned())
        } else if c.is_ascii_digit() {
            let mut end = start;
            while let Some(&(i, c)) = chars.peek() {
                if c.is_ascii_digit() {
                    end = i + 1;
                    bump!();
                } else {
                    break;
                }
            }
            let text = &src[start..end];
            TokenKind::Int(text.parse().map_err(|_| LexError {
                span,
                msg: format!("integer literal `{text}` out of range"),
            })?)
        } else if c == '"' {
            bump!();
            let mut s = String::new();
            loop {
                match bump!() {
                    None => {
                        return Err(LexError {
                            span,
                            msg: "unterminated string literal".into(),
                        })
                    }
                    Some((_, '"')) => break,
                    Some((_, '\\')) => match bump!() {
                        Some((_, '"')) => s.push('"'),
                        Some((_, '\\')) => s.push('\\'),
                        Some((_, 'n')) => s.push('\n'),
                        other => {
                            return Err(LexError {
                                span,
                                msg: format!("invalid escape `\\{:?}`", other.map(|x| x.1)),
                            })
                        }
                    },
                    Some((_, c)) => s.push(c),
                }
            }
            TokenKind::Str(s)
        } else {
            bump!();
            match c {
                '{' => TokenKind::LBrace,
                '}' => TokenKind::RBrace,
                '(' => TokenKind::LParen,
                ')' => TokenKind::RParen,
                ':' => TokenKind::Colon,
                ';' => TokenKind::Semi,
                ',' => TokenKind::Comma,
                '.' => TokenKind::Dot,
                '|' => TokenKind::Pipe,
                '=' => TokenKind::Eq,
                '!' => {
                    if matches!(chars.peek(), Some(&(_, '='))) {
                        bump!();
                        TokenKind::Neq
                    } else {
                        return Err(LexError {
                            span,
                            msg: "expected `=` after `!`".into(),
                        });
                    }
                }
                '<' => {
                    if matches!(chars.peek(), Some(&(_, '='))) {
                        bump!();
                        TokenKind::Le
                    } else {
                        TokenKind::Lt
                    }
                }
                '>' => {
                    if matches!(chars.peek(), Some(&(_, '='))) {
                        bump!();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                '-' => {
                    if matches!(chars.peek(), Some(&(_, '>'))) {
                        bump!();
                        TokenKind::Arrow
                    } else {
                        return Err(LexError {
                            span,
                            msg: "expected `>` after `-`".into(),
                        });
                    }
                }
                other => {
                    return Err(LexError {
                        span,
                        msg: format!("unexpected character `{other}`"),
                    })
                }
            }
        };
        out.push(Token { kind, span });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("relation R { } -> | . ;"),
            vec![
                Ident("relation".into()),
                Ident("R".into()),
                LBrace,
                RBrace,
                Arrow,
                Pipe,
                Dot,
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        use TokenKind::*;
        assert_eq!(kinds("= != < <= > >="), vec![Eq, Neq, Lt, Le, Gt, Ge, Eof]);
    }

    #[test]
    fn literals() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#""hi" 42 "a\"b""#),
            vec![Str("hi".into()), Int(42), Str("a\"b".into()), Eof]
        );
    }

    #[test]
    fn spans_track_lines() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(kinds("a // comment\nb"), {
            use TokenKind::*;
            vec![Ident("a".into()), Ident("b".into()), Eof]
        });
    }

    #[test]
    fn errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("#").is_err());
        assert!(tokenize("- x").is_err());
        assert!(tokenize("! x").is_err());
    }

    #[test]
    fn newline_escape_in_string() {
        assert_eq!(kinds(r#""a\nb""#), {
            use TokenKind::*;
            vec![Str("a\nb".into()), Eof]
        });
    }
}
