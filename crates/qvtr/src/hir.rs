//! Resolved, typed representation of a transformation (HIR).
//!
//! Produced by [`mod@crate::resolve`] from the parsed AST plus the concrete
//! metamodels. All names are resolved to ids: classes/attributes/references
//! to metamodel ids, variables to [`VarId`]s, relations to [`RelId`]s, and
//! model parameters to [`DomIdx`]s in the transformation's *model space*.
//!
//! Dependency sets ([`DepSet`]) are expressed over the model space, so the
//! §2.3 call-direction typing rule is a direct Horn entailment.

use crate::ast::CmpOp;
use mmt_deps::{DepSet, DomIdx};
use mmt_model::{AttrId, AttrType, ClassId, Metamodel, RefId, Sym, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a variable within one relation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into the relation's variable table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a relation within one transformation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelId(pub u32);

impl RelId {
    /// Index into the transformation's relation table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The type of a variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarTy {
    /// Primitive (attribute-valued) variable.
    Prim(AttrType),
    /// Object variable bound by a template over `class` in model `model`.
    Obj {
        /// Model-space index the object lives in.
        model: DomIdx,
        /// Static class of the variable.
        class: ClassId,
    },
}

/// A variable: name plus type.
#[derive(Clone, Debug)]
pub struct HirVar {
    /// Source name.
    pub name: Sym,
    /// Resolved type.
    pub ty: VarTy,
}

/// A literal or variable in pattern-constraint position.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Atom {
    /// Constant value.
    Lit(Value),
    /// Variable reference (primitive-typed).
    Var(VarId),
}

/// One flattened pattern constraint.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Constraint {
    /// `var` ranges over the extent of `class` in model `model`
    /// (generator; one per template, root or nested).
    Obj {
        /// The object variable.
        var: VarId,
        /// Model it ranges over.
        model: DomIdx,
        /// Class whose extent it ranges over.
        class: ClassId,
    },
    /// `obj.attr = rhs`.
    AttrEq {
        /// Object variable.
        obj: VarId,
        /// Attribute.
        attr: AttrId,
        /// Right-hand side.
        rhs: Atom,
    },
    /// `dst ∈ obj.r` — the reference slot contains the target object.
    RefContains {
        /// Source object variable.
        obj: VarId,
        /// Reference.
        r: RefId,
        /// Target object variable.
        dst: VarId,
    },
}

/// A resolved domain: root template flattened into constraints.
#[derive(Clone, Debug)]
pub struct HirDomain {
    /// Model-space index this domain patterns over.
    pub model: DomIdx,
    /// Root object variable.
    pub root: VarId,
    /// Root class.
    pub class: ClassId,
    /// Flattened constraints (root `Obj` constraint first).
    pub constraints: Vec<Constraint>,
    /// All variables occurring in this domain's pattern.
    pub vars: Vec<VarId>,
}

/// A resolved `when`/`where` expression.
#[derive(Clone, Debug, PartialEq)]
pub enum HirExpr {
    /// Literal.
    Lit(Value),
    /// Variable (primitive or object; object vars compare by identity).
    Var(VarId),
    /// Attribute navigation.
    Nav(VarId, AttrId),
    /// Comparison.
    Cmp(CmpOp, Box<HirExpr>, Box<HirExpr>),
    /// Conjunction.
    And(Box<HirExpr>, Box<HirExpr>),
    /// Disjunction.
    Or(Box<HirExpr>, Box<HirExpr>),
    /// Implication.
    Implies(Box<HirExpr>, Box<HirExpr>),
    /// Negation.
    Not(Box<HirExpr>),
    /// Relation invocation: args bind the callee's domain roots in order.
    Call(RelId, Vec<VarId>),
}

impl HirExpr {
    /// Collects the variables free in this expression into `out`,
    /// **deduplicated**: each variable appears at most once (counting
    /// entries already in `out`), in first-occurrence order.
    pub fn free_vars(&self, out: &mut Vec<VarId>) {
        fn push(out: &mut Vec<VarId>, v: VarId) {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        match self {
            HirExpr::Lit(_) => {}
            HirExpr::Var(v) => push(out, *v),
            HirExpr::Nav(v, _) => push(out, *v),
            HirExpr::Cmp(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            HirExpr::And(a, b) | HirExpr::Or(a, b) | HirExpr::Implies(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            HirExpr::Not(a) => a.free_vars(out),
            HirExpr::Call(_, args) => {
                for v in args {
                    push(out, *v);
                }
            }
        }
    }

    /// Collects every call in the expression into `out`,
    /// **deduplicated**: a syntactically repeated invocation (same callee,
    /// same argument list, counting entries already in `out`) appears
    /// once, in first-occurrence order.
    pub fn calls(&self, out: &mut Vec<(RelId, Vec<VarId>)>) {
        match self {
            HirExpr::Cmp(_, a, b) => {
                a.calls(out);
                b.calls(out);
            }
            HirExpr::And(a, b) | HirExpr::Or(a, b) | HirExpr::Implies(a, b) => {
                a.calls(out);
                b.calls(out);
            }
            HirExpr::Not(a) => a.calls(out),
            HirExpr::Call(r, args) if !out.iter().any(|(rid, a)| rid == r && a == args) => {
                out.push((*r, args.clone()));
            }
            _ => {}
        }
    }
}

/// A resolved relation.
#[derive(Clone, Debug)]
pub struct HirRelation {
    /// Relation name.
    pub name: Sym,
    /// Whether declared `top` (checked directly; non-top only when called).
    pub is_top: bool,
    /// Variable table.
    pub vars: Vec<HirVar>,
    /// Domains, in declaration order. Each references a distinct model.
    pub domains: Vec<HirDomain>,
    /// Optional pre-condition.
    pub when: Option<HirExpr>,
    /// Optional post-condition.
    pub where_: Option<HirExpr>,
    /// Attached checking dependencies `R̄`, over the transformation's model
    /// space. Defaults to the standard semantics over this relation's
    /// domain models when no `depend` clause is given (§2.2 conservativity).
    pub deps: DepSet,
}

impl HirRelation {
    /// The set of model indices this relation has domains over.
    pub fn domain_models(&self) -> mmt_deps::DomSet {
        mmt_deps::DomSet::from_iter(self.domains.iter().map(|d| d.model))
    }

    /// The domain over model `m`, if any.
    pub fn domain_for_model(&self, m: DomIdx) -> Option<&HirDomain> {
        self.domains.iter().find(|d| d.model == m)
    }

    /// Variable lookup by name.
    pub fn var_named(&self, name: Sym) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }
}

/// A model parameter of the transformation.
#[derive(Clone, Debug)]
pub struct ModelParam {
    /// Parameter name (e.g. `cf1`).
    pub name: Sym,
    /// Metamodel it conforms to.
    pub meta: Arc<Metamodel>,
}

/// A fully resolved transformation.
#[derive(Clone, Debug)]
pub struct Hir {
    /// Transformation name.
    pub name: Sym,
    /// Model parameters; their order defines the model space (`DomIdx`).
    pub models: Vec<ModelParam>,
    /// Relations, `RelId`-indexed.
    pub relations: Vec<HirRelation>,
    rel_by_name: HashMap<Sym, RelId>,
}

impl Hir {
    /// Builds the transformation, indexing relations by name.
    pub fn new(name: Sym, models: Vec<ModelParam>, relations: Vec<HirRelation>) -> Hir {
        let rel_by_name = relations
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name, RelId(i as u32)))
            .collect();
        Hir {
            name,
            models,
            relations,
            rel_by_name,
        }
    }

    /// Number of model parameters (the model-space arity).
    pub fn arity(&self) -> usize {
        self.models.len()
    }

    /// Relation lookup by id.
    pub fn relation(&self, id: RelId) -> &HirRelation {
        &self.relations[id.index()]
    }

    /// Relation lookup by name.
    pub fn relation_named(&self, name: &str) -> Option<RelId> {
        self.rel_by_name.get(&Sym::new(name)).copied()
    }

    /// Model-parameter lookup by name.
    pub fn model_named(&self, name: &str) -> Option<DomIdx> {
        let sym = Sym::new(name);
        self.models
            .iter()
            .position(|m| m.name == sym)
            .map(|i| DomIdx(i as u8))
    }

    /// Iterates over top relations.
    pub fn top_relations(&self) -> impl Iterator<Item = (RelId, &HirRelation)> {
        self.relations
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_top)
            .map(|(i, r)| (RelId(i as u32), r))
    }
}

impl fmt::Display for Hir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transformation {}(", self.name)?;
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} : {}", m.name, m.meta.name)?;
        }
        writeln!(f, ") — {} relations", self.relations.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(i: u32) -> HirExpr {
        HirExpr::Var(VarId(i))
    }

    /// ISSUE 8 satellite: `free_vars` output is deduplicated in
    /// first-occurrence order — callers no longer need the ad-hoc
    /// `sort_unstable(); dedup();` dance (and the ones treating the
    /// result as a set iterate each variable exactly once).
    #[test]
    fn free_vars_deduplicates_in_first_occurrence_order() {
        // (v1 = v0) and (v0.a = v2) and not (v1 = v2)
        let e = HirExpr::And(
            Box::new(HirExpr::And(
                Box::new(HirExpr::Cmp(CmpOp::Eq, Box::new(var(1)), Box::new(var(0)))),
                Box::new(HirExpr::Cmp(
                    CmpOp::Eq,
                    Box::new(HirExpr::Nav(VarId(0), mmt_model::AttrId(0))),
                    Box::new(var(2)),
                )),
            )),
            Box::new(HirExpr::Not(Box::new(HirExpr::Cmp(
                CmpOp::Eq,
                Box::new(var(1)),
                Box::new(var(2)),
            )))),
        );
        let mut fv = Vec::new();
        e.free_vars(&mut fv);
        assert_eq!(fv, vec![VarId(1), VarId(0), VarId(2)]);
    }

    /// Entries already in `out` count as seen: pre-seeded vectors are
    /// extended, never duplicated (the `plan_check` accumulation style).
    #[test]
    fn free_vars_respects_preexisting_entries() {
        let e = HirExpr::And(
            Box::new(var(3)),
            Box::new(HirExpr::Call(RelId(0), vec![VarId(1), VarId(4)])),
        );
        let mut fv = vec![VarId(1), VarId(3)];
        e.free_vars(&mut fv);
        assert_eq!(fv, vec![VarId(1), VarId(3), VarId(4)]);
    }

    /// `calls` deduplicates syntactically identical invocations but keeps
    /// same-callee calls with different argument lists distinct.
    #[test]
    fn calls_deduplicates_identical_invocations() {
        let call = |r: u32, args: &[u32]| {
            HirExpr::Call(RelId(r), args.iter().map(|&i| VarId(i)).collect())
        };
        let e = HirExpr::And(
            Box::new(HirExpr::And(
                Box::new(call(0, &[1, 2])),
                Box::new(call(0, &[1, 2])),
            )),
            Box::new(HirExpr::Or(
                Box::new(call(0, &[2, 1])),
                Box::new(HirExpr::Not(Box::new(call(1, &[1, 2])))),
            )),
        );
        let mut cs = Vec::new();
        e.calls(&mut cs);
        assert_eq!(
            cs,
            vec![
                (RelId(0), vec![VarId(1), VarId(2)]),
                (RelId(0), vec![VarId(2), VarId(1)]),
                (RelId(1), vec![VarId(1), VarId(2)]),
            ]
        );
    }
}
