//! Unresolved abstract syntax tree, as produced by the parser.
//!
//! Names are plain strings with spans; [`mod@crate::resolve`] turns this into
//! the typed [`crate::hir`] representation against concrete metamodels.

use crate::lexer::Span;

/// A whole `transformation` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct AstTransformation {
    /// Transformation name.
    pub name: String,
    /// Declared model parameters `(model name, metamodel name)`.
    pub models: Vec<AstModelParam>,
    /// The relations, in declaration order.
    pub relations: Vec<AstRelation>,
    /// Position of the `transformation` keyword.
    pub span: Span,
}

/// A model parameter `m : MM` in the transformation header.
#[derive(Clone, Debug, PartialEq)]
pub struct AstModelParam {
    /// Model (domain space) name.
    pub name: String,
    /// Metamodel name it conforms to.
    pub metamodel: String,
    /// Position.
    pub span: Span,
}

/// A `relation` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct AstRelation {
    /// Relation name.
    pub name: String,
    /// Whether declared `top`.
    pub is_top: bool,
    /// Declared primitive variables (`n : Str;`).
    pub vars: Vec<AstVarDecl>,
    /// Domains, in declaration order.
    pub domains: Vec<AstDomain>,
    /// Optional `when { … }` pre-condition.
    pub when: Option<AstExpr>,
    /// Optional `where { … }` post-condition.
    pub where_: Option<AstExpr>,
    /// `depend …;` clauses (empty ⇒ standard semantics, per §2.2).
    pub depends: Vec<AstDepend>,
    /// Position of the relation name.
    pub span: Span,
}

/// A declared primitive variable.
#[derive(Clone, Debug, PartialEq)]
pub struct AstVarDecl {
    /// Variable name.
    pub name: String,
    /// Type name (`Str`, `Bool`, `Int`).
    pub ty: String,
    /// Position.
    pub span: Span,
}

/// A `domain m v : Class { … }` clause.
#[derive(Clone, Debug, PartialEq)]
pub struct AstDomain {
    /// Model parameter this domain patterns over.
    pub model: String,
    /// Root object template.
    pub template: AstTemplate,
    /// QVT-R compatibility marker (`checkonly` / `enforce`); recorded but
    /// not semantically load-bearing — enforcement direction is chosen by
    /// the *shape* at enforce time (§3).
    pub qualifier: Option<String>,
    /// Position.
    pub span: Span,
}

/// An object template `v : Class { prop = …, ref = tpl }`.
#[derive(Clone, Debug, PartialEq)]
pub struct AstTemplate {
    /// Variable the matched object binds to.
    pub var: String,
    /// Class name.
    pub class: String,
    /// Property items.
    pub items: Vec<AstTemplateItem>,
    /// Position of `var`.
    pub span: Span,
}

/// One `prop = value` item inside a template.
#[derive(Clone, Debug, PartialEq)]
pub enum AstTemplateItem {
    /// `attr = expr` — attribute must equal the expression's value.
    Attr {
        /// Attribute name.
        name: String,
        /// Right-hand side (literal or variable).
        value: AstExpr,
        /// Position.
        span: Span,
    },
    /// `ref = v` — some target of the reference is the object bound to `v`.
    RefVar {
        /// Reference name.
        name: String,
        /// Target variable (bound by another template).
        var: String,
        /// Position.
        span: Span,
    },
    /// `ref = v : Class { … }` — some target matches the nested template.
    RefTemplate {
        /// Reference name.
        name: String,
        /// Nested template (binds its own variable).
        template: AstTemplate,
        /// Position.
        span: Span,
    },
}

/// A `depend` clause: `depend a b -> c;`, `depend a -> b c;` (multi-target
/// sugar), or `depend a | b -> c;` (source-union sugar). Both sugars expand
/// to plain dependencies per §2.3.
#[derive(Clone, Debug, PartialEq)]
pub struct AstDepend {
    /// Source alternatives: each alternative is a set of model names.
    /// A single alternative = plain dependency; several = union sugar.
    pub source_alts: Vec<Vec<String>>,
    /// Target model names (several = multi-target sugar).
    pub targets: Vec<String>,
    /// Position.
    pub span: Span,
}

/// Binary comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Expressions in `when`/`where` clauses and template item values.
#[derive(Clone, Debug, PartialEq)]
pub enum AstExpr {
    /// String literal.
    Str(String, Span),
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Variable reference.
    Var(String, Span),
    /// Attribute navigation `v.attr`.
    Nav(String, String, Span),
    /// Comparison.
    Cmp(CmpOp, Box<AstExpr>, Box<AstExpr>, Span),
    /// Conjunction.
    And(Box<AstExpr>, Box<AstExpr>),
    /// Disjunction.
    Or(Box<AstExpr>, Box<AstExpr>),
    /// Implication.
    Implies(Box<AstExpr>, Box<AstExpr>),
    /// Negation.
    Not(Box<AstExpr>, Span),
    /// Relation invocation `R(a, b, c)`.
    Call(String, Vec<(String, Span)>, Span),
}

impl AstExpr {
    /// The position most useful for diagnostics about this expression.
    pub fn span(&self) -> Span {
        match self {
            AstExpr::Str(_, s)
            | AstExpr::Int(_, s)
            | AstExpr::Bool(_, s)
            | AstExpr::Var(_, s)
            | AstExpr::Nav(_, _, s)
            | AstExpr::Cmp(_, _, _, s)
            | AstExpr::Not(_, s)
            | AstExpr::Call(_, _, s) => *s,
            AstExpr::And(a, _) | AstExpr::Or(a, _) | AstExpr::Implies(a, _) => a.span(),
        }
    }
}
