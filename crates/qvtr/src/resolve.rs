//! Name resolution, type checking and dependency typing.
//!
//! Turns the parsed [`AstTransformation`] plus concrete metamodels into the
//! typed [`Hir`]. Besides ordinary name/type resolution this implements the
//! paper's static rules:
//!
//! * `depend` clauses are expanded (multi-target and source-union sugar,
//!   §2.3) and validated (`S ⊆ dom R`, `T ∈ dom R`, `T ∉ S`);
//! * relations without `depend` clauses default to the *standard semantics*
//!   dependency set over their domain models (§2.2 conservativity);
//! * every relation invocation is direction-type-checked: for each
//!   dependency `S → T` of the caller, the callee must entail the projected
//!   direction (`D ⊢ d`, §2.3), via linear-time Horn entailment. A `where`
//!   call whose callee has no domain on the target model is rejected — the
//!   situation the standard is omissive about.

use crate::ast::*;
use crate::hir::*;
use crate::lexer::Span;
use mmt_deps::{Dep, DepSet, DomIdx, DomSet};
use mmt_model::{AttrType, Metamodel, Sym, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Classified resolution error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolveErrorKind {
    /// A name could not be resolved.
    Unknown(String),
    /// A name was declared twice.
    Duplicate(String),
    /// A type error in patterns or expressions.
    Type(String),
    /// An ill-formed `depend` clause.
    Dependency(String),
    /// A relation invocation violating the §2.3 direction typing rule.
    Direction(String),
}

/// A resolution error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolveError {
    /// Where.
    pub span: Span,
    /// What.
    pub kind: ResolveErrorKind,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (label, msg) = match &self.kind {
            ResolveErrorKind::Unknown(m) => ("unknown name", m),
            ResolveErrorKind::Duplicate(m) => ("duplicate", m),
            ResolveErrorKind::Type(m) => ("type error", m),
            ResolveErrorKind::Dependency(m) => ("bad dependency", m),
            ResolveErrorKind::Direction(m) => ("direction type error", m),
        };
        write!(f, "{}: {label}: {msg}", self.span)
    }
}

impl std::error::Error for ResolveError {}

fn err(span: Span, kind: ResolveErrorKind) -> ResolveError {
    ResolveError { span, kind }
}

/// Resolves `ast` against `metamodels` (matched by metamodel name).
pub fn resolve(
    ast: &AstTransformation,
    metamodels: &[Arc<Metamodel>],
) -> Result<Hir, ResolveError> {
    // Model parameters.
    let mut models: Vec<ModelParam> = Vec::with_capacity(ast.models.len());
    let mut model_idx: HashMap<Sym, DomIdx> = HashMap::new();
    if ast.models.len() > mmt_deps::MAX_DOMAINS {
        return Err(err(
            ast.span,
            ResolveErrorKind::Dependency(format!(
                "transformations support at most {} models",
                mmt_deps::MAX_DOMAINS
            )),
        ));
    }
    for (i, p) in ast.models.iter().enumerate() {
        let name = Sym::new(&p.name);
        if model_idx.insert(name, DomIdx(i as u8)).is_some() {
            return Err(err(
                p.span,
                ResolveErrorKind::Duplicate(format!("model parameter `{}`", p.name)),
            ));
        }
        let mm_name = Sym::new(&p.metamodel);
        let meta = metamodels
            .iter()
            .find(|m| m.name == mm_name)
            .cloned()
            .ok_or_else(|| {
                err(
                    p.span,
                    ResolveErrorKind::Unknown(format!("metamodel `{}`", p.metamodel)),
                )
            })?;
        models.push(ModelParam { name, meta });
    }
    let arity = models.len();

    // Pass A: register relation names.
    let mut rel_ids: HashMap<Sym, RelId> = HashMap::new();
    for (i, r) in ast.relations.iter().enumerate() {
        let name = Sym::new(&r.name);
        if rel_ids.insert(name, RelId(i as u32)).is_some() {
            return Err(err(
                r.span,
                ResolveErrorKind::Duplicate(format!("relation `{}`", r.name)),
            ));
        }
    }

    // Pass B1: resolve variables, domains and dependency sets.
    let mut partial: Vec<PartialRelation> = Vec::with_capacity(ast.relations.len());
    for r in &ast.relations {
        partial.push(resolve_structure(r, &models, &model_idx, arity)?);
    }

    // Pass B2: resolve when/where and type-check calls & directions.
    let mut relations: Vec<HirRelation> = Vec::with_capacity(partial.len());
    for (i, r) in ast.relations.iter().enumerate() {
        let p = &partial[i];
        let when = r
            .when
            .as_ref()
            .map(|e| resolve_expr(e, p, &models, &rel_ids, &partial))
            .transpose()?;
        let where_ = r
            .where_
            .as_ref()
            .map(|e| resolve_expr(e, p, &models, &rel_ids, &partial))
            .transpose()?;
        // Direction typing of calls, per attached dependency of the caller.
        if let Some(w) = &when {
            check_call_directions(w, p, &partial, CallSite::When, r.span)?;
        }
        if let Some(w) = &where_ {
            check_call_directions(w, p, &partial, CallSite::Where, r.span)?;
        }
        relations.push(HirRelation {
            name: p.name,
            is_top: r.is_top,
            vars: p.vars.clone(),
            domains: p.domains.clone(),
            when,
            where_,
            deps: p.deps.clone(),
        });
    }
    Ok(Hir::new(Sym::new(&ast.name), models, relations))
}

/// Relation structure resolved in pass B1 (everything but when/where).
struct PartialRelation {
    name: Sym,
    vars: Vec<HirVar>,
    var_ids: HashMap<Sym, VarId>,
    domains: Vec<HirDomain>,
    deps: DepSet,
}

fn resolve_structure(
    r: &AstRelation,
    models: &[ModelParam],
    model_idx: &HashMap<Sym, DomIdx>,
    arity: usize,
) -> Result<PartialRelation, ResolveError> {
    let mut p = PartialRelation {
        name: Sym::new(&r.name),
        vars: Vec::new(),
        var_ids: HashMap::new(),
        domains: Vec::new(),
        deps: DepSet::new(arity),
    };
    // Declared primitive variables.
    for v in &r.vars {
        let ty = match v.ty.as_str() {
            "Str" | "String" => AttrType::Str,
            "Bool" | "Boolean" => AttrType::Bool,
            "Int" | "Integer" => AttrType::Int,
            other => {
                return Err(err(
                    v.span,
                    ResolveErrorKind::Unknown(format!("primitive type `{other}`")),
                ))
            }
        };
        declare_var(&mut p, Sym::new(&v.name), VarTy::Prim(ty), v.span)?;
    }
    // Domains.
    for d in &r.domains {
        let model = *model_idx.get(&Sym::new(&d.model)).ok_or_else(|| {
            err(
                d.span,
                ResolveErrorKind::Unknown(format!("model parameter `{}`", d.model)),
            )
        })?;
        if p.domains.iter().any(|dom| dom.model == model) {
            return Err(err(
                d.span,
                ResolveErrorKind::Duplicate(format!(
                    "domain over model `{}` in relation `{}`",
                    d.model, r.name
                )),
            ));
        }
        let meta = &models[model.index()].meta;
        let mut constraints = Vec::new();
        let mut dvars = Vec::new();
        let root = resolve_template(
            &d.template,
            model,
            meta,
            &mut p,
            &mut constraints,
            &mut dvars,
        )?;
        let class = match p.vars[root.index()].ty {
            VarTy::Obj { class, .. } => class,
            VarTy::Prim(_) => unreachable!("template root is an object var"),
        };
        p.domains.push(HirDomain {
            model,
            root,
            class,
            constraints,
            vars: dvars,
        });
    }
    if p.domains.len() < 2 {
        return Err(err(
            r.span,
            ResolveErrorKind::Dependency(format!(
                "relation `{}` needs at least two domains",
                r.name
            )),
        ));
    }
    // Dependencies.
    let dom_models = DomSet::from_iter(p.domains.iter().map(|d| d.model));
    if r.depends.is_empty() {
        // §2.2: the conservative default — standard semantics over the
        // relation's own domain models.
        for d in &p.domains {
            let dep = Dep::new(dom_models.without(d.model), d.model)
                .expect("target removed from sources");
            p.deps.add(dep).expect("arity-checked");
        }
    } else {
        for ad in &r.depends {
            let mut targets = Vec::new();
            for t in &ad.targets {
                let ti = *model_idx.get(&Sym::new(t)).ok_or_else(|| {
                    err(
                        ad.span,
                        ResolveErrorKind::Unknown(format!("model parameter `{t}`")),
                    )
                })?;
                if !dom_models.contains(ti) {
                    return Err(err(
                        ad.span,
                        ResolveErrorKind::Dependency(format!(
                            "target `{t}` is not a domain of relation `{}`",
                            r.name
                        )),
                    ));
                }
                targets.push(ti);
            }
            for alt in &ad.source_alts {
                let mut sources = DomSet::EMPTY;
                for s in alt {
                    let si = *model_idx.get(&Sym::new(s)).ok_or_else(|| {
                        err(
                            ad.span,
                            ResolveErrorKind::Unknown(format!("model parameter `{s}`")),
                        )
                    })?;
                    if !dom_models.contains(si) {
                        return Err(err(
                            ad.span,
                            ResolveErrorKind::Dependency(format!(
                                "source `{s}` is not a domain of relation `{}`",
                                r.name
                            )),
                        ));
                    }
                    sources = sources.with(si);
                }
                for &t in &targets {
                    let dep = Dep::new(sources, t)
                        .map_err(|e| err(ad.span, ResolveErrorKind::Dependency(e.to_string())))?;
                    p.deps
                        .add(dep)
                        .map_err(|e| err(ad.span, ResolveErrorKind::Dependency(e.to_string())))?;
                }
            }
        }
    }
    Ok(p)
}

fn declare_var(
    p: &mut PartialRelation,
    name: Sym,
    ty: VarTy,
    span: Span,
) -> Result<VarId, ResolveError> {
    if p.var_ids.contains_key(&name) {
        return Err(err(
            span,
            ResolveErrorKind::Duplicate(format!("variable `{name}`")),
        ));
    }
    let id = VarId(p.vars.len() as u32);
    p.vars.push(HirVar { name, ty });
    p.var_ids.insert(name, id);
    Ok(id)
}

/// Resolves a template, flattening it into constraints. Returns the root
/// variable.
fn resolve_template(
    t: &AstTemplate,
    model: DomIdx,
    meta: &Arc<Metamodel>,
    p: &mut PartialRelation,
    constraints: &mut Vec<Constraint>,
    dvars: &mut Vec<VarId>,
) -> Result<VarId, ResolveError> {
    let class = meta.class_named(&t.class).ok_or_else(|| {
        err(
            t.span,
            ResolveErrorKind::Unknown(format!("class `{}` in metamodel `{}`", t.class, meta.name)),
        )
    })?;
    let root = declare_var(p, Sym::new(&t.var), VarTy::Obj { model, class }, t.span)?;
    constraints.push(Constraint::Obj {
        var: root,
        model,
        class,
    });
    dvars.push(root);
    for item in &t.items {
        match item {
            AstTemplateItem::Attr { name, value, span } => {
                let psym = Sym::new(name);
                if let Some(attr) = meta.attr_of(class, psym) {
                    let decl_ty = meta.attr(attr).ty;
                    let rhs = match value {
                        AstExpr::Str(s, _) => Atom::Lit(Value::str(s)),
                        AstExpr::Int(i, _) => Atom::Lit(Value::Int(*i)),
                        AstExpr::Bool(b, _) => Atom::Lit(Value::Bool(*b)),
                        AstExpr::Var(vname, vspan) => {
                            let vsym = Sym::new(vname);
                            match p.var_ids.get(&vsym) {
                                Some(&vid) => match p.vars[vid.index()].ty {
                                    VarTy::Prim(t2) if t2 == decl_ty => Atom::Var(vid),
                                    VarTy::Prim(t2) => {
                                        return Err(err(
                                            *vspan,
                                            ResolveErrorKind::Type(format!(
                                                "variable `{vname}` has type {t2:?}, attribute `{name}` needs {decl_ty:?}"
                                            )),
                                        ))
                                    }
                                    VarTy::Obj { .. } => {
                                        return Err(err(
                                            *vspan,
                                            ResolveErrorKind::Type(format!(
                                                "object variable `{vname}` used in attribute position `{name}`"
                                            )),
                                        ))
                                    }
                                },
                                None => {
                                    // QVT-R implicit variable declaration.
                                    let vid =
                                        declare_var(p, vsym, VarTy::Prim(decl_ty), *vspan)?;
                                    Atom::Var(vid)
                                }
                            }
                        }
                        other => {
                            return Err(err(
                                other.span(),
                                ResolveErrorKind::Type(format!(
                                    "attribute `{name}` value must be a literal or a variable"
                                )),
                            ))
                        }
                    };
                    if let Atom::Lit(v) = rhs {
                        if v.ty() != decl_ty {
                            return Err(err(
                                *span,
                                ResolveErrorKind::Type(format!(
                                    "attribute `{name}` expects {decl_ty:?}"
                                )),
                            ));
                        }
                    }
                    if let Atom::Var(vid) = rhs {
                        if !dvars.contains(&vid) {
                            dvars.push(vid);
                        }
                    }
                    constraints.push(Constraint::AttrEq {
                        obj: root,
                        attr,
                        rhs,
                    });
                } else if let Some(rid) = meta.ref_of(class, psym) {
                    // `ref = v` with a plain variable.
                    let target_class = meta.reference(rid).target;
                    let vname = match value {
                        AstExpr::Var(v, _) => v,
                        other => {
                            return Err(err(
                                other.span(),
                                ResolveErrorKind::Type(format!(
                                    "reference `{name}` value must be a variable or nested template"
                                )),
                            ))
                        }
                    };
                    let vsym = Sym::new(vname);
                    let dst = match p.var_ids.get(&vsym) {
                        Some(&vid) => match p.vars[vid.index()].ty {
                            VarTy::Obj {
                                model: m2,
                                class: c2,
                            } => {
                                if m2 != model {
                                    return Err(err(
                                        *span,
                                        ResolveErrorKind::Type(format!(
                                            "reference `{name}` target `{vname}` lives in another model"
                                        )),
                                    ));
                                }
                                if !meta.conforms(c2, target_class) {
                                    return Err(err(
                                        *span,
                                        ResolveErrorKind::Type(format!(
                                            "reference `{name}` target `{vname}` has incompatible class"
                                        )),
                                    ));
                                }
                                vid
                            }
                            VarTy::Prim(_) => {
                                return Err(err(
                                    *span,
                                    ResolveErrorKind::Type(format!(
                                        "primitive variable `{vname}` used as reference target"
                                    )),
                                ))
                            }
                        },
                        None => declare_var(
                            p,
                            vsym,
                            VarTy::Obj {
                                model,
                                class: target_class,
                            },
                            *span,
                        )?,
                    };
                    if !dvars.contains(&dst) {
                        dvars.push(dst);
                    }
                    constraints.push(Constraint::RefContains {
                        obj: root,
                        r: rid,
                        dst,
                    });
                } else {
                    return Err(err(
                        *span,
                        ResolveErrorKind::Unknown(format!(
                            "property `{name}` on class `{}`",
                            t.class
                        )),
                    ));
                }
            }
            AstTemplateItem::RefVar { name, var, span } => {
                // Parser never emits this directly (kept for programmatic
                // AST construction); reuse the Attr path's logic.
                let item = AstTemplateItem::Attr {
                    name: name.clone(),
                    value: AstExpr::Var(var.clone(), *span),
                    span: *span,
                };
                let tpl = AstTemplate {
                    var: t.var.clone(),
                    class: t.class.clone(),
                    items: vec![item],
                    span: *span,
                };
                // Resolve just this item against the already-declared root:
                // simplest is to inline: but recursion would redeclare the
                // root. Handle by erroring: programmatic ASTs should use
                // `Attr` with a Var value.
                let _ = tpl;
                return Err(err(
                    *span,
                    ResolveErrorKind::Type(
                        "RefVar items are normalized to Attr items by the parser".into(),
                    ),
                ));
            }
            AstTemplateItem::RefTemplate {
                name,
                template,
                span,
            } => {
                let psym = Sym::new(name);
                let rid = meta.ref_of(class, psym).ok_or_else(|| {
                    err(
                        *span,
                        ResolveErrorKind::Unknown(format!(
                            "reference `{name}` on class `{}`",
                            t.class
                        )),
                    )
                })?;
                let target_class = meta.reference(rid).target;
                let nested = resolve_template(template, model, meta, p, constraints, dvars)?;
                let nclass = match p.vars[nested.index()].ty {
                    VarTy::Obj { class, .. } => class,
                    VarTy::Prim(_) => unreachable!(),
                };
                if !meta.conforms(nclass, target_class) {
                    return Err(err(
                        *span,
                        ResolveErrorKind::Type(format!(
                            "nested template class does not conform to reference `{name}` target"
                        )),
                    ));
                }
                constraints.push(Constraint::RefContains {
                    obj: root,
                    r: rid,
                    dst: nested,
                });
            }
        }
    }
    Ok(root)
}

/// Expression types for checking.
#[derive(Clone, Copy, PartialEq, Debug)]
enum ExprTy {
    Prim(AttrType),
    Obj(DomIdx, mmt_model::ClassId),
    Bool,
}

fn resolve_expr(
    e: &AstExpr,
    p: &PartialRelation,
    models: &[ModelParam],
    rel_ids: &HashMap<Sym, RelId>,
    partial: &[PartialRelation],
) -> Result<HirExpr, ResolveError> {
    let (h, _) = resolve_expr_ty(e, p, models, rel_ids, partial)?;
    Ok(h)
}

fn resolve_expr_ty(
    e: &AstExpr,
    p: &PartialRelation,
    models: &[ModelParam],
    rel_ids: &HashMap<Sym, RelId>,
    partial: &[PartialRelation],
) -> Result<(HirExpr, ExprTy), ResolveError> {
    match e {
        AstExpr::Str(s, _) => Ok((HirExpr::Lit(Value::str(s)), ExprTy::Prim(AttrType::Str))),
        AstExpr::Int(i, _) => Ok((HirExpr::Lit(Value::Int(*i)), ExprTy::Prim(AttrType::Int))),
        AstExpr::Bool(b, _) => Ok((HirExpr::Lit(Value::Bool(*b)), ExprTy::Prim(AttrType::Bool))),
        AstExpr::Var(name, span) => {
            let vid = *p.var_ids.get(&Sym::new(name)).ok_or_else(|| {
                err(
                    *span,
                    ResolveErrorKind::Unknown(format!("variable `{name}`")),
                )
            })?;
            let ty = match p.vars[vid.index()].ty {
                VarTy::Prim(t) => ExprTy::Prim(t),
                VarTy::Obj { model, class } => ExprTy::Obj(model, class),
            };
            Ok((HirExpr::Var(vid), ty))
        }
        AstExpr::Nav(vname, aname, span) => {
            let vid = *p.var_ids.get(&Sym::new(vname)).ok_or_else(|| {
                err(
                    *span,
                    ResolveErrorKind::Unknown(format!("variable `{vname}`")),
                )
            })?;
            let (model, class) = match p.vars[vid.index()].ty {
                VarTy::Obj { model, class } => (model, class),
                VarTy::Prim(_) => {
                    return Err(err(
                        *span,
                        ResolveErrorKind::Type(format!(
                            "`.{aname}` navigation on primitive variable `{vname}`"
                        )),
                    ))
                }
            };
            let meta = &models[model.index()].meta;
            let attr = meta.attr_of(class, Sym::new(aname)).ok_or_else(|| {
                err(
                    *span,
                    ResolveErrorKind::Unknown(format!(
                        "attribute `{aname}` on class `{}`",
                        meta.class(class).name
                    )),
                )
            })?;
            Ok((HirExpr::Nav(vid, attr), ExprTy::Prim(meta.attr(attr).ty)))
        }
        AstExpr::Cmp(op, a, b, span) => {
            let (ha, ta) = resolve_expr_ty(a, p, models, rel_ids, partial)?;
            let (hb, tb) = resolve_expr_ty(b, p, models, rel_ids, partial)?;
            let ok = match op {
                CmpOp::Eq | CmpOp::Neq => ta == tb,
                _ => ta == ExprTy::Prim(AttrType::Int) && tb == ExprTy::Prim(AttrType::Int),
            };
            if !ok {
                return Err(err(
                    *span,
                    ResolveErrorKind::Type(format!(
                        "comparison operand types mismatch ({ta:?} vs {tb:?})"
                    )),
                ));
            }
            Ok((HirExpr::Cmp(*op, Box::new(ha), Box::new(hb)), ExprTy::Bool))
        }
        AstExpr::And(a, b) | AstExpr::Or(a, b) | AstExpr::Implies(a, b) => {
            let (ha, ta) = resolve_expr_ty(a, p, models, rel_ids, partial)?;
            let (hb, tb) = resolve_expr_ty(b, p, models, rel_ids, partial)?;
            for (t, side) in [(ta, a), (tb, b)] {
                if !matches!(t, ExprTy::Bool | ExprTy::Prim(AttrType::Bool)) {
                    return Err(err(
                        side.span(),
                        ResolveErrorKind::Type("logical operand must be boolean".into()),
                    ));
                }
            }
            let h = match e {
                AstExpr::And(..) => HirExpr::And(Box::new(ha), Box::new(hb)),
                AstExpr::Or(..) => HirExpr::Or(Box::new(ha), Box::new(hb)),
                _ => HirExpr::Implies(Box::new(ha), Box::new(hb)),
            };
            Ok((h, ExprTy::Bool))
        }
        AstExpr::Not(a, span) => {
            let (ha, ta) = resolve_expr_ty(a, p, models, rel_ids, partial)?;
            if !matches!(ta, ExprTy::Bool | ExprTy::Prim(AttrType::Bool)) {
                return Err(err(
                    *span,
                    ResolveErrorKind::Type("`not` operand must be boolean".into()),
                ));
            }
            Ok((HirExpr::Not(Box::new(ha)), ExprTy::Bool))
        }
        AstExpr::Call(rname, args, span) => {
            let rid = *rel_ids.get(&Sym::new(rname)).ok_or_else(|| {
                err(
                    *span,
                    ResolveErrorKind::Unknown(format!("relation `{rname}`")),
                )
            })?;
            let callee = &partial[rid.index()];
            if callee.name == p.name {
                return Err(err(
                    *span,
                    ResolveErrorKind::Direction(format!("relation `{rname}` may not call itself")),
                ));
            }
            if args.len() != callee.domains.len() {
                return Err(err(
                    *span,
                    ResolveErrorKind::Type(format!(
                        "relation `{rname}` has {} domains, call passes {} arguments",
                        callee.domains.len(),
                        args.len()
                    )),
                ));
            }
            let mut arg_ids = Vec::with_capacity(args.len());
            for ((aname, aspan), dom) in args.iter().zip(&callee.domains) {
                let vid = *p.var_ids.get(&Sym::new(aname)).ok_or_else(|| {
                    err(
                        *aspan,
                        ResolveErrorKind::Unknown(format!("variable `{aname}`")),
                    )
                })?;
                match p.vars[vid.index()].ty {
                    VarTy::Obj { model, class } => {
                        if model != dom.model {
                            return Err(err(
                                *aspan,
                                ResolveErrorKind::Type(format!(
                                    "argument `{aname}` lives in model `{}`, callee domain expects `{}`",
                                    models[model.index()].name,
                                    models[dom.model.index()].name
                                )),
                            ));
                        }
                        let meta = &models[model.index()].meta;
                        if !meta.conforms(class, dom.class) {
                            return Err(err(
                                *aspan,
                                ResolveErrorKind::Type(format!(
                                    "argument `{aname}` class does not conform to callee domain class"
                                )),
                            ));
                        }
                    }
                    VarTy::Prim(_) => {
                        return Err(err(
                            *aspan,
                            ResolveErrorKind::Type(format!(
                                "primitive variable `{aname}` passed as relation argument"
                            )),
                        ))
                    }
                }
                arg_ids.push(vid);
            }
            Ok((HirExpr::Call(rid, arg_ids), ExprTy::Bool))
        }
    }
}

/// Whether a call occurs in `when` or `where`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CallSite {
    When,
    Where,
}

/// §2.3 direction typing: for each dependency `S → T` of the caller and
/// each call `Q(…)`, project the direction onto the callee's domain models
/// and require `Q̄ ⊢ (S ∩ dom Q) → T` when `T ∈ dom Q`. A `where` call with
/// `T ∉ dom Q` cannot constrain the target and is rejected.
fn check_call_directions(
    expr: &HirExpr,
    caller: &PartialRelation,
    partial: &[PartialRelation],
    site: CallSite,
    span: Span,
) -> Result<(), ResolveError> {
    let mut calls = Vec::new();
    expr.calls(&mut calls);
    for (rid, _) in calls {
        let callee = &partial[rid.index()];
        let callee_models = DomSet::from_iter(callee.domains.iter().map(|d| d.model));
        for dep in caller.deps.deps() {
            let proj_sources = dep.sources.intersect(callee_models);
            if callee_models.contains(dep.target) {
                let required = Dep::new(proj_sources, dep.target).expect("disjoint by caller dep");
                if !callee.deps.entails(required) {
                    return Err(err(
                        span,
                        ResolveErrorKind::Direction(format!(
                            "relation `{}` (deps {}) calls `{}` (deps {}), which does not entail the required direction {}",
                            caller.name, caller.deps, callee.name, callee.deps, required
                        )),
                    ));
                }
            } else if site == CallSite::Where {
                return Err(err(
                    span,
                    ResolveErrorKind::Direction(format!(
                        "`where` of relation `{}` calls `{}`, which has no domain over the target model of dependency {}",
                        caller.name, callee.name, dep
                    )),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use mmt_model::text::parse_metamodel;

    fn fm_cf_metamodels() -> Vec<Arc<Metamodel>> {
        let fm = parse_metamodel(
            "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }",
        )
        .unwrap();
        let cf = parse_metamodel("metamodel CF { class Feature { attr name: Str; } }").unwrap();
        vec![fm, cf]
    }

    const MF_SRC: &str = r#"
transformation FeatureConfig(cf1 : CF, cf2 : CF, fm : FM) {
  top relation MF {
    n : Str;
    domain cf1 s1 : Feature { name = n };
    domain cf2 s2 : Feature { name = n };
    domain fm  f  : Feature { name = n, mandatory = true };
    depend cf1 cf2 -> fm;
    depend fm -> cf1 cf2;
  }
}
"#;

    #[test]
    fn resolves_paper_mf() {
        let ast = parse(MF_SRC).unwrap();
        let hir = resolve(&ast, &fm_cf_metamodels()).unwrap();
        assert_eq!(hir.arity(), 3);
        let r = &hir.relations[0];
        assert_eq!(r.domains.len(), 3);
        // n + s1 + s2 + f = 4 variables.
        assert_eq!(r.vars.len(), 4);
        // deps: {cf1 cf2 → fm, fm → cf1, fm → cf2}.
        assert_eq!(r.deps.len(), 3);
        assert!(r.deps.deps().contains(&Dep::of(&[0, 1], 2)));
        assert!(r.deps.deps().contains(&Dep::of(&[2], 0)));
        assert!(r.deps.deps().contains(&Dep::of(&[2], 1)));
        // MF's pattern over fm includes mandatory = true.
        let fm_dom = r.domain_for_model(DomIdx(2)).unwrap();
        assert_eq!(fm_dom.constraints.len(), 3); // Obj + name + mandatory
    }

    #[test]
    fn default_is_standard_semantics() {
        let src = r#"
transformation T(cf1 : CF, cf2 : CF, fm : FM) {
  top relation R {
    n : Str;
    domain cf1 s1 : Feature { name = n };
    domain fm  f  : Feature { name = n };
  }
}
"#;
        let ast = parse(src).unwrap();
        let hir = resolve(&ast, &fm_cf_metamodels()).unwrap();
        let r = &hir.relations[0];
        // Standard semantics over the relation's own domains {cf1, fm}:
        // {fm → cf1, cf1 → fm}.
        assert_eq!(r.deps.len(), 2);
        assert!(r.deps.deps().contains(&Dep::of(&[2], 0)));
        assert!(r.deps.deps().contains(&Dep::of(&[0], 2)));
    }

    #[test]
    fn implicit_prim_vars() {
        let src = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    domain cf1 s : Feature { name = n };
    domain fm  f : Feature { name = n };
  }
}
"#;
        let ast = parse(src).unwrap();
        let hir = resolve(&ast, &fm_cf_metamodels()).unwrap();
        let r = &hir.relations[0];
        // s, n, f — n implicitly declared with the attribute's type.
        let n = r.var_named(Sym::new("n")).unwrap();
        assert_eq!(r.vars[n.index()].ty, VarTy::Prim(AttrType::Str));
    }

    #[test]
    fn unknown_names_rejected() {
        let mms = fm_cf_metamodels();
        let bad_class = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    domain cf1 s : Nope { };
    domain fm f : Feature { };
  }
}
"#;
        let e = resolve(&parse(bad_class).unwrap(), &mms).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Unknown(_)));

        let bad_attr = bad_class.replace("Nope { }", "Feature { nope = n }");
        let e = resolve(&parse(&bad_attr).unwrap(), &mms).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Unknown(_)));

        let bad_mm = bad_class.replace("cf1 : CF", "cf1 : ZZ");
        let e = resolve(&parse(&bad_mm).unwrap(), &mms).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Unknown(_)));
    }

    #[test]
    fn attr_type_mismatch_rejected() {
        let src = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    domain cf1 s : Feature { name = 42 };
    domain fm f : Feature { };
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Type(_)));
    }

    #[test]
    fn dependency_on_non_domain_model_rejected() {
        let src = r#"
transformation T(cf1 : CF, cf2 : CF, fm : FM) {
  top relation R {
    n : Str;
    domain cf1 s : Feature { name = n };
    domain fm f : Feature { name = n };
    depend cf2 -> fm;
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Dependency(_)));
    }

    #[test]
    fn reversed_call_direction_rejected() {
        // The paper's §2.3 example: R̄ = {a→b} calling S̄ = {b→a}.
        let mm = parse_metamodel("metamodel M { class K { attr name: Str; } }").unwrap();
        let src = r#"
transformation T(a : M, b : M) {
  relation S {
    n : Str;
    domain a x : K { name = n };
    domain b y : K { name = n };
    depend b -> a;
  }
  top relation R {
    m : Str;
    domain a u : K { name = m };
    domain b v : K { name = m };
    depend a -> b;
    where { S(u, v) }
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), std::slice::from_ref(&mm)).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Direction(_)));

        // Flipping the callee's dependency makes it well-typed.
        let ok = src.replace("depend b -> a;", "depend a -> b;");
        assert!(resolve(&parse(&ok).unwrap(), &[mm]).is_ok());
    }

    #[test]
    fn entailed_call_direction_accepted() {
        // Callee deps {a→b, b→c} entail the required a→c? The caller runs
        // a→c and the callee spans (a, c) only via entailment over three
        // domains — model space is shared, so S projects cleanly.
        let mm = parse_metamodel("metamodel M { class K { attr name: Str; } }").unwrap();
        let src = r#"
transformation T(a : M, b : M, c : M) {
  relation S {
    n : Str;
    domain a x : K { name = n };
    domain b y : K { name = n };
    domain c z : K { name = n };
    depend a -> b;
    depend b -> c;
  }
  top relation R {
    m : Str;
    domain a u : K { name = m };
    domain b v : K { name = m };
    domain c w : K { name = m };
    depend a -> c;
    where { S(u, v, w) }
  }
}
"#;
        // Required direction for the call under caller dep a→c is
        // {a} → c; callee deps {a→b, b→c} ⊢ a→c. Accepted.
        assert!(resolve(&parse(src).unwrap(), &[mm]).is_ok());
    }

    #[test]
    fn where_call_without_target_domain_rejected() {
        // Caller runs towards fm; callee has no fm domain (the standard's
        // omissive case, which we flag statically).
        let mm1 = parse_metamodel("metamodel CF { class Feature { attr name: Str; } }").unwrap();
        let mm2 = parse_metamodel(
            "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }",
        )
        .unwrap();
        let src = r#"
transformation T(cf1 : CF, cf2 : CF, fm : FM) {
  relation S {
    n : Str;
    domain cf1 x : Feature { name = n };
    domain cf2 y : Feature { name = n };
  }
  top relation R {
    m : Str;
    domain cf1 u : Feature { name = m };
    domain cf2 v : Feature { name = m };
    domain fm  w : Feature { name = m };
    depend cf1 cf2 -> fm;
    where { S(u, v) }
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &[mm1, mm2]).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Direction(_)));
    }

    #[test]
    fn nested_template_resolution() {
        let mm = parse_metamodel(
            "metamodel UML { class Class { attr name: Str; ref attrs: Attribute [0..*] containment; } class Attribute { attr name: Str; } }",
        )
        .unwrap();
        let mm2 = parse_metamodel(
            "metamodel RDB { class Table { attr name: Str; ref cols: Column [0..*] containment; } class Column { attr name: Str; } }",
        )
        .unwrap();
        let src = r#"
transformation C2T(uml : UML, rdb : RDB) {
  top relation AttrToCol {
    cn, an : Str;
    domain uml c : Class { name = cn, attrs = a : Attribute { name = an } };
    domain rdb t : Table { name = cn, cols = col : Column { name = an } };
  }
}
"#;
        let hir = resolve(&parse(src).unwrap(), &[mm, mm2]).unwrap();
        let r = &hir.relations[0];
        // Each domain: Obj(root) + AttrEq + Obj(nested) + AttrEq + RefContains.
        assert_eq!(r.domains[0].constraints.len(), 5);
        assert_eq!(r.domains[0].vars.len(), 4); // c, cn, a, an
    }

    #[test]
    fn duplicate_domain_model_rejected() {
        let src = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    domain cf1 a : Feature { };
    domain cf1 b : Feature { };
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Duplicate(_)));
    }

    #[test]
    fn when_where_type_checked() {
        let mms = fm_cf_metamodels();
        let src = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    n : Str;
    domain cf1 s : Feature { name = n };
    domain fm f : Feature { name = n };
    when { n = 42 }
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &mms).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Type(_)));

        let ok = src.replace("n = 42", "f.mandatory = true and not (n = \"\")");
        assert!(resolve(&parse(&ok).unwrap(), &mms).is_ok());
    }

    #[test]
    fn self_call_rejected() {
        let src = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    n : Str;
    domain cf1 s : Feature { name = n };
    domain fm f : Feature { name = n };
    when { R(s, f) }
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Direction(_)));
    }

    // --- ISSUE 8: exercise every structural error site. ---

    #[test]
    fn too_many_model_parameters_rejected() {
        let params: Vec<String> = (0..=mmt_deps::MAX_DOMAINS)
            .map(|i| format!("m{i} : CF"))
            .collect();
        let src = format!(
            r#"
transformation T({}) {{
  top relation R {{
    n : Str;
    domain m0 a : Feature {{ name = n }};
    domain m1 b : Feature {{ name = n }};
  }}
}}
"#,
            params.join(", ")
        );
        let e = resolve(&parse(&src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Dependency(_)), "{e}");
        assert!(e.to_string().contains("at most"), "{e}");
    }

    #[test]
    fn duplicate_model_parameter_rejected() {
        let src = r#"
transformation T(cf1 : CF, cf1 : FM) {
  top relation R {
    domain cf1 a : Feature { };
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Duplicate(_)), "{e}");
        assert!(e.to_string().contains("model parameter `cf1`"), "{e}");
    }

    #[test]
    fn duplicate_relation_name_rejected() {
        let src = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    n : Str;
    domain cf1 a : Feature { name = n };
    domain fm b : Feature { name = n };
  }
  relation R {
    m : Str;
    domain cf1 c : Feature { name = m };
    domain fm d : Feature { name = m };
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Duplicate(_)), "{e}");
        assert!(e.to_string().contains("relation `R`"), "{e}");
    }

    #[test]
    fn unknown_primitive_type_rejected() {
        let src = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    n : Float;
    domain cf1 a : Feature { };
    domain fm b : Feature { };
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Unknown(_)), "{e}");
        assert!(e.to_string().contains("primitive type `Float`"), "{e}");
    }

    #[test]
    fn duplicate_variable_rejected() {
        let src = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    n : Str;
    n : Int;
    domain cf1 a : Feature { };
    domain fm b : Feature { };
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Duplicate(_)), "{e}");
        assert!(e.to_string().contains("variable `n`"), "{e}");
    }

    #[test]
    fn unknown_domain_model_rejected() {
        let src = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    domain zz a : Feature { };
    domain fm b : Feature { };
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Unknown(_)), "{e}");
        assert!(e.to_string().contains("model parameter `zz`"), "{e}");
    }

    #[test]
    fn single_domain_relation_rejected() {
        let src = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    domain cf1 a : Feature { };
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Dependency(_)), "{e}");
        assert!(e.to_string().contains("at least two domains"), "{e}");
    }

    #[test]
    fn dependency_target_outside_domains_rejected() {
        // `cf2` is a model of the transformation but not a domain of R.
        let src = r#"
transformation T(cf1 : CF, cf2 : CF, fm : FM) {
  top relation R {
    n : Str;
    domain cf1 s : Feature { name = n };
    domain fm f : Feature { name = n };
    depend cf1 -> cf2;
  }
}
"#;
        let e = resolve(&parse(src).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Dependency(_)), "{e}");
        assert!(e.to_string().contains("target `cf2`"), "{e}");
    }

    #[test]
    fn dependency_over_unknown_model_rejected() {
        let base = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    n : Str;
    domain cf1 s : Feature { name = n };
    domain fm f : Feature { name = n };
    depend cf1 -> fm;
  }
}
"#;
        // Unknown target name, then unknown source name.
        let bad_target = base.replace("depend cf1 -> fm;", "depend cf1 -> zz;");
        let e = resolve(&parse(&bad_target).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Unknown(_)), "{e}");
        assert!(e.to_string().contains("model parameter `zz`"), "{e}");

        let bad_source = base.replace("depend cf1 -> fm;", "depend zz -> fm;");
        let e = resolve(&parse(&bad_source).unwrap(), &fm_cf_metamodels()).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Unknown(_)), "{e}");
        assert!(e.to_string().contains("model parameter `zz`"), "{e}");
    }

    #[test]
    fn non_boolean_logical_operands_rejected() {
        let base = r#"
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    n : Str;
    domain cf1 s : Feature { name = n };
    domain fm f : Feature { name = n };
    when { f.mandatory = true }
  }
}
"#;
        let mms = fm_cf_metamodels();
        let and_str = base.replace("f.mandatory = true", "n and (f.mandatory = true)");
        let e = resolve(&parse(&and_str).unwrap(), &mms).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Type(_)), "{e}");
        assert!(e.to_string().contains("logical operand"), "{e}");

        let not_str = base.replace("f.mandatory = true", "not n");
        let e = resolve(&parse(&not_str).unwrap(), &mms).unwrap_err();
        assert!(matches!(e.kind, ResolveErrorKind::Type(_)), "{e}");
        assert!(e.to_string().contains("`not` operand"), "{e}");
    }

    #[test]
    fn bad_relation_calls_rejected() {
        let mm = parse_metamodel(
            "metamodel M { class K { attr name: Str; } class L { attr name: Str; } }",
        )
        .unwrap();
        let base = r#"
transformation T(a : M, b : M) {
  relation S {
    n : Str;
    domain a x : K { name = n };
    domain b y : K { name = n };
    depend a -> b;
  }
  top relation R {
    m : Str;
    domain a u : K { name = m };
    domain b v : K { name = m };
    depend a -> b;
    where { S(u, v) }
  }
}
"#;
        let check =
            |src: &str| resolve(&parse(src).unwrap(), std::slice::from_ref(&mm)).unwrap_err();

        // Unknown callee.
        let e = check(&base.replace("S(u, v)", "Q(u, v)"));
        assert!(matches!(e.kind, ResolveErrorKind::Unknown(_)), "{e}");
        assert!(e.to_string().contains("relation `Q`"), "{e}");

        // Arity mismatch.
        let e = check(&base.replace("S(u, v)", "S(u)"));
        assert!(matches!(e.kind, ResolveErrorKind::Type(_)), "{e}");
        assert!(e.to_string().contains("2 domains"), "{e}");

        // Unknown variable as argument.
        let e = check(&base.replace("S(u, v)", "S(zz, v)"));
        assert!(matches!(e.kind, ResolveErrorKind::Unknown(_)), "{e}");
        assert!(e.to_string().contains("variable `zz`"), "{e}");

        // Argument from the wrong model parameter.
        let e = check(&base.replace("S(u, v)", "S(v, u)"));
        assert!(matches!(e.kind, ResolveErrorKind::Type(_)), "{e}");
        assert!(e.to_string().contains("lives in model"), "{e}");

        // Argument whose class does not conform to the callee's domain.
        let e = check(&base.replace("domain a u : K { name = m }", "domain a u : L { name = m }"));
        assert!(matches!(e.kind, ResolveErrorKind::Type(_)), "{e}");
        assert!(e.to_string().contains("does not conform"), "{e}");

        // Primitive variable passed where an object is expected.
        let e = check(&base.replace("S(u, v)", "S(m, v)"));
        assert!(matches!(e.kind, ResolveErrorKind::Type(_)), "{e}");
        assert!(e.to_string().contains("primitive variable `m`"), "{e}");
    }
}
