//! Pretty-printer: renders a resolved [`Hir`] back to the surface syntax
//! accepted by [`crate::parser::parse`].
//!
//! Useful for the CLI (`mmt deps`), for debugging resolved specifications,
//! and for round-trip testing the front-end (print ∘ resolve ∘ parse is
//! the identity up to formatting).

use crate::ast::CmpOp;
use crate::hir::{Atom, Constraint, Hir, HirDomain, HirExpr, HirRelation, VarId};
use mmt_deps::DepSet;
use std::fmt::Write as _;

/// Renders a whole transformation.
pub fn print_hir(hir: &Hir) -> String {
    let mut s = String::new();
    let _ = write!(s, "transformation {}(", hir.name);
    for (i, m) in hir.models.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{} : {}", m.name, m.meta.name);
    }
    s.push_str(") {\n");
    for rel in &hir.relations {
        print_relation(hir, rel, &mut s);
    }
    s.push_str("}\n");
    s
}

fn print_relation(hir: &Hir, rel: &HirRelation, s: &mut String) {
    let _ = writeln!(
        s,
        "  {}relation {} {{",
        if rel.is_top { "top " } else { "" },
        rel.name
    );
    // Declared primitive variables: those not bound inside templates are
    // indistinguishable after resolution; declare every primitive
    // variable explicitly (legal, and re-resolves identically).
    let prims: Vec<(VarId, &crate::hir::HirVar)> = rel
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| (VarId(i as u32), v))
        .filter(|(_, v)| matches!(v.ty, crate::hir::VarTy::Prim(_)))
        .collect();
    for (_, v) in &prims {
        if let crate::hir::VarTy::Prim(ty) = v.ty {
            let _ = writeln!(s, "    {} : {};", v.name, ty.name());
        }
    }
    for d in &rel.domains {
        print_domain(hir, rel, d, s);
    }
    if let Some(w) = &rel.when {
        let _ = writeln!(s, "    when {{ {} }}", expr_str(hir, rel, w));
    }
    if let Some(w) = &rel.where_ {
        let _ = writeln!(s, "    where {{ {} }}", expr_str(hir, rel, w));
    }
    print_deps(hir, &rel.deps, s);
    s.push_str("  }\n");
}

fn print_domain(hir: &Hir, rel: &HirRelation, d: &HirDomain, s: &mut String) {
    let model = &hir.models[d.model.index()];
    let _ = write!(s, "    domain {} ", model.name);
    print_template(hir, rel, d, d.root, s);
    s.push_str(";\n");
}

/// Prints the template rooted at `root` by reassembling the flattened
/// constraints owned by that object variable.
fn print_template(hir: &Hir, rel: &HirRelation, d: &HirDomain, root: VarId, s: &mut String) {
    let model = &hir.models[d.model.index()];
    let class = d
        .constraints
        .iter()
        .find_map(|c| match *c {
            Constraint::Obj { var, class, .. } if var == root => Some(class),
            _ => None,
        })
        .expect("every template var has an Obj constraint");
    let _ = write!(
        s,
        "{} : {} {{ ",
        rel.vars[root.index()].name,
        model.meta.class(class).name
    );
    let mut first = true;
    for c in &d.constraints {
        match *c {
            Constraint::AttrEq { obj, attr, rhs } if obj == root => {
                if !first {
                    s.push_str(", ");
                }
                first = false;
                let _ = write!(s, "{} = ", model.meta.attr(attr).name);
                match rhs {
                    Atom::Lit(v) => {
                        let _ = write!(s, "{v}");
                    }
                    Atom::Var(v) => {
                        let _ = write!(s, "{}", rel.vars[v.index()].name);
                    }
                }
            }
            Constraint::RefContains { obj, r, dst } if obj == root => {
                if !first {
                    s.push_str(", ");
                }
                first = false;
                let _ = write!(s, "{} = ", model.meta.reference(r).name);
                print_template(hir, rel, d, dst, s);
            }
            _ => {}
        }
    }
    s.push_str(" }");
}

fn print_deps(hir: &Hir, deps: &DepSet, s: &mut String) {
    for dep in deps.deps() {
        s.push_str("    depend");
        for m in dep.sources.iter() {
            let _ = write!(s, " {}", hir.models[m.index()].name);
        }
        let _ = writeln!(s, " -> {};", hir.models[dep.target.index()].name);
    }
}

fn expr_str(hir: &Hir, rel: &HirRelation, e: &HirExpr) -> String {
    match e {
        HirExpr::Lit(v) => v.to_string(),
        HirExpr::Var(v) => rel.vars[v.index()].name.to_string(),
        HirExpr::Nav(v, attr) => {
            let model = match rel.vars[v.index()].ty {
                crate::hir::VarTy::Obj { model, .. } => model,
                crate::hir::VarTy::Prim(_) => unreachable!("navigation on object var"),
            };
            format!(
                "{}.{}",
                rel.vars[v.index()].name,
                hir.models[model.index()].meta.attr(*attr).name
            )
        }
        HirExpr::Cmp(op, a, b) => {
            let op = match op {
                CmpOp::Eq => "=",
                CmpOp::Neq => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {op} {}", expr_str(hir, rel, a), expr_str(hir, rel, b))
        }
        HirExpr::And(a, b) => format!("({} and {})", expr_str(hir, rel, a), expr_str(hir, rel, b)),
        HirExpr::Or(a, b) => format!("({} or {})", expr_str(hir, rel, a), expr_str(hir, rel, b)),
        HirExpr::Implies(a, b) => format!(
            "({} implies {})",
            expr_str(hir, rel, a),
            expr_str(hir, rel, b)
        ),
        HirExpr::Not(a) => format!("not ({})", expr_str(hir, rel, a)),
        HirExpr::Call(rid, args) => {
            let callee = hir.relation(*rid);
            let args: Vec<String> = args
                .iter()
                .map(|a| rel.vars[a.index()].name.to_string())
                .collect();
            format!("{}({})", callee.name, args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_resolve;
    use mmt_model::text::parse_metamodel;
    use mmt_model::Metamodel;
    use std::sync::Arc;

    fn mms() -> Vec<Arc<Metamodel>> {
        vec![
            parse_metamodel("metamodel CF { class Feature { attr name: Str; } }").unwrap(),
            parse_metamodel(
                "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }",
            )
            .unwrap(),
        ]
    }

    /// print ∘ resolve ∘ parse round-trips to a structurally identical HIR.
    #[test]
    fn round_trip_paper_mf() {
        let src = r#"
transformation F(cf1 : CF, cf2 : CF, fm : FM) {
  top relation MF {
    n : Str;
    domain cf1 s1 : Feature { name = n };
    domain cf2 s2 : Feature { name = n };
    domain fm  f  : Feature { name = n, mandatory = true };
    depend cf1 cf2 -> fm;
    depend fm -> cf1 cf2;
  }
}
"#;
        let mms = mms();
        let hir1 = parse_and_resolve(src, &mms).unwrap();
        let printed = print_hir(&hir1);
        let hir2 = parse_and_resolve(&printed, &mms)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        assert_structurally_equal(&hir1, &hir2, &printed);
    }

    #[test]
    fn round_trip_with_when_where_and_calls() {
        let src = r#"
transformation F(cf1 : CF, cf2 : CF, fm : FM) {
  relation Base {
    b : Str;
    domain cf1 p : Feature { name = b };
    domain fm  q : Feature { name = b };
    depend cf1 -> fm;
  }
  top relation R {
    n : Str;
    domain cf1 s : Feature { name = n };
    domain fm  f : Feature { name = n };
    when { not (n = "legacy") }
    where { Base(s, f) and f.mandatory = true }
    depend cf1 -> fm;
  }
}
"#;
        let mms = mms();
        let hir1 = parse_and_resolve(src, &mms).unwrap();
        let printed = print_hir(&hir1);
        let hir2 = parse_and_resolve(&printed, &mms)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        assert_structurally_equal(&hir1, &hir2, &printed);
    }

    #[test]
    fn round_trip_nested_templates() {
        let uml = parse_metamodel(
            "metamodel UML { class Class { attr name: Str; ref attrs: Attribute [0..*] containment; } class Attribute { attr name: Str; } }",
        )
        .unwrap();
        let rdb = parse_metamodel(
            "metamodel RDB { class Table { attr name: Str; ref cols: Column [0..*] containment; } class Column { attr name: Str; } }",
        )
        .unwrap();
        let src = r#"
transformation C2T(uml : UML, rdb : RDB) {
  top relation AttrToCol {
    cn, an : Str;
    domain uml c : Class { name = cn, attrs = a : Attribute { name = an } };
    domain rdb t : Table { name = cn, cols = col : Column { name = an } };
  }
}
"#;
        let mms = vec![uml, rdb];
        let hir1 = parse_and_resolve(src, &mms).unwrap();
        let printed = print_hir(&hir1);
        let hir2 = parse_and_resolve(&printed, &mms)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        assert_structurally_equal(&hir1, &hir2, &printed);
    }

    fn assert_structurally_equal(a: &Hir, b: &Hir, printed: &str) {
        assert_eq!(a.name, b.name, "{printed}");
        assert_eq!(a.models.len(), b.models.len());
        assert_eq!(a.relations.len(), b.relations.len());
        for (ra, rb) in a.relations.iter().zip(&b.relations) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.is_top, rb.is_top);
            assert_eq!(ra.vars.len(), rb.vars.len(), "{printed}");
            assert_eq!(ra.domains.len(), rb.domains.len());
            for (da, db) in ra.domains.iter().zip(&rb.domains) {
                assert_eq!(da.model, db.model);
                assert_eq!(da.class, db.class);
                assert_eq!(da.constraints.len(), db.constraints.len(), "{printed}");
            }
            assert_eq!(ra.deps.deps(), rb.deps.deps(), "{printed}");
            assert_eq!(ra.when.is_some(), rb.when.is_some());
            assert_eq!(ra.where_.is_some(), rb.where_.is_some());
        }
    }
}
