//! # mmt-qvtr — QVT-R language front-end
//!
//! A from-scratch front-end for the QVT-R relational language restricted to
//! the constructs the paper uses (object template patterns, `when`/`where`
//! clauses, relation invocations), extended with the paper's §2.2 *checking
//! dependencies* via `depend` clauses — the syntactic extension the paper
//! leaves open in §4.
//!
//! Pipeline: [`parser::parse`] (text → [`ast`]) then [`resolve::resolve`]
//! (AST + metamodels → typed [`hir`]). The HIR is what the checking and
//! enforcement engines consume.
//!
//! ```
//! use mmt_model::text::parse_metamodel;
//! use mmt_qvtr::parse_and_resolve;
//!
//! let cf = parse_metamodel("metamodel CF { class Feature { attr name: Str; } }").unwrap();
//! let fm = parse_metamodel(
//!     "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }").unwrap();
//! let hir = parse_and_resolve(r#"
//! transformation FeatureConfig(cf1 : CF, cf2 : CF, fm : FM) {
//!   top relation MF {
//!     n : Str;
//!     domain cf1 s1 : Feature { name = n };
//!     domain cf2 s2 : Feature { name = n };
//!     domain fm  f  : Feature { name = n, mandatory = true };
//!     depend cf1 cf2 -> fm;
//!     depend fm -> cf1 cf2;
//!   }
//! }"#, &[cf, fm]).unwrap();
//! assert_eq!(hir.arity(), 3);
//! ```

pub mod ast;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod resolve;

pub use ast::{AstExpr, AstRelation, AstTransformation, CmpOp};
pub use hir::{
    Atom, Constraint, Hir, HirDomain, HirExpr, HirRelation, HirVar, ModelParam, RelId, VarId, VarTy,
};
pub use lexer::Span;
pub use parser::SyntaxError;
pub use pretty::print_hir;
pub use resolve::{resolve, ResolveError, ResolveErrorKind};

use mmt_model::Metamodel;
use std::fmt;
use std::sync::Arc;

/// A front-end error: either syntactic or during resolution.
#[derive(Clone, Debug, PartialEq)]
pub enum FrontendError {
    /// Lexing/parsing failed.
    Syntax(SyntaxError),
    /// Resolution/type checking failed.
    Resolve(ResolveError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Syntax(e) => write!(f, "syntax error: {e}"),
            FrontendError::Resolve(e) => write!(f, "resolve error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<SyntaxError> for FrontendError {
    fn from(e: SyntaxError) -> Self {
        FrontendError::Syntax(e)
    }
}

impl From<ResolveError> for FrontendError {
    fn from(e: ResolveError) -> Self {
        FrontendError::Resolve(e)
    }
}

/// Parses and resolves a transformation in one step.
pub fn parse_and_resolve(src: &str, metamodels: &[Arc<Metamodel>]) -> Result<Hir, FrontendError> {
    let ast = parser::parse(src)?;
    Ok(resolve::resolve(&ast, metamodels)?)
}
