//! Recursive-descent parser for the QVT-R-like surface syntax.
//!
//! The grammar follows the QVT-R standard's relational syntax, extended
//! with the paper's `depend` clauses (§2.2; the standard leaves the
//! concrete syntax open, §4):
//!
//! ```text
//! transformation FeatureConfig(cf1 : CF, cf2 : CF, fm : FM) {
//!   top relation MF {
//!     n : Str;
//!     domain cf1 s1 : Feature { name = n };
//!     domain cf2 s2 : Feature { name = n };
//!     domain fm  f  : Feature { name = n, mandatory = true };
//!     depend cf1 cf2 -> fm;
//!     depend fm -> cf1 cf2;          // multi-target sugar
//!   }
//! }
//! ```
//!
//! `depend a | b -> c;` is the source-union sugar; both sugars expand to
//! plain dependencies per §2.3 before resolution.

use crate::ast::*;
use crate::lexer::{tokenize, Span, Token, TokenKind};
use std::fmt;

/// A parse error with position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SyntaxError {
    /// Where.
    pub span: Span,
    /// Why.
    pub msg: String,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.msg)
    }
}

impl std::error::Error for SyntaxError {}

/// Parses a complete transformation source.
pub fn parse(src: &str) -> Result<AstTransformation, SyntaxError> {
    let tokens = tokenize(src).map_err(|e| SyntaxError {
        span: e.span,
        msg: e.msg,
    })?;
    let mut p = P { tokens, pos: 0 };
    let t = p.transformation()?;
    p.expect_eof()?;
    Ok(t)
}

struct P {
    tokens: Vec<Token>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> SyntaxError {
        SyntaxError {
            span: self.peek().span,
            msg: msg.into(),
        }
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == word)
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.at_ident(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<Span, SyntaxError> {
        if self.at_ident(word) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{word}`, found {}", self.peek().kind)))
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Span, SyntaxError> {
        if self.peek().kind == kind {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, Span), SyntaxError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                let span = self.bump().span;
                Ok((s, span))
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), SyntaxError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("expected end of input, found {}", self.peek().kind)))
        }
    }

    fn transformation(&mut self) -> Result<AstTransformation, SyntaxError> {
        let span = self.expect_word("transformation")?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut models = Vec::new();
        loop {
            let (mname, mspan) = self.ident()?;
            self.expect(TokenKind::Colon)?;
            let (mm, _) = self.ident()?;
            models.push(AstModelParam {
                name: mname,
                metamodel: mm,
                span: mspan,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let mut relations = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            relations.push(self.relation()?);
        }
        Ok(AstTransformation {
            name,
            models,
            relations,
            span,
        })
    }

    fn relation(&mut self) -> Result<AstRelation, SyntaxError> {
        let is_top = self.eat_ident("top");
        self.expect_word("relation")?;
        let (name, span) = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut rel = AstRelation {
            name,
            is_top,
            vars: Vec::new(),
            domains: Vec::new(),
            when: None,
            where_: None,
            depends: Vec::new(),
            span,
        };
        while !self.eat(&TokenKind::RBrace) {
            if self.at_ident("domain") || self.at_ident("checkonly") || self.at_ident("enforce") {
                rel.domains.push(self.domain()?);
            } else if self.at_ident("when") {
                self.bump();
                self.expect(TokenKind::LBrace)?;
                let e = self.expr()?;
                self.expect(TokenKind::RBrace)?;
                if rel.when.replace(e).is_some() {
                    return Err(self.err("duplicate `when` clause"));
                }
            } else if self.at_ident("where") {
                self.bump();
                self.expect(TokenKind::LBrace)?;
                let e = self.expr()?;
                self.expect(TokenKind::RBrace)?;
                if rel.where_.replace(e).is_some() {
                    return Err(self.err("duplicate `where` clause"));
                }
            } else if self.at_ident("depend") {
                rel.depends.push(self.depend()?);
            } else {
                // Variable declaration: `a, b : Ty ;`
                let mut names = vec![self.ident()?];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.ident()?);
                }
                self.expect(TokenKind::Colon)?;
                let (ty, _) = self.ident()?;
                self.expect(TokenKind::Semi)?;
                for (n, s) in names {
                    rel.vars.push(AstVarDecl {
                        name: n,
                        ty: ty.clone(),
                        span: s,
                    });
                }
            }
        }
        Ok(rel)
    }

    fn domain(&mut self) -> Result<AstDomain, SyntaxError> {
        let qualifier = if self.at_ident("checkonly") || self.at_ident("enforce") {
            let (q, _) = self.ident()?;
            Some(q)
        } else {
            None
        };
        let span = self.expect_word("domain")?;
        let (model, _) = self.ident()?;
        let template = self.template()?;
        self.expect(TokenKind::Semi)?;
        Ok(AstDomain {
            model,
            template,
            qualifier,
            span,
        })
    }

    fn template(&mut self) -> Result<AstTemplate, SyntaxError> {
        let (var, span) = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let (class, _) = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut items = Vec::new();
        if !self.eat(&TokenKind::RBrace) {
            loop {
                items.push(self.template_item()?);
                if self.eat(&TokenKind::RBrace) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        Ok(AstTemplate {
            var,
            class,
            items,
            span,
        })
    }

    fn template_item(&mut self) -> Result<AstTemplateItem, SyntaxError> {
        let (name, span) = self.ident()?;
        self.expect(TokenKind::Eq)?;
        // Nested template: IDENT ':' IDENT '{'
        if matches!(self.peek().kind, TokenKind::Ident(_)) && self.peek2().kind == TokenKind::Colon
        {
            let template = self.template()?;
            return Ok(AstTemplateItem::RefTemplate {
                name,
                template,
                span,
            });
        }
        let value = self.primary()?;
        Ok(AstTemplateItem::Attr { name, value, span })
    }

    fn depend(&mut self) -> Result<AstDepend, SyntaxError> {
        let span = self.expect_word("depend")?;
        let mut source_alts = Vec::new();
        let mut alt = Vec::new();
        while !matches!(self.peek().kind, TokenKind::Arrow | TokenKind::Pipe) {
            let (n, _) = self.ident()?;
            alt.push(n);
            if self.eat(&TokenKind::Pipe) {
                if alt.is_empty() {
                    return Err(self.err("empty dependency source alternative"));
                }
                source_alts.push(std::mem::take(&mut alt));
            }
        }
        if self.peek().kind == TokenKind::Pipe {
            return Err(self.err("trailing `|` in dependency sources"));
        }
        if alt.is_empty() {
            return Err(self.err("dependency needs at least one source model"));
        }
        source_alts.push(alt);
        self.expect(TokenKind::Arrow)?;
        let mut targets = Vec::new();
        while !matches!(self.peek().kind, TokenKind::Semi) {
            let (n, _) = self.ident()?;
            targets.push(n);
        }
        if targets.is_empty() {
            return Err(self.err("dependency needs at least one target model"));
        }
        self.expect(TokenKind::Semi)?;
        Ok(AstDepend {
            source_alts,
            targets,
            span,
        })
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<AstExpr, SyntaxError> {
        self.implies()
    }

    fn implies(&mut self) -> Result<AstExpr, SyntaxError> {
        let lhs = self.or()?;
        if self.eat_ident("implies") {
            let rhs = self.implies()?; // right associative
            Ok(AstExpr::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<AstExpr, SyntaxError> {
        let mut lhs = self.and()?;
        while self.eat_ident("or") {
            let rhs = self.and()?;
            lhs = AstExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<AstExpr, SyntaxError> {
        let mut lhs = self.cmp()?;
        while self.eat_ident("and") {
            let rhs = self.cmp()?;
            lhs = AstExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<AstExpr, SyntaxError> {
        let lhs = self.unary()?;
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Neq => CmpOp::Neq,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        let span = self.bump().span;
        let rhs = self.unary()?;
        Ok(AstExpr::Cmp(op, Box::new(lhs), Box::new(rhs), span))
    }

    fn unary(&mut self) -> Result<AstExpr, SyntaxError> {
        if self.at_ident("not") {
            let span = self.bump().span;
            let inner = self.unary()?;
            return Ok(AstExpr::Not(Box::new(inner), span));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr, SyntaxError> {
        match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                let span = self.bump().span;
                Ok(AstExpr::Str(s, span))
            }
            TokenKind::Int(i) => {
                let span = self.bump().span;
                Ok(AstExpr::Int(i, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                match name.as_str() {
                    "true" => return Ok(AstExpr::Bool(true, span)),
                    "false" => return Ok(AstExpr::Bool(false, span)),
                    _ => {}
                }
                if self.eat(&TokenKind::Dot) {
                    let (attr, _) = self.ident()?;
                    return Ok(AstExpr::Nav(name, attr, span));
                }
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.ident()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(TokenKind::Comma)?;
                        }
                    }
                    return Ok(AstExpr::Call(name, args, span));
                }
                Ok(AstExpr::Var(name, span))
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MF_SRC: &str = r#"
transformation FeatureConfig(cf1 : CF, cf2 : CF, fm : FM) {
  top relation MF {
    n : Str;
    domain cf1 s1 : Feature { name = n };
    domain cf2 s2 : Feature { name = n };
    domain fm  f  : Feature { name = n, mandatory = true };
    depend cf1 cf2 -> fm;
    depend fm -> cf1 cf2;
  }
}
"#;

    #[test]
    fn parses_paper_mf() {
        let t = parse(MF_SRC).unwrap();
        assert_eq!(t.name, "FeatureConfig");
        assert_eq!(t.models.len(), 3);
        assert_eq!(t.relations.len(), 1);
        let r = &t.relations[0];
        assert!(r.is_top);
        assert_eq!(r.vars.len(), 1);
        assert_eq!(r.domains.len(), 3);
        assert_eq!(r.depends.len(), 2);
        assert_eq!(r.depends[0].source_alts, vec![vec!["cf1", "cf2"]]);
        assert_eq!(r.depends[0].targets, vec!["fm"]);
        assert_eq!(r.depends[1].targets, vec!["cf1", "cf2"]);
    }

    #[test]
    fn union_sugar() {
        let src = r#"
transformation T(a : A, b : B, c : C) {
  top relation R {
    domain a x : K { };
    domain b y : K { };
    domain c z : K { };
    depend a | b -> c;
  }
}
"#;
        let t = parse(src).unwrap();
        let d = &t.relations[0].depends[0];
        assert_eq!(d.source_alts.len(), 2);
        assert_eq!(d.source_alts[0], vec!["a"]);
        assert_eq!(d.source_alts[1], vec!["b"]);
    }

    #[test]
    fn when_where_and_calls() {
        let src = r#"
transformation T(a : A, b : B) {
  relation P {
    domain a x : K { };
    domain b y : K { };
  }
  top relation R {
    n : Str;
    domain a x : K { name = n };
    domain b y : K { name = n };
    when { x.kind = "persistent" and not (n = "") }
    where { P(x, y) implies y.kind = x.kind }
  }
}
"#;
        let t = parse(src).unwrap();
        let r = &t.relations[1];
        assert!(r.when.is_some());
        assert!(matches!(r.where_.as_ref().unwrap(), AstExpr::Implies(..)));
        assert!(!t.relations[0].is_top);
    }

    #[test]
    fn nested_templates() {
        let src = r#"
transformation T(a : A, b : B) {
  top relation R {
    cn : Str;
    domain a c : Class { name = cn, attrs = at : Attribute { name = cn } };
    domain b t : Table { name = cn };
  }
}
"#;
        let t = parse(src).unwrap();
        let dom = &t.relations[0].domains[0];
        assert_eq!(dom.template.items.len(), 2);
        assert!(matches!(
            dom.template.items[1],
            AstTemplateItem::RefTemplate { .. }
        ));
    }

    #[test]
    fn qualifiers_accepted() {
        let src = r#"
transformation T(a : A, b : B) {
  top relation R {
    checkonly domain a x : K { };
    enforce domain b y : K { };
  }
}
"#;
        let t = parse(src).unwrap();
        assert_eq!(
            t.relations[0].domains[0].qualifier.as_deref(),
            Some("checkonly")
        );
        assert_eq!(
            t.relations[0].domains[1].qualifier.as_deref(),
            Some("enforce")
        );
    }

    #[test]
    fn multi_var_decl() {
        let src = r#"
transformation T(a : A, b : B) {
  top relation R {
    n, m : Str;
    k : Int;
    domain a x : K { p = n, q = m, r = k };
    domain b y : K { p = n };
  }
}
"#;
        let t = parse(src).unwrap();
        assert_eq!(t.relations[0].vars.len(), 3);
        assert_eq!(t.relations[0].vars[1].name, "m");
        assert_eq!(t.relations[0].vars[2].ty, "Int");
    }

    #[test]
    fn error_positions() {
        let err = parse("transformation T(a : A) {\n  junk\n}").unwrap_err();
        assert_eq!(err.span.line, 2); // `junk` where `relation` was expected
    }

    #[test]
    fn rejects_empty_depend_parts() {
        let src = r#"
transformation T(a : A, b : B) {
  top relation R {
    domain a x : K { };
    domain b y : K { };
    depend -> b;
  }
}
"#;
        assert!(parse(src).is_err());
        let src2 = src.replace("depend -> b;", "depend a -> ;");
        assert!(parse(&src2).is_err());
    }

    #[test]
    fn trailing_input_rejected() {
        let src = "transformation T(a : A) { } extra";
        assert!(parse(src).is_err());
    }
}
