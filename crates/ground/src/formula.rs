//! Propositional formula IR, Tseitin transformation, and a weighted
//! sequential-counter encoding for cost bounds.
//!
//! The grounder builds [`Formula`] trees while instantiating quantifiers
//! and folds constants aggressively; [`CnfBuilder::add_formula`] then
//! clausifies via Tseitin (two-sided equivalences, safe under negation).
//! [`CnfBuilder::encode_cost_counter`] encodes `Σ wᵢ·xᵢ ≥ j` indicator
//! outputs, which the repair loop bounds via solver assumptions — the
//! PMax-SAT-style "increasing distance" search of §3.

use mmt_sat::{Lit, Solver, Var};

/// A propositional formula with constants.
#[derive(Clone, Debug)]
pub enum Formula {
    /// Constant truth value.
    Const(bool),
    /// A solver literal.
    Lit(Lit),
    /// Conjunction (empty = true).
    And(Vec<Formula>),
    /// Disjunction (empty = false).
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// Smart conjunction with constant folding.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::Const(true) => {}
                Formula::Const(false) => return Formula::Const(false),
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::Const(true),
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Smart disjunction with constant folding.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::Const(false) => {}
                Formula::Const(true) => return Formula::Const(true),
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::Const(false),
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Smart negation with constant folding.
    #[allow(clippy::should_implement_trait)] // by-value smart constructor
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::Const(b) => Formula::Const(!b),
            Formula::Lit(l) => Formula::Lit(l.negate()),
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// `a → b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::or(vec![Formula::not(a), b])
    }

    /// True when the formula is the constant `b`.
    pub fn is_const(&self, b: bool) -> bool {
        matches!(self, Formula::Const(x) if *x == b)
    }
}

/// Builds CNF into an [`mmt_sat::Solver`].
pub struct CnfBuilder {
    /// The backing solver.
    pub solver: Solver,
    /// Clauses added (for statistics).
    pub clauses_added: u64,
}

impl Default for CnfBuilder {
    fn default() -> Self {
        CnfBuilder::new()
    }
}

impl CnfBuilder {
    /// A fresh builder.
    pub fn new() -> CnfBuilder {
        CnfBuilder {
            solver: Solver::new(),
            clauses_added: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> Var {
        self.solver.new_var()
    }

    /// Adds a raw clause.
    pub fn clause(&mut self, lits: &[Lit]) {
        self.solver.add_clause(lits);
        self.clauses_added += 1;
    }

    /// Asserts `f` (top-level truth).
    pub fn add_formula(&mut self, f: Formula) {
        match f {
            Formula::Const(true) => {}
            Formula::Const(false) => {
                self.clause(&[]);
            }
            Formula::Lit(l) => self.clause(&[l]),
            Formula::And(parts) => {
                for p in parts {
                    self.add_formula(p);
                }
            }
            Formula::Or(parts) => {
                let lits: Vec<Lit> = parts.into_iter().map(|p| self.tseitin(p)).collect();
                self.clause(&lits);
            }
            Formula::Not(inner) => {
                let l = self.tseitin(*inner);
                self.clause(&[l.negate()]);
            }
        }
    }

    /// Returns a literal equivalent to `f`, introducing aux variables.
    pub fn tseitin(&mut self, f: Formula) -> Lit {
        match f {
            Formula::Const(b) => {
                // A constant literal: allocate once per builder would be
                // nicer; constants are rare after folding.
                let v = self.fresh();
                let l = Lit::new(v, b);
                self.clause(&[l]);
                l
            }
            Formula::Lit(l) => l,
            Formula::Not(inner) => self.tseitin(*inner).negate(),
            Formula::And(parts) => {
                let lits: Vec<Lit> = parts.into_iter().map(|p| self.tseitin(p)).collect();
                let out = Lit::pos(self.fresh());
                // out → each lit; (⋀ lits) → out.
                let mut back: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
                for &l in &lits {
                    self.clause(&[out.negate(), l]);
                    back.push(l.negate());
                }
                back.push(out);
                self.clause(&back);
                out
            }
            Formula::Or(parts) => {
                let lits: Vec<Lit> = parts.into_iter().map(|p| self.tseitin(p)).collect();
                let out = Lit::pos(self.fresh());
                // each lit → out; out → ⋁ lits.
                let mut fwd: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
                fwd.push(out.negate());
                for &l in &lits {
                    self.clause(&[l.negate(), out]);
                    fwd.push(l);
                }
                self.clause(&fwd);
                out
            }
        }
    }

    /// Weighted sequential counter: returns `outs` where `outs[j-1]`
    /// (1-based j) is forced true whenever `Σ wᵢ·xᵢ ≥ j`, for
    /// `j ∈ 1..=bound+1`. Assuming `¬outs[k]` therefore enforces
    /// `Σ wᵢ·xᵢ ≤ k`. Weights are saturated at `bound+1`.
    pub fn encode_cost_counter(&mut self, items: &[(Lit, u64)], bound: u64) -> Vec<Lit> {
        let cap = (bound + 1) as usize;
        // prev[j-1] = indicator(sum of first i items ≥ j).
        let mut prev: Vec<Option<Lit>> = vec![None; cap];
        for &(x, w) in items {
            let w = (w.min(bound + 1)) as usize;
            if w == 0 {
                continue;
            }
            let mut cur: Vec<Option<Lit>> = vec![None; cap];
            for j in 1..=cap {
                // sum ≥ j if: previous sum ≥ j, or (x and previous ≥ j-w).
                let mut reasons: Vec<Vec<Lit>> = Vec::new();
                if let Some(p) = prev[j - 1] {
                    reasons.push(vec![p]);
                }
                if j <= w {
                    reasons.push(vec![x]);
                } else if let Some(p) = prev[j - w - 1] {
                    reasons.push(vec![x, p]);
                }
                if reasons.is_empty() {
                    cur[j - 1] = None;
                    continue;
                }
                let out = Lit::pos(self.fresh());
                for reason in reasons {
                    // (⋀ reason) → out.
                    let mut clause: Vec<Lit> = reason.iter().map(|l| l.negate()).collect();
                    clause.push(out);
                    self.clause(&clause);
                }
                cur[j - 1] = Some(out);
            }
            prev = cur;
        }
        // Materialize missing outputs as constant-false indicators.
        prev.into_iter()
            .map(|o| match o {
                Some(l) => l,
                None => {
                    let v = self.fresh();
                    let l = Lit::pos(v);
                    self.clause(&[l.negate()]);
                    l
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_sat::SatResult;

    #[test]
    fn constant_folding() {
        assert!(Formula::and(vec![Formula::Const(true), Formula::Const(true)]).is_const(true));
        assert!(Formula::and(vec![Formula::Const(false)]).is_const(false));
        assert!(Formula::or(vec![Formula::Const(false)]).is_const(false));
        assert!(Formula::or(vec![Formula::Const(true), Formula::Const(false)]).is_const(true));
        assert!(Formula::not(Formula::Const(true)).is_const(false));
        assert!(Formula::implies(Formula::Const(false), Formula::Const(false)).is_const(true));
    }

    #[test]
    fn tseitin_preserves_satisfiability() {
        let mut b = CnfBuilder::new();
        let x = Lit::pos(b.fresh());
        let y = Lit::pos(b.fresh());
        // (x ∧ ¬y) ∨ (¬x ∧ y)  — XOR, satisfiable.
        let f = Formula::or(vec![
            Formula::and(vec![Formula::Lit(x), Formula::Lit(y.negate())]),
            Formula::and(vec![Formula::Lit(x.negate()), Formula::Lit(y)]),
        ]);
        b.add_formula(f);
        assert_eq!(b.solver.solve(), SatResult::Sat);
        let vx = b.solver.value(x.var()).unwrap();
        let vy = b.solver.value(y.var()).unwrap();
        assert_ne!(vx, vy);
    }

    #[test]
    fn tseitin_unsat_contradiction() {
        let mut b = CnfBuilder::new();
        let x = Lit::pos(b.fresh());
        let f = Formula::and(vec![
            Formula::Lit(x),
            Formula::not(Formula::or(vec![Formula::Lit(x), Formula::Const(false)])),
        ]);
        b.add_formula(f);
        assert_eq!(b.solver.solve(), SatResult::Unsat);
    }

    /// Exhaustively verify the weighted counter against arithmetic for
    /// small item sets.
    #[test]
    fn cost_counter_exact() {
        let weights = [1u64, 2, 1, 3];
        let bound = 4u64;
        for mask in 0u32..(1 << weights.len()) {
            let mut b = CnfBuilder::new();
            let lits: Vec<Lit> = weights.iter().map(|_| Lit::pos(b.fresh())).collect();
            let items: Vec<(Lit, u64)> =
                lits.iter().copied().zip(weights.iter().copied()).collect();
            let outs = b.encode_cost_counter(&items, bound);
            assert_eq!(outs.len(), (bound + 1) as usize);
            // Fix the inputs according to the mask.
            let mut sum = 0u64;
            for (i, &l) in lits.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    b.solver.add_clause(&[l]);
                    sum += weights[i];
                } else {
                    b.solver.add_clause(&[l.negate()]);
                }
            }
            for k in 0..=bound {
                let res = b.solver.solve_with(&[outs[k as usize].negate()]);
                let expect_sat = sum <= k;
                assert_eq!(
                    res == SatResult::Sat,
                    expect_sat,
                    "mask={mask:b} sum={sum} k={k}"
                );
            }
        }
    }

    #[test]
    fn cost_counter_zero_weight_items_free() {
        let mut b = CnfBuilder::new();
        let x = Lit::pos(b.fresh());
        let outs = b.encode_cost_counter(&[(x, 0)], 2);
        b.solver.add_clause(&[x]);
        // Even at bound 0 the formula is satisfiable.
        assert_eq!(b.solver.solve_with(&[outs[0].negate()]), SatResult::Sat);
    }

    #[test]
    fn cost_counter_saturates_large_weights() {
        let mut b = CnfBuilder::new();
        let x = Lit::pos(b.fresh());
        let outs = b.encode_cost_counter(&[(x, 1000)], 3);
        b.solver.add_clause(&[x]);
        // Sum exceeds every bound ≤ 3.
        for (k, out) in outs.iter().enumerate().take(4) {
            assert_eq!(
                b.solver.solve_with(&[out.negate()]),
                SatResult::Unsat,
                "k={k}"
            );
        }
    }
}
