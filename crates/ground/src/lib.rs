//! # mmt-ground — bounded relational grounding to CNF
//!
//! The Alloy/Kodkod substitute (§3): embeds the extended QVT-R checking
//! semantics into propositional logic over a *bounded universe* and solves
//! for consistent target models at minimal distance from the originals.
//!
//! For every model the repair *shape* allows to change (the target set),
//! the grounder builds a symbolic universe: the original objects plus
//! `slack` fresh objects per concrete class. Decision variables encode
//! object liveness, one-hot attribute values over the active domain
//! (original values across all models, plus fresh string symbols), and
//! per-pair links. Every directional check `R_{S→T}` of every top relation
//! is instantiated over the universe; cost literals mirror
//! [`mmt_dist::Delta`]'s operation costs; a weighted sequential counter
//! bounds the total cost, and [`GroundProblem::solve_min_cost`] relaxes
//! the bound `k = 0, 1, 2, …` — precisely the paper's "iterative process
//! of searching for all consistent models at increasing distance".

pub mod formula;

use formula::{CnfBuilder, Formula};
use mmt_deps::{Dep, DomIdx, DomSet};
use mmt_dist::{CostModel, TupleCost};
use mmt_model::{AttrId, AttrType, ClassId, Model, ObjId, RefId, Sym, Upper, Value};
use mmt_qvtr::{Atom, CmpOp, Constraint, Hir, HirExpr, HirRelation, RelId, VarId, VarTy};
use mmt_sat::{Lit, SatResult, Var};
use std::collections::HashMap;
use std::fmt;

/// Universe bounds for the grounding.
#[derive(Clone, Copy, Debug)]
pub struct Scope {
    /// Fresh objects added per concrete class per mutable model.
    pub slack_objs: usize,
    /// Fresh string symbols added to the string domain.
    pub fresh_strings: usize,
}

impl Default for Scope {
    fn default() -> Self {
        Scope {
            slack_objs: 2,
            fresh_strings: 1,
        }
    }
}

/// Options for building a ground problem.
#[derive(Clone, Debug)]
pub struct GroundOptions {
    /// Universe bounds.
    pub scope: Scope,
    /// Per-operation costs (shared with the search engine).
    pub cost: CostModel,
    /// Per-model weight multipliers (§3 weighted tuple distance).
    pub tuple: TupleCost,
    /// Maximum total cost considered (the counter's bound).
    pub max_cost: u64,
    /// Cap on quantifier instantiations (guards against scope blow-ups).
    pub max_instantiations: u64,
}

impl Default for GroundOptions {
    fn default() -> Self {
        GroundOptions {
            scope: Scope::default(),
            cost: CostModel::default(),
            tuple: TupleCost::auto(),
            max_cost: 16,
            max_instantiations: 2_000_000,
        }
    }
}

/// Grounding statistics.
#[derive(Clone, Copy, Default, Debug)]
pub struct GroundStats {
    /// SAT variables allocated.
    pub vars: usize,
    /// Clauses emitted.
    pub clauses: u64,
    /// Universal-quantifier instantiations.
    pub universal_instantiations: u64,
    /// Cost literals (potential edits).
    pub cost_items: usize,
}

/// Errors raised while grounding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroundError {
    /// Reference multiplicities other than `0..1`, `1..1`, `0..*`, `1..*`
    /// are not encodable.
    UnsupportedMultiplicity {
        /// Reference name.
        reference: String,
    },
    /// The scope produced more instantiations than allowed.
    ScopeTooLarge {
        /// The cap that was exceeded.
        cap: u64,
    },
    /// A dependency targets a model with no domain in its relation.
    NoTargetDomain {
        /// Relation name.
        relation: Sym,
    },
    /// Relation call grounding recursed past the depth limit.
    RecursionLimit,
    /// Wrong number of models supplied.
    ModelCountMismatch {
        /// Expected.
        expected: usize,
        /// Got.
        got: usize,
    },
    /// An explicit tuple weighting does not match the tuple's arity.
    Tuple(mmt_dist::TupleArityError),
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::UnsupportedMultiplicity { reference } => {
                write!(f, "reference `{reference}`: only 0..1, 1..1, 0..*, 1..* multiplicities are encodable")
            }
            GroundError::ScopeTooLarge { cap } => {
                write!(f, "grounding exceeded {cap} quantifier instantiations")
            }
            GroundError::NoTargetDomain { relation } => {
                write!(f, "relation `{relation}`: dependency target lacks a domain")
            }
            GroundError::RecursionLimit => f.write_str("call grounding recursion limit"),
            GroundError::ModelCountMismatch { expected, got } => {
                write!(f, "expected {expected} models, got {got}")
            }
            GroundError::Tuple(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GroundError {}

/// An object in a mutable model's bounded universe.
#[derive(Clone, Copy, Debug)]
struct UObj {
    /// Id in the decoded model (original id, or fresh past the bound).
    id: ObjId,
    class: ClassId,
    original: bool,
}

/// Symbolic state of one mutable model.
struct MutModel {
    universe: Vec<UObj>,
    alive: Vec<Var>,
    /// `(universe idx, attr) → one-hot (value, var)` list.
    attr_vars: HashMap<(u32, AttrId), Vec<(Value, Var)>>,
    /// `(src universe idx, ref, dst universe idx) → var`.
    link_vars: HashMap<(u32, RefId, u32), Var>,
}

/// A ground value: an object (frozen id or universe index) or a constant.
#[derive(Clone, Copy, PartialEq, Debug)]
enum GVal {
    FrozenObj(ObjId),
    MutObj(u32),
    Val(Value),
}

type GBinding = Vec<Option<GVal>>;

/// A built ground problem, ready for minimal-cost solving.
pub struct GroundProblem<'a> {
    originals: &'a [Model],
    targets: DomSet,
    opts: GroundOptions,
    builder: CnfBuilder,
    muts: HashMap<u8, MutModel>,
    cost_outs: Vec<Lit>,
    stats: GroundStats,
}

impl<'a> GroundProblem<'a> {
    /// Grounds the consistency of `hir` over `models`, allowing only the
    /// models in `targets` to change.
    pub fn build(
        hir: &'a Hir,
        models: &'a [Model],
        targets: DomSet,
        mut opts: GroundOptions,
    ) -> Result<GroundProblem<'a>, GroundError> {
        if models.len() != hir.arity() {
            return Err(GroundError::ModelCountMismatch {
                expected: hir.arity(),
                got: models.len(),
            });
        }
        opts.tuple = opts
            .tuple
            .resolved(models.len())
            .map_err(GroundError::Tuple)?;
        let mut g = Grounder {
            hir,
            models,
            targets,
            opts: opts.clone(),
            builder: CnfBuilder::new(),
            muts: HashMap::new(),
            str_domain: Vec::new(),
            int_domain: Vec::new(),
            cost_items: Vec::new(),
            instantiations: 0,
            depth: 0,
        };
        g.collect_domains();
        g.build_universes()?;
        g.encode_consistency()?;
        let cost_items = std::mem::take(&mut g.cost_items);
        let cost_outs = g.builder.encode_cost_counter(&cost_items, opts.max_cost);
        let stats = GroundStats {
            vars: g.builder.solver.num_vars(),
            clauses: g.builder.clauses_added,
            universal_instantiations: g.instantiations,
            cost_items: cost_items.len(),
        };
        Ok(GroundProblem {
            originals: models,
            targets,
            opts,
            builder: g.builder,
            muts: g.muts,
            cost_outs,
            stats,
        })
    }

    /// Grounding statistics.
    pub fn stats(&self) -> GroundStats {
        self.stats
    }

    /// Finds consistent target models at minimal total cost, searching
    /// cost bounds `0, 1, …, max_cost` (§3's increasing-distance loop).
    /// Returns `(cost, decoded model tuple)` or `None` when no repair
    /// exists within the scope and cost bound.
    pub fn solve_min_cost(&mut self) -> Option<(u64, Vec<Model>)> {
        for k in 0..=self.opts.max_cost {
            let assumption = self.cost_outs[k as usize].negate();
            if self.builder.solver.solve_with(&[assumption]) == SatResult::Sat {
                let models = self.decode();
                return Some((k, models));
            }
        }
        None
    }

    /// Solves with cost ≤ `k`; returns the decoded tuple if satisfiable.
    pub fn solve_at_most(&mut self, k: u64) -> Option<Vec<Model>> {
        let k = k.min(self.opts.max_cost);
        let assumption = self.cost_outs[k as usize].negate();
        if self.builder.solver.solve_with(&[assumption]) == SatResult::Sat {
            Some(self.decode())
        } else {
            None
        }
    }

    /// Decodes the current SAT model into a full model tuple (targets
    /// rebuilt from the assignment, non-targets cloned).
    fn decode(&self) -> Vec<Model> {
        let solver = &self.builder.solver;
        let mut out = Vec::with_capacity(self.originals.len());
        for (i, orig) in self.originals.iter().enumerate() {
            let mi = DomIdx(i as u8);
            if !self.targets.contains(mi) {
                out.push(orig.clone());
                continue;
            }
            let mm = &self.muts[&mi.0];
            let meta = orig.metamodel();
            let mut m = Model::new(&orig.name.resolve(), std::sync::Arc::clone(meta));
            // Objects.
            for (u, obj) in mm.universe.iter().enumerate() {
                if solver.value(mm.alive[u]) == Some(true) {
                    m.add_at(obj.id, obj.class).expect("fresh id space");
                }
            }
            // Attributes.
            for (u, obj) in mm.universe.iter().enumerate() {
                if solver.value(mm.alive[u]) != Some(true) {
                    continue;
                }
                for &attr in &meta.class(obj.class).all_attrs {
                    let vars = &mm.attr_vars[&(u as u32, attr)];
                    for &(v, var) in vars {
                        if solver.value(var) == Some(true) {
                            m.set_attr(obj.id, attr, v).expect("typed one-hot");
                            break;
                        }
                    }
                }
            }
            // Links.
            for (&(su, r, du), &var) in &mm.link_vars {
                if solver.value(var) == Some(true)
                    && solver.value(mm.alive[su as usize]) == Some(true)
                    && solver.value(mm.alive[du as usize]) == Some(true)
                {
                    let src = mm.universe[su as usize];
                    let dst = mm.universe[du as usize];
                    m.add_link(src.id, r, dst.id).expect("typed link var");
                }
            }
            out.push(m);
        }
        out
    }
}

/// Transient state while building.
struct Grounder<'a> {
    hir: &'a Hir,
    models: &'a [Model],
    targets: DomSet,
    opts: GroundOptions,
    builder: CnfBuilder,
    muts: HashMap<u8, MutModel>,
    str_domain: Vec<Value>,
    int_domain: Vec<Value>,
    cost_items: Vec<(Lit, u64)>,
    instantiations: u64,
    depth: u32,
}

const MAX_GROUND_DEPTH: u32 = 16;

impl<'a> Grounder<'a> {
    fn collect_domains(&mut self) {
        let mut strs: Vec<Value> = Vec::new();
        let mut ints: Vec<Value> = Vec::new();
        for m in self.models {
            let meta = m.metamodel();
            for (_, obj) in m.objects() {
                for (slot, &attr) in meta.class(obj.class).all_attrs.iter().enumerate() {
                    let v = obj.attrs[slot];
                    match meta.attr(attr).ty {
                        AttrType::Str => {
                            if !strs.contains(&v) {
                                strs.push(v);
                            }
                        }
                        AttrType::Int => {
                            if !ints.contains(&v) {
                                ints.push(v);
                            }
                        }
                        AttrType::Bool => {}
                    }
                }
            }
        }
        // Literal values mentioned in relation patterns/expressions also
        // belong to the active domain.
        for rel in &self.hir.relations {
            for d in &rel.domains {
                for c in &d.constraints {
                    if let Constraint::AttrEq {
                        rhs: Atom::Lit(v), ..
                    } = c
                    {
                        match v.ty() {
                            AttrType::Str if !strs.contains(v) => strs.push(*v),
                            AttrType::Int if !ints.contains(v) => ints.push(*v),
                            _ => {}
                        }
                    }
                }
            }
            for e in rel.when.iter().chain(rel.where_.iter()) {
                collect_expr_lits(e, &mut strs, &mut ints);
            }
        }
        for i in 0..self.opts.scope.fresh_strings {
            let v = Value::Str(Sym::new(&format!("$new{i}")));
            if !strs.contains(&v) {
                strs.push(v);
            }
        }
        // The empty string (attribute default) must be representable.
        let empty = Value::Str(Sym::new(""));
        if !strs.contains(&empty) {
            strs.push(empty);
        }
        // Likewise the Int default: a fresh object keeping its zeroed
        // attribute must cost nothing, so 0 has to be in the domain even
        // when every observed value (model or literal) is non-zero.
        let zero = Value::Int(0);
        if !ints.contains(&zero) {
            ints.push(zero);
        }
        self.str_domain = strs;
        self.int_domain = ints;
    }

    fn domain_of(&self, ty: AttrType) -> Vec<Value> {
        match ty {
            AttrType::Str => self.str_domain.clone(),
            AttrType::Int => self.int_domain.clone(),
            AttrType::Bool => vec![Value::Bool(false), Value::Bool(true)],
        }
    }

    fn build_universes(&mut self) -> Result<(), GroundError> {
        for t in self.targets.iter() {
            let model = &self.models[t.index()];
            let meta = model.metamodel();
            let mut universe: Vec<UObj> = Vec::new();
            for (id, obj) in model.objects() {
                universe.push(UObj {
                    id,
                    class: obj.class,
                    original: true,
                });
            }
            let mut next = model.id_bound() as u32;
            for (cid, class) in meta.classes() {
                if class.is_abstract {
                    continue;
                }
                for _ in 0..self.opts.scope.slack_objs {
                    universe.push(UObj {
                        id: ObjId(next),
                        class: cid,
                        original: false,
                    });
                    next += 1;
                }
            }
            let mut mm = MutModel {
                alive: Vec::with_capacity(universe.len()),
                attr_vars: HashMap::new(),
                link_vars: HashMap::new(),
                universe,
            };
            let weight = self.opts.tuple.weight(t.index());
            // Liveness + object-level costs.
            for u in 0..mm.universe.len() {
                let v = self.builder.fresh();
                mm.alive.push(v);
                let obj = mm.universe[u];
                if obj.original {
                    self.cost_items
                        .push((Lit::neg(v), self.opts.cost.del_obj * weight));
                } else {
                    self.cost_items
                        .push((Lit::pos(v), self.opts.cost.add_obj * weight));
                }
            }
            // Attribute one-hots + change costs.
            for u in 0..mm.universe.len() {
                let obj = mm.universe[u];
                for &attr in &meta.class(obj.class).all_attrs {
                    let ty = meta.attr(attr).ty;
                    let domain = self.domain_of(ty);
                    let vars: Vec<(Value, Var)> = domain
                        .iter()
                        .map(|&val| (val, self.builder.fresh()))
                        .collect();
                    // Exactly one.
                    let all: Vec<Lit> = vars.iter().map(|&(_, v)| Lit::pos(v)).collect();
                    self.builder.clause(&all);
                    for i in 0..vars.len() {
                        for j in i + 1..vars.len() {
                            self.builder
                                .clause(&[Lit::neg(vars[i].1), Lit::neg(vars[j].1)]);
                        }
                    }
                    // Cost: changed ← alive ∧ (value ≠ baseline).
                    let baseline = if obj.original {
                        model.attr(obj.id, attr).expect("original object")
                    } else {
                        ty.default_value()
                    };
                    let chg = Lit::pos(self.builder.fresh());
                    for &(val, var) in &vars {
                        if val != baseline {
                            self.builder
                                .clause(&[Lit::neg(mm.alive[u]), Lit::neg(var), chg]);
                        }
                    }
                    self.cost_items
                        .push((chg, self.opts.cost.set_attr * weight));
                    mm.attr_vars.insert((u as u32, attr), vars);
                }
            }
            // Links + costs + structural constraints.
            for su in 0..mm.universe.len() {
                let sobj = mm.universe[su];
                for &r in &meta.class(sobj.class).all_refs {
                    let rdecl = meta.reference(r);
                    let mut slot_lits: Vec<Lit> = Vec::new();
                    for du in 0..mm.universe.len() {
                        let dobj = mm.universe[du];
                        if !meta.conforms(dobj.class, rdecl.target) {
                            continue;
                        }
                        let v = self.builder.fresh();
                        let l = Lit::pos(v);
                        // link → both endpoints alive.
                        self.builder.clause(&[l.negate(), Lit::pos(mm.alive[su])]);
                        self.builder.clause(&[l.negate(), Lit::pos(mm.alive[du])]);
                        let originally_linked =
                            sobj.original && dobj.original && model.has_link(sobj.id, r, dobj.id);
                        if originally_linked {
                            // Removal cost, charged only if both endpoints
                            // survive (otherwise DelObj already paid).
                            let chg = Lit::pos(self.builder.fresh());
                            self.builder.clause(&[
                                Lit::neg(mm.alive[su]),
                                Lit::neg(mm.alive[du]),
                                l,
                                chg,
                            ]);
                            self.cost_items
                                .push((chg, self.opts.cost.del_link * weight));
                            // A present link defaults to present: no cost
                            // for keeping it.
                        } else {
                            self.cost_items.push((l, self.opts.cost.add_link * weight));
                        }
                        slot_lits.push(l);
                        mm.link_vars.insert((su as u32, r, du as u32), v);
                    }
                    // Multiplicity bounds (alive sources only).
                    match (rdecl.lower, rdecl.upper) {
                        (0, Upper::Many) => {}
                        (1, Upper::Many) | (1, Upper::Bounded(1)) | (0, Upper::Bounded(1)) => {
                            if rdecl.lower == 1 {
                                // alive → at least one target.
                                let mut cl = vec![Lit::neg(mm.alive[su])];
                                cl.extend(slot_lits.iter().copied());
                                self.builder.clause(&cl);
                            }
                            if rdecl.upper == Upper::Bounded(1) {
                                for i in 0..slot_lits.len() {
                                    for j in i + 1..slot_lits.len() {
                                        self.builder.clause(&[
                                            slot_lits[i].negate(),
                                            slot_lits[j].negate(),
                                        ]);
                                    }
                                }
                            }
                        }
                        _ => {
                            return Err(GroundError::UnsupportedMultiplicity {
                                reference: rdecl.name.resolve(),
                            })
                        }
                    }
                }
            }
            // Single-container constraint for containment references.
            let mut containment_incoming: HashMap<u32, Vec<Lit>> = HashMap::new();
            for (&(_, r, du), &v) in &mm.link_vars {
                if meta.reference(r).containment {
                    containment_incoming
                        .entry(du)
                        .or_default()
                        .push(Lit::pos(v));
                }
            }
            for (_, incoming) in containment_incoming {
                for i in 0..incoming.len() {
                    for j in i + 1..incoming.len() {
                        self.builder
                            .clause(&[incoming[i].negate(), incoming[j].negate()]);
                    }
                }
            }
            self.muts.insert(t.0, mm);
        }
        Ok(())
    }

    fn encode_consistency(&mut self) -> Result<(), GroundError> {
        let top: Vec<RelId> = self.hir.top_relations().map(|(rid, _)| rid).collect();
        for rid in top {
            let deps: Vec<Dep> = self.hir.relation(rid).deps.deps().to_vec();
            for dep in deps {
                let binding = vec![None; self.hir.relation(rid).vars.len()];
                let f = self.ground_check(rid, dep, binding)?;
                self.builder.add_formula(f);
            }
        }
        Ok(())
    }

    /// Candidate ground values for a variable.
    fn candidates(&self, rel: &HirRelation, v: VarId) -> Vec<GVal> {
        match rel.vars[v.index()].ty {
            VarTy::Prim(ty) => self.domain_of(ty).into_iter().map(GVal::Val).collect(),
            VarTy::Obj { model, class } => {
                if let Some(mm) = self.muts.get(&model.0) {
                    let meta = self.models[model.index()].metamodel();
                    mm.universe
                        .iter()
                        .enumerate()
                        .filter(|(_, o)| meta.conforms(o.class, class))
                        .map(|(u, _)| GVal::MutObj(u as u32))
                        .collect()
                } else {
                    self.models[model.index()]
                        .objects_of(class)
                        .map(GVal::FrozenObj)
                        .collect()
                }
            }
        }
    }

    /// Grounds the directional check `rel_{dep}` with `binding` pre-fixed
    /// (used for call grounding, where roots are bound).
    fn ground_check(
        &mut self,
        rid: RelId,
        dep: Dep,
        binding: GBinding,
    ) -> Result<Formula, GroundError> {
        if self.depth >= MAX_GROUND_DEPTH {
            return Err(GroundError::RecursionLimit);
        }
        self.depth += 1;
        let result = self.ground_check_inner(rid, dep, binding);
        self.depth -= 1;
        result
    }

    fn ground_check_inner(
        &mut self,
        rid: RelId,
        dep: Dep,
        binding: GBinding,
    ) -> Result<Formula, GroundError> {
        let rel = self.hir.relation(rid).clone();
        if rel.domain_for_model(dep.target).is_none() {
            return Err(GroundError::NoTargetDomain { relation: rel.name });
        }
        // Universal side: patterns of S-domains + when-only object vars.
        let mut src_constraints: Vec<Constraint> = Vec::new();
        for d in &rel.domains {
            if dep.sources.contains(d.model) {
                src_constraints.extend_from_slice(&d.constraints);
            }
        }
        let mut src_vars: Vec<VarId> = Vec::new();
        for c in &src_constraints {
            constraint_vars(c, &mut src_vars);
        }
        if let Some(when) = &rel.when {
            let mut wv = Vec::new();
            when.free_vars(&mut wv);
            for v in wv {
                if !src_vars.contains(&v) && binding[v.index()].is_none() {
                    if let VarTy::Obj { model, class } = rel.vars[v.index()].ty {
                        src_constraints.push(Constraint::Obj {
                            var: v,
                            model,
                            class,
                        });
                    }
                    src_vars.push(v);
                }
            }
        }
        // Existential side.
        let tgt_domain = rel
            .domain_for_model(dep.target)
            .expect("checked above")
            .clone();
        let mut tgt_constraints: Vec<Constraint> = tgt_domain.constraints.clone();
        let mut tgt_vars: Vec<VarId> = Vec::new();
        for c in &tgt_constraints {
            constraint_vars(c, &mut tgt_vars);
        }
        if let Some(wher) = &rel.where_ {
            let mut wv = Vec::new();
            wher.free_vars(&mut wv);
            for v in wv {
                if !src_vars.contains(&v) && !tgt_vars.contains(&v) && binding[v.index()].is_none()
                {
                    if let VarTy::Obj { model, class } = rel.vars[v.index()].ty {
                        tgt_constraints.push(Constraint::Obj {
                            var: v,
                            model,
                            class,
                        });
                    }
                    tgt_vars.push(v);
                }
            }
        }
        // Enumerate universal bindings with pruning; the `when` condition
        // and source constraints form the antecedent, the existential
        // disjunction the consequent.
        let mut parts: Vec<Formula> = Vec::new();
        let mut b = binding;
        let src_c = src_constraints.clone();
        let tgt_c = tgt_constraints.clone();
        let rel2 = rel.clone();
        self.enum_bindings(&rel, &src_constraints, &mut b, &mut |g, b| {
            g.instantiations += 1;
            if g.instantiations > g.opts.max_instantiations {
                return Err(GroundError::ScopeTooLarge {
                    cap: g.opts.max_instantiations,
                });
            }
            let mut cond_parts: Vec<Formula> = Vec::with_capacity(src_c.len() + 1);
            for c in &src_c {
                cond_parts.push(g.constraint_formula(&rel2, c, b));
            }
            if let Some(when) = &rel2.when {
                cond_parts.push(g.expr_formula(&rel2, when, b, dep)?);
            }
            let cond = Formula::and(cond_parts);
            if cond.is_const(false) {
                return Ok(());
            }
            // Existential: Or over witness bindings.
            let mut wits: Vec<Formula> = Vec::new();
            let rel3 = rel2.clone();
            let tgt_cc = tgt_c.clone();
            g.enum_bindings(&rel2, &tgt_c, b, &mut |g, b| {
                let mut wparts: Vec<Formula> = Vec::with_capacity(tgt_cc.len() + 1);
                for c in &tgt_cc {
                    wparts.push(g.constraint_formula(&rel3, c, b));
                }
                if let Some(wher) = &rel3.where_ {
                    wparts.push(g.expr_formula(&rel3, wher, b, dep)?);
                }
                let w = Formula::and(wparts);
                if !w.is_const(false) {
                    wits.push(w);
                }
                Ok(())
            })?;
            parts.push(Formula::implies(cond, Formula::or(wits)));
            Ok(())
        })?;
        Ok(Formula::and(parts))
    }

    /// Enumerates assignments for the unbound variables of `constraints`,
    /// pruning branches where a fully-bound constraint folds to constant
    /// false. `visit` is called with the binding completed; the binding is
    /// restored afterwards.
    fn enum_bindings(
        &mut self,
        rel: &HirRelation,
        constraints: &[Constraint],
        binding: &mut GBinding,
        visit: &mut dyn FnMut(&mut Self, &mut GBinding) -> Result<(), GroundError>,
    ) -> Result<(), GroundError> {
        let mut vars: Vec<VarId> = Vec::new();
        for c in constraints {
            constraint_vars(c, &mut vars);
        }
        vars.retain(|v| binding[v.index()].is_none());
        self.enum_rec(rel, constraints, &vars, 0, binding, visit)
    }

    fn enum_rec(
        &mut self,
        rel: &HirRelation,
        constraints: &[Constraint],
        vars: &[VarId],
        at: usize,
        binding: &mut GBinding,
        visit: &mut dyn FnMut(&mut Self, &mut GBinding) -> Result<(), GroundError>,
    ) -> Result<(), GroundError> {
        if at >= vars.len() {
            return visit(self, binding);
        }
        let v = vars[at];
        let candidates = self.candidates(rel, v);
        for cand in candidates {
            binding[v.index()] = Some(cand);
            // Prune on constant-false fully-bound constraints.
            let mut dead = false;
            for c in constraints {
                let mut cv = Vec::new();
                constraint_vars(c, &mut cv);
                if cv.iter().all(|x| binding[x.index()].is_some())
                    && self.constraint_formula(rel, c, binding).is_const(false)
                {
                    dead = true;
                    break;
                }
            }
            if !dead {
                self.enum_rec(rel, constraints, vars, at + 1, binding, visit)?;
            }
            binding[v.index()] = None;
        }
        Ok(())
    }

    /// Translates a single constraint under a binding (all its vars bound).
    fn constraint_formula(&self, rel: &HirRelation, c: &Constraint, binding: &GBinding) -> Formula {
        match *c {
            Constraint::Obj { var, model, class } => match binding[var.index()] {
                Some(GVal::FrozenObj(o)) => {
                    let m = &self.models[model.index()];
                    Formula::Const(
                        m.get(o)
                            .map(|obj| m.metamodel().conforms(obj.class, class))
                            .unwrap_or(false),
                    )
                }
                Some(GVal::MutObj(u)) => {
                    let mm = &self.muts[&model.0];
                    let meta = self.models[model.index()].metamodel();
                    let obj = mm.universe[u as usize];
                    if meta.conforms(obj.class, class) {
                        Formula::Lit(Lit::pos(mm.alive[u as usize]))
                    } else {
                        Formula::Const(false)
                    }
                }
                _ => Formula::Const(false),
            },
            Constraint::AttrEq { obj, attr, rhs } => {
                let value = match rhs {
                    Atom::Lit(v) => v,
                    Atom::Var(v) => match binding[v.index()] {
                        Some(GVal::Val(val)) => val,
                        _ => return Formula::Const(false),
                    },
                };
                let model = obj_model(rel, obj);
                match binding[obj.index()] {
                    Some(GVal::FrozenObj(o)) => {
                        Formula::Const(self.models[model.index()].attr(o, attr) == Ok(value))
                    }
                    Some(GVal::MutObj(u)) => {
                        let mm = &self.muts[&model.0];
                        match mm.attr_vars.get(&(u, attr)) {
                            Some(vars) => vars
                                .iter()
                                .find(|&&(v, _)| v == value)
                                .map(|&(_, var)| Formula::Lit(Lit::pos(var)))
                                .unwrap_or(Formula::Const(false)),
                            None => Formula::Const(false),
                        }
                    }
                    _ => Formula::Const(false),
                }
            }
            Constraint::RefContains { obj, r, dst } => {
                let model = obj_model(rel, obj);
                match (binding[obj.index()], binding[dst.index()]) {
                    (Some(GVal::FrozenObj(s)), Some(GVal::FrozenObj(d))) => {
                        Formula::Const(self.models[model.index()].has_link(s, r, d))
                    }
                    (Some(GVal::MutObj(su)), Some(GVal::MutObj(du))) => {
                        let mm = &self.muts[&model.0];
                        mm.link_vars
                            .get(&(su, r, du))
                            .map(|&v| Formula::Lit(Lit::pos(v)))
                            .unwrap_or(Formula::Const(false))
                    }
                    _ => Formula::Const(false),
                }
            }
        }
    }

    /// Translates a boolean expression under a fully bound binding.
    fn expr_formula(
        &mut self,
        rel: &HirRelation,
        e: &HirExpr,
        binding: &GBinding,
        dir: Dep,
    ) -> Result<Formula, GroundError> {
        Ok(match e {
            HirExpr::Lit(Value::Bool(b)) => Formula::Const(*b),
            HirExpr::Lit(_) => unreachable!("type checker admits only booleans"),
            HirExpr::Var(v) => match binding[v.index()] {
                Some(GVal::Val(Value::Bool(b))) => Formula::Const(b),
                _ => unreachable!("type checker: boolean variable"),
            },
            HirExpr::Nav(v, attr) => match self.nav_term(rel, *v, *attr, binding) {
                Term::Const(Value::Bool(b)) => Formula::Const(b),
                Term::Const(_) => unreachable!("type checker: boolean attribute"),
                Term::ObjConst(_) => unreachable!("navigation yields a value"),
                Term::Slot(model, u) => {
                    let mm = &self.muts[&model.0];
                    let vars = &mm.attr_vars[&(u, *attr)];
                    vars.iter()
                        .find(|&&(val, _)| val == Value::Bool(true))
                        .map(|&(_, var)| Formula::Lit(Lit::pos(var)))
                        .unwrap_or(Formula::Const(false))
                }
            },
            HirExpr::Cmp(op, a, b) => self.cmp_formula(rel, *op, a, b, binding)?,
            HirExpr::And(a, b) => Formula::and(vec![
                self.expr_formula(rel, a, binding, dir)?,
                self.expr_formula(rel, b, binding, dir)?,
            ]),
            HirExpr::Or(a, b) => Formula::or(vec![
                self.expr_formula(rel, a, binding, dir)?,
                self.expr_formula(rel, b, binding, dir)?,
            ]),
            HirExpr::Implies(a, b) => Formula::implies(
                self.expr_formula(rel, a, binding, dir)?,
                self.expr_formula(rel, b, binding, dir)?,
            ),
            HirExpr::Not(a) => Formula::not(self.expr_formula(rel, a, binding, dir)?),
            HirExpr::Call(rid, args) => self.ground_call(*rid, args, binding, dir)?,
        })
    }

    fn nav_term(&self, rel: &HirRelation, v: VarId, attr: AttrId, binding: &GBinding) -> Term {
        let model = obj_model(rel, v);
        match binding[v.index()] {
            Some(GVal::FrozenObj(o)) => Term::Const(
                self.models[model.index()]
                    .attr(o, attr)
                    .expect("typed navigation"),
            ),
            Some(GVal::MutObj(u)) => Term::Slot(model, u),
            _ => unreachable!("navigation on bound object variable"),
        }
    }

    fn value_term(&self, rel: &HirRelation, e: &HirExpr, binding: &GBinding) -> Term {
        match e {
            HirExpr::Lit(v) => Term::Const(*v),
            HirExpr::Var(v) => match binding[v.index()] {
                Some(GVal::Val(val)) => Term::Const(val),
                Some(GVal::FrozenObj(o)) => Term::ObjConst(ObjRef::Frozen(o)),
                Some(GVal::MutObj(u)) => Term::ObjConst(ObjRef::Mut(obj_model(rel, *v), u)),
                None => unreachable!("type checker: bound variable"),
            },
            HirExpr::Nav(v, attr) => self.nav_term(rel, *v, *attr, binding),
            _ => unreachable!("type checker: value expression"),
        }
    }

    fn cmp_formula(
        &mut self,
        rel: &HirRelation,
        op: CmpOp,
        a: &HirExpr,
        b: &HirExpr,
        binding: &GBinding,
    ) -> Result<Formula, GroundError> {
        let ta = self.value_term(rel, a, binding);
        let tb = self.value_term(rel, b, binding);
        let eq = |x: &Term, y: &Term, g: &Self| -> Formula {
            match (x, y) {
                (Term::Const(v1), Term::Const(v2)) => Formula::Const(v1 == v2),
                (Term::ObjConst(o1), Term::ObjConst(o2)) => Formula::Const(o1 == o2),
                (Term::Const(v), Term::Slot(model, u)) | (Term::Slot(model, u), Term::Const(v)) => {
                    g.slot_eq_const(&g.muts[&model.0], *u, *v)
                }
                (Term::Slot(m1, u1), Term::Slot(m2, u2)) => g.slots_eq(*m1, *u1, *m2, *u2),
                _ => Formula::Const(false),
            }
        };
        Ok(match op {
            CmpOp::Eq => eq(&ta, &tb, self),
            CmpOp::Neq => Formula::not(eq(&ta, &tb, self)),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let cmp_ints = |x: i64, y: i64| match op {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    _ => unreachable!(),
                };
                match (&ta, &tb) {
                    (Term::Const(Value::Int(x)), Term::Const(Value::Int(y))) => {
                        Formula::Const(cmp_ints(*x, *y))
                    }
                    _ => {
                        let expand = |t: &Term, g: &Self| -> Vec<(i64, Formula)> {
                            match t {
                                Term::Const(Value::Int(x)) => {
                                    vec![(*x, Formula::Const(true))]
                                }
                                Term::Slot(model, u) => g
                                    .int_domain
                                    .iter()
                                    .map(|&v| {
                                        let Value::Int(x) = v else { unreachable!() };
                                        (x, g.slot_eq_const(&g.muts[&model.0], *u, v))
                                    })
                                    .collect(),
                                _ => vec![],
                            }
                        };
                        let xs = expand(&ta, self);
                        let ys = expand(&tb, self);
                        let mut alts = Vec::new();
                        for (x, fx) in &xs {
                            for (y, fy) in &ys {
                                if cmp_ints(*x, *y) {
                                    alts.push(Formula::and(vec![fx.clone(), fy.clone()]));
                                }
                            }
                        }
                        Formula::or(alts)
                    }
                }
            }
        })
    }

    /// `slot == const` using the one-hot list of the slot's attribute.
    fn slot_eq_const(&self, mm: &MutModel, u: u32, v: Value) -> Formula {
        for ((uu, _attr), vars) in &mm.attr_vars {
            if *uu != u {
                continue;
            }
            if let Some(&(_, var)) = vars.iter().find(|&&(val, _)| val == v) {
                return Formula::Lit(Lit::pos(var));
            }
        }
        Formula::Const(false)
    }

    fn slots_eq(&self, m1: DomIdx, u1: u32, m2: DomIdx, u2: u32) -> Formula {
        let mm1 = &self.muts[&m1.0];
        let mm2 = &self.muts[&m2.0];
        let mut alts = Vec::new();
        for ((uu, _), vars1) in &mm1.attr_vars {
            if *uu != u1 {
                continue;
            }
            for &(v, var1) in vars1 {
                for ((uu2, _), vars2) in &mm2.attr_vars {
                    if *uu2 != u2 {
                        continue;
                    }
                    if let Some(&(_, var2)) = vars2.iter().find(|&&(val, _)| val == v) {
                        alts.push(Formula::and(vec![
                            Formula::Lit(Lit::pos(var1)),
                            Formula::Lit(Lit::pos(var2)),
                        ]));
                    }
                }
            }
        }
        Formula::or(alts)
    }

    /// Grounds a relation invocation under the caller's direction (§2.3
    /// projection, mirroring the concrete evaluator).
    fn ground_call(
        &mut self,
        rid: RelId,
        args: &[VarId],
        binding: &GBinding,
        dir: Dep,
    ) -> Result<Formula, GroundError> {
        let callee = self.hir.relation(rid).clone();
        let callee_models = callee.domain_models();
        let proj_sources = dir.sources.intersect(callee_models);
        let proj_target = if callee_models.contains(dir.target) {
            Some(dir.target)
        } else {
            None
        };
        let mut cbinding: GBinding = vec![None; callee.vars.len()];
        for (dom, &arg) in callee.domains.iter().zip(args) {
            cbinding[dom.root.index()] =
                Some(binding[arg.index()].expect("call arguments are bound"));
        }
        match proj_target {
            Some(t) => {
                let dep = Dep::new(proj_sources.without(t), t).expect("t not in sources");
                self.ground_check(rid, dep, cbinding)
            }
            None => {
                // Closed predicate: ∃ extension satisfying all patterns +
                // when + where.
                let mut all: Vec<Constraint> = Vec::new();
                for d in &callee.domains {
                    all.extend_from_slice(&d.constraints);
                }
                let inner_dir = Dep {
                    sources: callee_models,
                    target: dir.target,
                };
                let mut wits: Vec<Formula> = Vec::new();
                let mut b = cbinding;
                let callee2 = callee.clone();
                let all2 = all.clone();
                self.enum_bindings(&callee, &all, &mut b, &mut |g, b| {
                    let mut parts: Vec<Formula> = Vec::new();
                    for c in &all2 {
                        parts.push(g.constraint_formula(&callee2, c, b));
                    }
                    if let Some(w) = &callee2.when {
                        parts.push(g.expr_formula(&callee2, w, b, inner_dir)?);
                    }
                    if let Some(w) = &callee2.where_ {
                        parts.push(g.expr_formula(&callee2, w, b, inner_dir)?);
                    }
                    let f = Formula::and(parts);
                    if !f.is_const(false) {
                        wits.push(f);
                    }
                    Ok(())
                })?;
                Ok(Formula::or(wits))
            }
        }
    }
}

/// A symbolic value term in expressions.
enum Term {
    Const(Value),
    ObjConst(ObjRef),
    Slot(DomIdx, u32),
}

#[derive(Clone, Copy, PartialEq)]
enum ObjRef {
    Frozen(ObjId),
    Mut(DomIdx, u32),
}

fn obj_model(rel: &HirRelation, v: VarId) -> DomIdx {
    match rel.vars[v.index()].ty {
        VarTy::Obj { model, .. } => model,
        VarTy::Prim(_) => unreachable!("object variable expected"),
    }
}

fn constraint_vars(c: &Constraint, out: &mut Vec<VarId>) {
    match *c {
        Constraint::Obj { var, .. } => {
            if !out.contains(&var) {
                out.push(var);
            }
        }
        Constraint::AttrEq { obj, rhs, .. } => {
            if !out.contains(&obj) {
                out.push(obj);
            }
            if let Atom::Var(v) = rhs {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        Constraint::RefContains { obj, dst, .. } => {
            if !out.contains(&obj) {
                out.push(obj);
            }
            if !out.contains(&dst) {
                out.push(dst);
            }
        }
    }
}

fn collect_expr_lits(e: &HirExpr, strs: &mut Vec<Value>, ints: &mut Vec<Value>) {
    match e {
        HirExpr::Lit(v) => match v.ty() {
            AttrType::Str => {
                if !strs.contains(v) {
                    strs.push(*v);
                }
            }
            AttrType::Int => {
                if !ints.contains(v) {
                    ints.push(*v);
                }
            }
            AttrType::Bool => {}
        },
        HirExpr::Cmp(_, a, b) => {
            collect_expr_lits(a, strs, ints);
            collect_expr_lits(b, strs, ints);
        }
        HirExpr::And(a, b) | HirExpr::Or(a, b) | HirExpr::Implies(a, b) => {
            collect_expr_lits(a, strs, ints);
            collect_expr_lits(b, strs, ints);
        }
        HirExpr::Not(a) => collect_expr_lits(a, strs, ints),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_check::Checker;
    use mmt_model::text::{parse_metamodel, parse_model};
    use mmt_model::Metamodel;
    use mmt_qvtr::parse_and_resolve;
    use std::sync::Arc;

    fn metamodels() -> (Arc<Metamodel>, Arc<Metamodel>) {
        let cf = parse_metamodel("metamodel CF { class Feature { attr name: Str; } }").unwrap();
        let fm = parse_metamodel(
            "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }",
        )
        .unwrap();
        (cf, fm)
    }

    const F_SRC: &str = r#"
transformation F(cf1 : CF, cf2 : CF, fm : FM) {
  top relation MF {
    n : Str;
    domain cf1 s1 : Feature { name = n };
    domain cf2 s2 : Feature { name = n };
    domain fm  f  : Feature { name = n, mandatory = true };
    depend cf1 cf2 -> fm;
    depend fm -> cf1 cf2;
  }
}
"#;

    fn cf_model(cf: &Arc<Metamodel>, name: &str, feats: &[&str]) -> Model {
        let mut body = String::new();
        for (i, f) in feats.iter().enumerate() {
            body.push_str(&format!("f{i} = Feature {{ name = \"{f}\" }}\n"));
        }
        parse_model(&format!("model {name} : CF {{ {body} }}"), cf).unwrap()
    }

    fn fm_model(fm: &Arc<Metamodel>, feats: &[(&str, bool)]) -> Model {
        let mut body = String::new();
        for (i, (f, m)) in feats.iter().enumerate() {
            body.push_str(&format!(
                "f{i} = Feature {{ name = \"{f}\", mandatory = {m} }}\n"
            ));
        }
        parse_model(&format!("model fm : FM {{ {body} }}"), fm).unwrap()
    }

    fn targets(idx: &[u8]) -> DomSet {
        DomSet::from_iter(idx.iter().map(|&i| DomIdx(i)))
    }

    #[test]
    fn consistent_input_repairs_at_zero_cost() {
        let (cf, fm) = metamodels();
        let hir = parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap();
        let models = [
            cf_model(&cf, "cf1", &["engine"]),
            cf_model(&cf, "cf2", &["engine"]),
            fm_model(&fm, &[("engine", true)]),
        ];
        let mut p = GroundProblem::build(&hir, &models, targets(&[0, 1]), GroundOptions::default())
            .unwrap();
        let (cost, repaired) = p.solve_min_cost().expect("solvable");
        assert_eq!(cost, 0);
        for (orig, rep) in models.iter().zip(&repaired) {
            assert!(orig.graph_eq(rep));
        }
    }

    /// §3's flagship scenario: a new mandatory feature is added to the
    /// feature model. Repairing a *single* configuration cannot restore
    /// consistency (the other still misses the feature), while the
    /// multi-target shape `FM → CF^k` succeeds.
    #[test]
    fn multi_target_shape_needed() {
        let (cf, fm) = metamodels();
        let hir = parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap();
        let models = [
            cf_model(&cf, "cf1", &["engine"]),
            cf_model(&cf, "cf2", &["engine"]),
            fm_model(&fm, &[("engine", true), ("brakes", true)]),
        ];
        // Single-target: only cf1 may change → no repair (cf2 still
        // violates FM → CF2).
        let mut single =
            GroundProblem::build(&hir, &models, targets(&[0]), GroundOptions::default()).unwrap();
        assert!(single.solve_min_cost().is_none());
        // Multi-target: both configurations may change.
        let mut multi =
            GroundProblem::build(&hir, &models, targets(&[0, 1]), GroundOptions::default())
                .unwrap();
        let (cost, repaired) = multi.solve_min_cost().expect("repairable");
        // Each configuration gains `brakes`: AddObj + SetAttr = 2 per
        // configuration.
        assert_eq!(cost, 4);
        let report = Checker::new(&hir, &repaired).unwrap().check().unwrap();
        assert!(report.consistent(), "{report}");
        // The untouched fm is identical.
        assert!(models[2].graph_eq(&repaired[2]));
    }

    /// The reverse §3 scenario: a feature selected in every configuration
    /// must become mandatory — repairing towards FM.
    #[test]
    fn repair_towards_feature_model() {
        let (cf, fm) = metamodels();
        let hir = parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap();
        let models = [
            cf_model(&cf, "cf1", &["engine", "gps"]),
            cf_model(&cf, "cf2", &["engine", "gps"]),
            fm_model(&fm, &[("engine", true), ("gps", false)]),
        ];
        let mut p =
            GroundProblem::build(&hir, &models, targets(&[2]), GroundOptions::default()).unwrap();
        let (cost, repaired) = p.solve_min_cost().expect("repairable");
        // Minimal repair: flip gps.mandatory — one attribute change.
        assert_eq!(cost, 1);
        let report = Checker::new(&hir, &repaired).unwrap().check().unwrap();
        assert!(report.consistent(), "{report}");
    }

    #[test]
    fn weighted_tuple_cost_changes_repair() {
        let (cf, fm) = metamodels();
        let src = r#"
transformation G(cf1 : CF, fm : FM) {
  top relation Sel {
    n : Str;
    domain cf1 s : Feature { name = n };
    domain fm  f : Feature { name = n };
    depend cf1 -> fm;
    depend fm -> cf1;
  }
}
"#;
        let hir = parse_and_resolve(src, &[cf.clone(), fm.clone()]).unwrap();
        let models = [
            cf_model(&cf, "cf1", &["engine"]),
            fm_model(&fm, &[("radio", false)]),
        ];
        // Both models may change. With fm heavily weighted, the repair
        // must leave fm untouched and rewrite cf1 instead.
        let opts = GroundOptions {
            tuple: TupleCost::weighted(vec![1, 100]),
            max_cost: 30,
            ..GroundOptions::default()
        };
        let mut p = GroundProblem::build(&hir, &models, targets(&[0, 1]), opts).unwrap();
        let (_, repaired) = p.solve_min_cost().expect("repairable");
        assert!(
            models[1].graph_eq(&repaired[1]),
            "expensive fm should be untouched"
        );
        let report = Checker::new(&hir, &repaired).unwrap().check().unwrap();
        assert!(report.consistent(), "{report}");
    }

    #[test]
    fn decoded_models_are_conformant() {
        let (cf, fm) = metamodels();
        let hir = parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap();
        let models = [
            cf_model(&cf, "cf1", &[]),
            cf_model(&cf, "cf2", &[]),
            fm_model(&fm, &[("engine", true)]),
        ];
        let mut p = GroundProblem::build(&hir, &models, targets(&[0, 1]), GroundOptions::default())
            .unwrap();
        let (_, repaired) = p.solve_min_cost().expect("repairable");
        for m in &repaired {
            assert!(mmt_model::conformance::is_conformant(m));
        }
    }

    #[test]
    fn stats_populated() {
        let (cf, fm) = metamodels();
        let hir = parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap();
        let models = [
            cf_model(&cf, "cf1", &["engine"]),
            cf_model(&cf, "cf2", &["engine"]),
            fm_model(&fm, &[("engine", true)]),
        ];
        let p =
            GroundProblem::build(&hir, &models, targets(&[0]), GroundOptions::default()).unwrap();
        let s = p.stats();
        assert!(s.vars > 0);
        assert!(s.clauses > 0);
        assert!(s.universal_instantiations > 0);
        assert!(s.cost_items > 0);
    }

    #[test]
    fn instantiation_cap_enforced() {
        let (cf, fm) = metamodels();
        let hir = parse_and_resolve(F_SRC, &[cf.clone(), fm.clone()]).unwrap();
        let models = [
            cf_model(&cf, "cf1", &["a", "b", "c", "d"]),
            cf_model(&cf, "cf2", &["a", "b", "c", "d"]),
            fm_model(&fm, &[("a", true)]),
        ];
        let opts = GroundOptions {
            max_instantiations: 3,
            ..GroundOptions::default()
        };
        assert!(matches!(
            GroundProblem::build(&hir, &models, targets(&[0, 1]), opts),
            Err(GroundError::ScopeTooLarge { .. })
        ));
    }
}
