//! Conservative static satisfiability analysis over [`HirExpr`]
//! conjunctions (the `MMT003`/`MMT004` engine).
//!
//! The analysis decides *definite* unsatisfiability only: it constant-
//! folds literal subexpressions, then reasons about the top-level
//! conjuncts of the clause conjoined with the domain-pattern facts
//! (`obj.attr = lit` / `obj.attr = var` equalities the templates pin).
//! Equalities are merged into union-find classes over the terms `v` and
//! `v.attr`; each class carries at most one literal binding and an `Int`
//! interval. A contradiction is reported when a class is bound to two
//! different literals, an interval empties, a disequality collapses onto
//! one class, or a conjunct appears alongside its own negation. Anything
//! the analysis cannot decide is assumed satisfiable — lints built on
//! this module never report a false unsatisfiability.

use mmt_model::Value;
use mmt_qvtr::{Atom, CmpOp, Constraint, HirExpr, HirRelation, VarId};

/// A term tracked by the equality reasoning: a primitive variable or an
/// attribute navigation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Term {
    Var(VarId),
    Nav(VarId, mmt_model::AttrId),
}

/// One side of a comparison after normalization.
enum Operand {
    Term(Term),
    Lit(Value),
    Other,
}

fn operand(e: &HirExpr) -> Operand {
    match e {
        HirExpr::Var(v) => Operand::Term(Term::Var(*v)),
        HirExpr::Nav(v, a) => Operand::Term(Term::Nav(*v, *a)),
        HirExpr::Lit(v) => Operand::Lit(*v),
        _ => Operand::Other,
    }
}

/// Constant-folds `e` to a boolean when every relevant leaf is a
/// literal (with And/Or/Implies short-circuiting on one known side).
fn fold_bool(e: &HirExpr) -> Option<bool> {
    match e {
        HirExpr::Lit(Value::Bool(b)) => Some(*b),
        HirExpr::Cmp(op, a, b) => {
            let (HirExpr::Lit(x), HirExpr::Lit(y)) = (a.as_ref(), b.as_ref()) else {
                return None;
            };
            Some(match op {
                CmpOp::Eq => x == y,
                CmpOp::Neq => x != y,
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    let (Value::Int(x), Value::Int(y)) = (x, y) else {
                        return None;
                    };
                    match op {
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        _ => x >= y,
                    }
                }
            })
        }
        HirExpr::And(a, b) => match (fold_bool(a), fold_bool(b)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        HirExpr::Or(a, b) => match (fold_bool(a), fold_bool(b)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        HirExpr::Implies(a, b) => match (fold_bool(a), fold_bool(b)) {
            (Some(false), _) | (_, Some(true)) => Some(true),
            (Some(true), Some(false)) => Some(false),
            _ => None,
        },
        HirExpr::Not(a) => fold_bool(a).map(|v| !v),
        _ => None,
    }
}

/// Union-find classes over [`Term`]s, each carrying at most one literal
/// binding and an integer interval.
#[derive(Default)]
struct Classes {
    terms: Vec<Term>,
    parent: Vec<usize>,
    binding: Vec<Option<Value>>,
    lo: Vec<Option<i64>>,
    hi: Vec<Option<i64>>,
}

impl Classes {
    fn node(&mut self, t: Term) -> usize {
        if let Some(i) = self.terms.iter().position(|&x| x == t) {
            return i;
        }
        self.terms.push(t);
        self.parent.push(self.terms.len() - 1);
        self.binding.push(None);
        self.lo.push(None);
        self.hi.push(None);
        self.terms.len() - 1
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] == i {
            i
        } else {
            let r = self.find(self.parent[i]);
            self.parent[i] = r;
            r
        }
    }

    /// Merges the classes of `a` and `b`; `Err` carries the two
    /// conflicting literals when the merge is contradictory.
    fn union(&mut self, a: usize, b: usize) -> Result<(), (Value, Value)> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return Ok(());
        }
        match (self.binding[ra], self.binding[rb]) {
            (Some(x), Some(y)) if x != y => return Err((x, y)),
            (None, Some(y)) => self.binding[ra] = Some(y),
            _ => {}
        }
        self.lo[ra] = max_opt(self.lo[ra], self.lo[rb]);
        self.hi[ra] = min_opt(self.hi[ra], self.hi[rb]);
        self.parent[rb] = ra;
        Ok(())
    }

    /// Binds the class of `i` to literal `v`; `Err` carries the
    /// conflicting pair.
    fn bind(&mut self, i: usize, v: Value) -> Result<(), (Value, Value)> {
        let r = self.find(i);
        match self.binding[r] {
            Some(x) if x != v => Err((x, v)),
            _ => {
                self.binding[r] = Some(v);
                Ok(())
            }
        }
    }

    fn narrow(&mut self, i: usize, lo: Option<i64>, hi: Option<i64>) {
        let r = self.find(i);
        self.lo[r] = max_opt(self.lo[r], lo);
        self.hi[r] = min_opt(self.hi[r], hi);
    }
}

fn max_opt(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

fn min_opt(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

fn fmt_term(rel: &HirRelation, t: Term) -> String {
    match t {
        Term::Var(v) => rel.vars[v.index()].name.to_string(),
        Term::Nav(v, _) => format!("{}.<attr>", rel.vars[v.index()].name),
    }
}

fn fmt_value(v: Value) -> String {
    match v {
        Value::Str(s) => format!("\"{s}\""),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
    }
}

/// Flattens the top-level conjunction of `e` into `out`.
fn conjuncts<'a>(e: &'a HirExpr, out: &mut Vec<&'a HirExpr>) {
    match e {
        HirExpr::And(a, b) => {
            conjuncts(a, out);
            conjuncts(b, out);
        }
        _ => out.push(e),
    }
}

/// Decides whether the conjunction of the pattern `facts` and the
/// clauses `exprs` is *definitely* unsatisfiable. Returns a
/// human-readable contradiction on success, `None` when satisfiability
/// cannot be ruled out.
pub(crate) fn contradiction(
    rel: &HirRelation,
    facts: &[&Constraint],
    exprs: &[&HirExpr],
) -> Option<String> {
    let mut cls = Classes::default();

    // Seed with the equalities the domain templates pin.
    for c in facts {
        if let Constraint::AttrEq { obj, attr, rhs } = c {
            let n = cls.node(Term::Nav(*obj, *attr));
            let res = match rhs {
                Atom::Lit(v) => cls.bind(n, *v),
                Atom::Var(p) => {
                    let pn = cls.node(Term::Var(*p));
                    cls.union(n, pn)
                }
            };
            if let Err((x, y)) = res {
                return Some(format!(
                    "pattern binds {} to both {} and {}",
                    fmt_term(rel, Term::Nav(*obj, *attr)),
                    fmt_value(x),
                    fmt_value(y)
                ));
            }
        }
    }

    let mut flat: Vec<&HirExpr> = Vec::new();
    for e in exprs {
        conjuncts(e, &mut flat);
    }

    // A conjunct alongside its own negation is a contradiction no
    // matter what the atoms mean.
    for (i, a) in flat.iter().enumerate() {
        for b in &flat[i + 1..] {
            let neg = match (a, b) {
                (HirExpr::Not(x), y) => x.as_ref() == *y,
                (x, HirExpr::Not(y)) => *x == y.as_ref(),
                _ => false,
            };
            if neg {
                return Some("a conjunct appears alongside its own negation".into());
            }
        }
    }

    let mut neqs: Vec<(usize, usize)> = Vec::new();
    let mut neq_lits: Vec<(usize, Value)> = Vec::new();

    for e in &flat {
        if let Some(b) = fold_bool(e) {
            if !b {
                return Some("a conjunct folds to the constant false".into());
            }
            continue;
        }
        let HirExpr::Cmp(op, a, b) = e else { continue };
        match (op, operand(a), operand(b)) {
            (CmpOp::Eq, Operand::Term(x), Operand::Term(y)) => {
                let (nx, ny) = (cls.node(x), cls.node(y));
                if let Err((u, v)) = cls.union(nx, ny) {
                    return Some(format!(
                        "{} = {} forces {} = {}",
                        fmt_term(rel, x),
                        fmt_term(rel, y),
                        fmt_value(u),
                        fmt_value(v)
                    ));
                }
            }
            (CmpOp::Eq, Operand::Term(x), Operand::Lit(v))
            | (CmpOp::Eq, Operand::Lit(v), Operand::Term(x)) => {
                let n = cls.node(x);
                if let Err((u, w)) = cls.bind(n, v) {
                    return Some(format!(
                        "{} is equated with both {} and {}",
                        fmt_term(rel, x),
                        fmt_value(u),
                        fmt_value(w)
                    ));
                }
            }
            (CmpOp::Neq, Operand::Term(x), Operand::Term(y)) => {
                let (nx, ny) = (cls.node(x), cls.node(y));
                neqs.push((nx, ny));
            }
            (CmpOp::Neq, Operand::Term(x), Operand::Lit(v))
            | (CmpOp::Neq, Operand::Lit(v), Operand::Term(x)) => {
                let n = cls.node(x);
                neq_lits.push((n, v));
            }
            (CmpOp::Lt, Operand::Term(x), Operand::Lit(Value::Int(k))) => {
                let n = cls.node(x);
                cls.narrow(n, None, k.checked_sub(1));
            }
            (CmpOp::Le, Operand::Term(x), Operand::Lit(Value::Int(k))) => {
                let n = cls.node(x);
                cls.narrow(n, None, Some(k));
            }
            (CmpOp::Gt, Operand::Term(x), Operand::Lit(Value::Int(k))) => {
                let n = cls.node(x);
                cls.narrow(n, k.checked_add(1), None);
            }
            (CmpOp::Ge, Operand::Term(x), Operand::Lit(Value::Int(k))) => {
                let n = cls.node(x);
                cls.narrow(n, Some(k), None);
            }
            (CmpOp::Lt, Operand::Lit(Value::Int(k)), Operand::Term(x)) => {
                let n = cls.node(x);
                cls.narrow(n, k.checked_add(1), None);
            }
            (CmpOp::Le, Operand::Lit(Value::Int(k)), Operand::Term(x)) => {
                let n = cls.node(x);
                cls.narrow(n, Some(k), None);
            }
            (CmpOp::Gt, Operand::Lit(Value::Int(k)), Operand::Term(x)) => {
                let n = cls.node(x);
                cls.narrow(n, None, k.checked_sub(1));
            }
            (CmpOp::Ge, Operand::Lit(Value::Int(k)), Operand::Term(x)) => {
                let n = cls.node(x);
                cls.narrow(n, None, Some(k));
            }
            _ => {}
        }
    }

    // Interval / binding consistency per class.
    for i in 0..cls.terms.len() {
        let r = cls.find(i);
        if r != i {
            continue;
        }
        let (lo, hi) = (cls.lo[r], cls.hi[r]);
        if let (Some(l), Some(h)) = (lo, hi) {
            if l > h {
                return Some(format!(
                    "{} is confined to the empty range [{l}, {h}]",
                    fmt_term(rel, cls.terms[r])
                ));
            }
        }
        if let Some(Value::Int(v)) = cls.binding[r] {
            if lo.map(|l| v < l).unwrap_or(false) || hi.map(|h| v > h).unwrap_or(false) {
                return Some(format!(
                    "{} = {v} falls outside its required range",
                    fmt_term(rel, cls.terms[r])
                ));
            }
        }
    }

    // Disequalities that collapsed onto one class or a matching literal.
    for (a, b) in neqs {
        let (ra, rb) = (cls.find(a), cls.find(b));
        if ra == rb {
            return Some(format!(
                "{} != {} contradicts their required equality",
                fmt_term(rel, cls.terms[a]),
                fmt_term(rel, cls.terms[b])
            ));
        }
        if let (Some(x), Some(y)) = (cls.binding[ra], cls.binding[rb]) {
            if x == y {
                return Some(format!(
                    "{} != {} but both equal {}",
                    fmt_term(rel, cls.terms[a]),
                    fmt_term(rel, cls.terms[b]),
                    fmt_value(x)
                ));
            }
        }
    }
    for (n, v) in neq_lits {
        let r = cls.find(n);
        if cls.binding[r] == Some(v) {
            return Some(format!(
                "{} != {} but it is pinned to that value",
                fmt_term(rel, cls.terms[n]),
                fmt_value(v)
            ));
        }
    }

    None
}
