//! # mmt-lint — static analysis over resolved transformations
//!
//! A diagnostics engine over the resolved [`Hir`]: every finding is a
//! [`Lint`] with a stable code (`MMT001`…), a [`Severity`], and a
//! human-readable message, collected into a [`LintReport`] with text and
//! JSON renderers. Three families:
//!
//! - **Well-formedness** (`MMT001`–`MMT007`): unused variables,
//!   primitive variables no domain can bind, statically-unsatisfiable
//!   `when`/`where` clauses, relations unreachable from any top
//!   relation, call cycles, and domains over uninstantiable classes.
//! - **Repair-conflict analysis** (`MMT010`/`MMT011`): the race-detector
//!   analog. Using the same per-model footprints the incremental
//!   [`DeltaChecker`](mmt_check::DeltaChecker) invalidates with
//!   ([`mmt_check::footprint`] — one computation, no drift), flag
//!   relation pairs whose witness-side *write* footprint intersects
//!   another relation's universal *read* footprint: a repair satisfying
//!   one check can re-trigger the other (possible repair ping-pong).
//! - **Grounding-cost estimation** (`MMT020`): static bounds on SAT
//!   grounding size per directional check, warning when growth is
//!   exponential in the object-template degree (the class2rdbms
//!   scaling blocker).
//!
//! Errors should reject a spec at registration time; warnings are
//! advisory. The analysis is conservative: unsatisfiability and
//! conflicts are reported only when definite (soundness argument in
//! ARCHITECTURE.md).
//!
//! ```
//! use mmt_model::text::parse_metamodel;
//! use mmt_qvtr::parse_and_resolve;
//! use mmt_lint::{lint, LintOptions};
//!
//! let mm = parse_metamodel("metamodel M { class A { attr x: Int; } }").unwrap();
//! let hir = parse_and_resolve(
//!     r#"transformation T(l : M, r : M) {
//!       top relation R {
//!         n : Int;
//!         domain l a : A { x = n };
//!         domain r b : A { x = n };
//!         when { n > 3 and n < 2 }
//!       }
//!     }"#,
//!     &[mm],
//! ).unwrap();
//! let report = lint(&hir, &LintOptions::default());
//! assert!(report.has_errors()); // MMT003: `when` is unsatisfiable
//! ```

mod unsat;

use mmt_check::footprint::{check_footprints, CheckFootprints, Footprint};
use mmt_check::EvalError;
use mmt_deps::{Dep, DomIdx};
use mmt_model::Metamodel;
use mmt_qvtr::{Constraint, Hir, HirRelation, RelId, VarId};
use std::fmt;

/// How serious a lint finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious but not definitely broken.
    Warn,
    /// The spec is statically broken; registration should reject it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable lint codes. Codes are never reused; gaps are reserved for
/// future lints in the same family (00x well-formedness, 01x
/// repair-conflict, 02x grounding cost).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LintCode {
    /// `MMT001`: a declared variable is never used.
    UnusedVariable,
    /// `MMT002`: a directional check cannot bind a primitive variable.
    UnboundPrimVariable,
    /// `MMT003`: `when` is statically unsatisfiable.
    UnsatisfiableWhen,
    /// `MMT004`: `where` is statically unsatisfiable.
    UnsatisfiableWhere,
    /// `MMT005`: a non-top relation is unreachable from any top relation.
    UnreachableRelation,
    /// `MMT006`: relations call each other in a cycle.
    CallCycle,
    /// `MMT007`: a domain ranges over a class with no concrete subtype.
    UninstantiableDomain,
    /// `MMT010`: one relation's repairs write what another reads.
    RepairConflict,
    /// `MMT011`: a bidirectional relation's own directions overlap.
    BidirectionalCoupling,
    /// `MMT020`: SAT grounding size is exponential in template degree.
    GroundingBlowup,
}

impl LintCode {
    /// Every lint code, in catalog order.
    pub const ALL: [LintCode; 10] = [
        LintCode::UnusedVariable,
        LintCode::UnboundPrimVariable,
        LintCode::UnsatisfiableWhen,
        LintCode::UnsatisfiableWhere,
        LintCode::UnreachableRelation,
        LintCode::CallCycle,
        LintCode::UninstantiableDomain,
        LintCode::RepairConflict,
        LintCode::BidirectionalCoupling,
        LintCode::GroundingBlowup,
    ];

    /// The stable code string (`"MMT001"`…).
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UnusedVariable => "MMT001",
            LintCode::UnboundPrimVariable => "MMT002",
            LintCode::UnsatisfiableWhen => "MMT003",
            LintCode::UnsatisfiableWhere => "MMT004",
            LintCode::UnreachableRelation => "MMT005",
            LintCode::CallCycle => "MMT006",
            LintCode::UninstantiableDomain => "MMT007",
            LintCode::RepairConflict => "MMT010",
            LintCode::BidirectionalCoupling => "MMT011",
            LintCode::GroundingBlowup => "MMT020",
        }
    }

    /// A short kebab-case name for the lint.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::UnusedVariable => "unused-variable",
            LintCode::UnboundPrimVariable => "unbound-prim-variable",
            LintCode::UnsatisfiableWhen => "unsatisfiable-when",
            LintCode::UnsatisfiableWhere => "unsatisfiable-where",
            LintCode::UnreachableRelation => "unreachable-relation",
            LintCode::CallCycle => "call-cycle",
            LintCode::UninstantiableDomain => "uninstantiable-domain",
            LintCode::RepairConflict => "repair-conflict",
            LintCode::BidirectionalCoupling => "bidirectional-coupling",
            LintCode::GroundingBlowup => "grounding-blowup",
        }
    }

    /// The fixed severity of this lint.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::UnboundPrimVariable
            | LintCode::UnsatisfiableWhen
            | LintCode::UnsatisfiableWhere
            | LintCode::CallCycle
            | LintCode::UninstantiableDomain => Severity::Error,
            LintCode::UnusedVariable
            | LintCode::UnreachableRelation
            | LintCode::RepairConflict
            | LintCode::GroundingBlowup => Severity::Warn,
            LintCode::BidirectionalCoupling => Severity::Info,
        }
    }

    /// Parses a code string (`"MMT001"`) back to the lint.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.code() == s)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Lint {
    /// Which lint fired.
    pub code: LintCode,
    /// The relation the finding anchors to, when there is a single one.
    pub relation: Option<String>,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Lint {
    /// The finding's severity (fixed per code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity(), self.code)?;
        if let Some(r) = &self.relation {
            write!(f, " relation `{r}`:")?;
        }
        write!(f, " {}", self.message)
    }
}

/// Options controlling a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintOptions {
    /// Codes to suppress entirely (the `--allow MMT0xx` mechanism).
    pub allow: Vec<LintCode>,
}

/// The findings of one lint run, in catalog-then-relation order.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, most severe first.
    pub lints: Vec<Lint>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of info-severity findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.lints.iter().filter(|l| l.severity() == s).count()
    }

    /// True when any finding is an error (registration should reject).
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// True when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.lints.is_empty()
    }

    /// Renders the report as human-readable lines plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for l in &self.lints {
            out.push_str(&l.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s)\n",
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        out
    }

    /// Renders the report as a single JSON object (stable field order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"infos\":{},\"lints\":[",
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        for (i, l) in self.lints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"relation\":{},\"message\":{}}}",
                json_str(l.code.code()),
                json_str(&l.severity().to_string()),
                match &l.relation {
                    Some(r) => json_str(r),
                    None => "null".into(),
                },
                json_str(&l.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Grounding degree (universal + witness object variables) at which
/// `MMT020` fires: SAT grounding size grows as `n^u · (n+slack)^w`, and
/// degree ≥ 4 is the class2rdbms regime where slack growth became the
/// scaling blocker.
pub const GROUNDING_DEGREE_LIMIT: usize = 4;

/// Runs every lint over `hir` and returns the collected report.
/// Findings whose codes appear in `opts.allow` are suppressed.
pub fn lint(hir: &Hir, opts: &LintOptions) -> LintReport {
    let mut lints: Vec<Lint> = Vec::new();

    // Per-(relation, dep) footprints; MMT002 findings fall out of the
    // planning errors.
    let mut fps: Vec<(RelId, Dep, CheckFootprints)> = Vec::new();
    for (i, rel) in hir.relations.iter().enumerate() {
        let rid = RelId(i as u32);
        for &dep in rel.deps.deps() {
            match check_footprints(hir, rid, dep) {
                Ok(f) => fps.push((rid, dep, f)),
                Err(e) => lints.push(unbound_lint(hir, rel, dep, e)),
            }
        }
    }

    for rel in &hir.relations {
        lint_unused(rel, &mut lints);
        lint_uninstantiable(hir, rel, &mut lints);
        lint_unsat(rel, &mut lints);
    }
    lint_reachability(hir, &mut lints);
    lint_cycles(hir, &mut lints);
    lint_conflicts(hir, &fps, &mut lints);
    lint_coupling(hir, &fps, &mut lints);
    lint_grounding(hir, &fps, &mut lints);

    lints.retain(|l| !opts.allow.contains(&l.code));
    lints.sort_by_key(|l| std::cmp::Reverse(l.severity()));
    LintReport { lints }
}

fn unbound_lint(hir: &Hir, rel: &HirRelation, dep: Dep, e: EvalError) -> Lint {
    let tgt = hir.models[dep.target.index()].name;
    let message = match e {
        EvalError::UnboundVar { var, .. } => format!(
            "primitive variable `{var}` cannot be bound when checking towards `{tgt}`: \
             no source or target pattern pins it, and a free primitive ranges over an \
             infinite domain"
        ),
        other => format!("the check towards `{tgt}` cannot be planned: {other}"),
    };
    Lint {
        code: LintCode::UnboundPrimVariable,
        relation: Some(rel.name.to_string()),
        message,
    }
}

fn lint_unused(rel: &HirRelation, lints: &mut Vec<Lint>) {
    let mut used: Vec<VarId> = Vec::new();
    for d in &rel.domains {
        for c in &d.constraints {
            match *c {
                Constraint::Obj { var, .. } => push_var(&mut used, var),
                Constraint::AttrEq { obj, rhs, .. } => {
                    push_var(&mut used, obj);
                    if let mmt_qvtr::Atom::Var(p) = rhs {
                        push_var(&mut used, p);
                    }
                }
                Constraint::RefContains { obj, dst, .. } => {
                    push_var(&mut used, obj);
                    push_var(&mut used, dst);
                }
            }
        }
    }
    for e in [&rel.when, &rel.where_].into_iter().flatten() {
        e.free_vars(&mut used);
    }
    for (i, v) in rel.vars.iter().enumerate() {
        if !used.contains(&VarId(i as u32)) {
            lints.push(Lint {
                code: LintCode::UnusedVariable,
                relation: Some(rel.name.to_string()),
                message: format!("variable `{}` is declared but never used", v.name),
            });
        }
    }
}

fn push_var(out: &mut Vec<VarId>, v: VarId) {
    if !out.contains(&v) {
        out.push(v);
    }
}

fn lint_uninstantiable(hir: &Hir, rel: &HirRelation, lints: &mut Vec<Lint>) {
    for d in &rel.domains {
        let mp = &hir.models[d.model.index()];
        for c in &d.constraints {
            if let Constraint::Obj { var, class, .. } = *c {
                if mp.meta.concrete_subtypes(class).is_empty() {
                    lints.push(Lint {
                        code: LintCode::UninstantiableDomain,
                        relation: Some(rel.name.to_string()),
                        message: format!(
                            "variable `{}` ranges over class `{}` of `{}`, which is \
                             abstract with no concrete subtype — its extent is \
                             necessarily empty",
                            rel.vars[var.index()].name,
                            mp.meta.class(class).name,
                            mp.name
                        ),
                    });
                }
            }
        }
    }
}

fn lint_unsat(rel: &HirRelation, lints: &mut Vec<Lint>) {
    let facts: Vec<&Constraint> = rel.domains.iter().flat_map(|d| &d.constraints).collect();
    let when_reason = rel
        .when
        .as_ref()
        .and_then(|w| unsat::contradiction(rel, &facts, &[w]));
    if let Some(reason) = &when_reason {
        lints.push(Lint {
            code: LintCode::UnsatisfiableWhen,
            relation: Some(rel.name.to_string()),
            message: format!(
                "`when` is statically unsatisfiable ({reason}); the relation never fires"
            ),
        });
    }
    // `where` is evaluated under `when` and the patterns; only report it
    // separately when `when` itself is satisfiable.
    if when_reason.is_none() {
        if let Some(wh) = &rel.where_ {
            let mut exprs: Vec<&mmt_qvtr::HirExpr> = Vec::new();
            if let Some(w) = &rel.when {
                exprs.push(w);
            }
            exprs.push(wh);
            if let Some(reason) = unsat::contradiction(rel, &facts, &exprs) {
                lints.push(Lint {
                    code: LintCode::UnsatisfiableWhere,
                    relation: Some(rel.name.to_string()),
                    message: format!(
                        "`where` is statically unsatisfiable ({reason}); no match can \
                         ever be witnessed"
                    ),
                });
            }
        }
    }
}

/// Call edges of `rel` (callees referenced from `when` or `where`).
fn callees(rel: &HirRelation) -> Vec<RelId> {
    let mut calls = Vec::new();
    for e in [&rel.when, &rel.where_].into_iter().flatten() {
        e.calls(&mut calls);
    }
    let mut out: Vec<RelId> = Vec::new();
    for (rid, _) in calls {
        if !out.contains(&rid) {
            out.push(rid);
        }
    }
    out
}

fn lint_reachability(hir: &Hir, lints: &mut Vec<Lint>) {
    let n = hir.relations.len();
    let mut reachable = vec![false; n];
    let mut stack: Vec<usize> = (0..n).filter(|&i| hir.relations[i].is_top).collect();
    for &i in &stack {
        reachable[i] = true;
    }
    while let Some(i) = stack.pop() {
        for rid in callees(&hir.relations[i]) {
            if !reachable[rid.index()] {
                reachable[rid.index()] = true;
                stack.push(rid.index());
            }
        }
    }
    for (i, rel) in hir.relations.iter().enumerate() {
        if !rel.is_top && !reachable[i] {
            lints.push(Lint {
                code: LintCode::UnreachableRelation,
                relation: Some(rel.name.to_string()),
                message: "non-top relation is never called from any top relation; \
                          it constrains nothing"
                    .into(),
            });
        }
    }
}

fn lint_cycles(hir: &Hir, lints: &mut Vec<Lint>) {
    let n = hir.relations.len();
    // Colors: 0 = unvisited, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut path: Vec<usize> = Vec::new();
    let mut reported: Vec<Vec<usize>> = Vec::new();
    fn dfs(
        hir: &Hir,
        i: usize,
        color: &mut [u8],
        path: &mut Vec<usize>,
        reported: &mut Vec<Vec<usize>>,
        lints: &mut Vec<Lint>,
    ) {
        color[i] = 1;
        path.push(i);
        for rid in callees(&hir.relations[i]) {
            let j = rid.index();
            match color[j] {
                0 => dfs(hir, j, color, path, reported, lints),
                1 => {
                    let start = path.iter().position(|&p| p == j).unwrap();
                    let mut cycle: Vec<usize> = path[start..].to_vec();
                    let mut key = cycle.clone();
                    key.sort_unstable();
                    if !reported.contains(&key) {
                        reported.push(key);
                        cycle.push(j);
                        let names: Vec<String> = cycle
                            .iter()
                            .map(|&k| format!("`{}`", hir.relations[k].name))
                            .collect();
                        lints.push(Lint {
                            code: LintCode::CallCycle,
                            relation: None,
                            message: format!(
                                "relations call each other in a cycle: {} — evaluation \
                                 would hit the recursion limit",
                                names.join(" -> ")
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        path.pop();
        color[i] = 2;
    }
    for i in 0..n {
        if color[i] == 0 {
            dfs(hir, i, &mut color, &mut path, &mut reported, lints);
        }
    }
}

fn fmt_overlap(meta: &Metamodel, o: &Footprint) -> String {
    let mut parts: Vec<String> = Vec::new();
    for &c in &o.classes {
        parts.push(format!("class `{}`", meta.class(c).name));
    }
    for &a in &o.attrs {
        let at = meta.attr(a);
        parts.push(format!(
            "attribute `{}.{}`",
            meta.class(at.owner).name,
            at.name
        ));
    }
    for &r in &o.refs {
        let rf = meta.reference(r);
        parts.push(format!(
            "reference `{}.{}`",
            meta.class(rf.owner).name,
            rf.name
        ));
    }
    parts.join(", ")
}

fn lint_conflicts(hir: &Hir, fps: &[(RelId, Dep, CheckFootprints)], lints: &mut Vec<Lint>) {
    let mut seen: Vec<(RelId, RelId, DomIdx)> = Vec::new();
    for (a, dep_a, fa) in fps {
        let m = dep_a.target;
        let writes = &fa.wit[m.index()];
        if writes.is_empty() {
            continue;
        }
        let meta = &hir.models[m.index()].meta;
        for (b, _dep_b, fb) in fps {
            if a == b || seen.contains(&(*a, *b, m)) {
                continue;
            }
            let mut reads = fb.uni[m.index()].clone();
            let call = &fb.call[m.index()];
            for &c in &call.classes {
                reads.add_class(c);
            }
            for &at in &call.attrs {
                reads.add_attr(at);
            }
            for &r in &call.refs {
                reads.add_ref(r);
            }
            let o = writes.overlap(&reads, meta);
            if !o.is_empty() {
                seen.push((*a, *b, m));
                lints.push(Lint {
                    code: LintCode::RepairConflict,
                    relation: Some(hir.relations[a.index()].name.to_string()),
                    message: format!(
                        "repairing `{}` towards `{}` may write {} that `{}` reads \
                         universally — repairs of one relation can re-trigger the \
                         other (possible repair ping-pong)",
                        hir.relations[a.index()].name,
                        hir.models[m.index()].name,
                        fmt_overlap(meta, &o),
                        hir.relations[b.index()].name,
                    ),
                });
            }
        }
    }
}

fn lint_coupling(hir: &Hir, fps: &[(RelId, Dep, CheckFootprints)], lints: &mut Vec<Lint>) {
    let mut seen: Vec<RelId> = Vec::new();
    for (a, dep_a, fa) in fps {
        if seen.contains(a) {
            continue;
        }
        let m = dep_a.target;
        for (b, dep_b, fb) in fps {
            if a != b || dep_a == dep_b || !dep_b.sources.contains(m) {
                continue;
            }
            let meta = &hir.models[m.index()].meta;
            let o = fa.wit[m.index()].overlap(&fb.uni[m.index()], meta);
            if !o.is_empty() {
                seen.push(*a);
                lints.push(Lint {
                    code: LintCode::BidirectionalCoupling,
                    relation: Some(hir.relations[a.index()].name.to_string()),
                    message: format!(
                        "bidirectionally coupled on `{}` ({}): repairs in one \
                         direction re-enter the opposite check — convergence relies \
                         on least-change repair, not on the spec",
                        hir.models[m.index()].name,
                        fmt_overlap(meta, &o),
                    ),
                });
                break;
            }
        }
    }
}

fn lint_grounding(hir: &Hir, fps: &[(RelId, Dep, CheckFootprints)], lints: &mut Vec<Lint>) {
    let mut seen: Vec<RelId> = Vec::new();
    for (rid, dep, f) in fps {
        let k = f.uni_obj_vars + f.wit_obj_vars;
        if k >= GROUNDING_DEGREE_LIMIT && !seen.contains(rid) {
            seen.push(*rid);
            lints.push(Lint {
                code: LintCode::GroundingBlowup,
                relation: Some(hir.relations[rid.index()].name.to_string()),
                message: format!(
                    "checking towards `{}` enumerates {} universal and {} witness \
                     object variables: SAT grounding size grows as \
                     n^{} x (n+slack)^{} — exponential in template degree {k}; \
                     deep templates block scaling the seed tuple",
                    hir.models[dep.target.index()].name,
                    f.uni_obj_vars,
                    f.wit_obj_vars,
                    f.uni_obj_vars,
                    f.wit_obj_vars,
                ),
            });
        }
    }
}
