//! Per-code lint fixtures: every lint code has at least one spec that
//! triggers it and one clean spec that does not.

use mmt_lint::{lint, LintCode, LintOptions, LintReport, Severity};
use mmt_model::text::parse_metamodel;
use mmt_model::Metamodel;
use mmt_qvtr::parse_and_resolve;
use std::sync::Arc;

fn mm(src: &str) -> Arc<Metamodel> {
    parse_metamodel(src).unwrap()
}

fn run(spec: &str, mms: &[Arc<Metamodel>]) -> LintReport {
    let hir = parse_and_resolve(spec, mms).unwrap();
    lint(&hir, &LintOptions::default())
}

fn codes(report: &LintReport) -> Vec<&'static str> {
    report.lints.iter().map(|l| l.code.code()).collect()
}

const M_STR: &str = "metamodel M { class A { attr x: Str; } class B { attr y: Str; } }";
const M_INT: &str = "metamodel M { class A { attr x: Int; } }";

/// A minimal spec no lint fires on: one relation, one direction, flat
/// templates.
#[test]
fn minimal_spec_is_clean() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(r.is_clean(), "unexpected lints:\n{}", r.render_text());
}

#[test]
fn mmt001_unused_variable_fires() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str; unused : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert_eq!(codes(&r), vec!["MMT001"]);
    assert!(r.lints[0].message.contains("`unused`"));
    assert_eq!(r.lints[0].severity(), Severity::Warn);
}

#[test]
fn mmt001_clean_when_var_used_in_when() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Int;
            domain l a : A { x = n };
            domain r b : A { x = n };
            when { n > 0 }
            depend l -> r;
          }
        }"#,
        &[mm(M_INT)],
    );
    assert!(!codes(&r).contains(&"MMT001"));
}

#[test]
fn mmt002_unbound_prim_variable_fires() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Int; k : Int;
            domain l a : A { x = n };
            domain r b : A { x = n };
            when { k > 0 }
            depend l -> r;
          }
        }"#,
        &[mm(M_INT)],
    );
    assert!(codes(&r).contains(&"MMT002"), "{}", r.render_text());
    assert!(r.has_errors());
    let l = r
        .lints
        .iter()
        .find(|l| l.code == LintCode::UnboundPrimVariable)
        .unwrap();
    assert!(l.message.contains("`k`"));
}

#[test]
fn mmt002_clean_when_var_pattern_bound() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Int;
            domain l a : A { x = n };
            domain r b : A { x = n };
            when { n > 0 }
            depend l -> r;
          }
        }"#,
        &[mm(M_INT)],
    );
    assert!(!codes(&r).contains(&"MMT002"));
}

#[test]
fn mmt003_unsatisfiable_when_fires() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Int;
            domain l a : A { x = n };
            domain r b : A { x = n };
            when { n > 3 and n < 2 }
            depend l -> r;
          }
        }"#,
        &[mm(M_INT)],
    );
    assert!(codes(&r).contains(&"MMT003"), "{}", r.render_text());
    assert!(r.has_errors());
}

#[test]
fn mmt003_detects_pattern_fact_conflict() {
    // The pattern pins a.x = "p"; `when` demands a.x = "q".
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = "p" };
            domain r b : A { x = n };
            when { a.x = "q" }
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(codes(&r).contains(&"MMT003"), "{}", r.render_text());
}

#[test]
fn mmt003_clean_on_satisfiable_when() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Int;
            domain l a : A { x = n };
            domain r b : A { x = n };
            when { n > 3 and n < 10 }
            depend l -> r;
          }
        }"#,
        &[mm(M_INT)],
    );
    assert!(!codes(&r).contains(&"MMT003"));
}

#[test]
fn mmt004_unsatisfiable_where_fires() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            where { n = "one" and n = "two" }
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(codes(&r).contains(&"MMT004"), "{}", r.render_text());
    assert!(r.has_errors());
}

#[test]
fn mmt004_not_reported_when_when_already_unsat() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Int;
            domain l a : A { x = n };
            domain r b : A { x = n };
            when { n > 3 and n < 2 }
            where { n = 1 and n = 2 }
            depend l -> r;
          }
        }"#,
        &[mm(M_INT)],
    );
    assert!(codes(&r).contains(&"MMT003"));
    assert!(!codes(&r).contains(&"MMT004"));
}

#[test]
fn mmt004_clean_on_satisfiable_where() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            where { n = "one" }
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(!codes(&r).contains(&"MMT004"));
}

#[test]
fn mmt005_unreachable_relation_fires() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            depend l -> r;
          }
          relation Orphan {
            m : Str;
            domain l c : A { x = m };
            domain r d : A { x = m };
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(codes(&r).contains(&"MMT005"), "{}", r.render_text());
    let l = r
        .lints
        .iter()
        .find(|l| l.code == LintCode::UnreachableRelation)
        .unwrap();
    assert_eq!(l.relation.as_deref(), Some("Orphan"));
}

#[test]
fn mmt005_clean_when_called_from_top() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            where { Helper(a, b) }
            depend l -> r;
          }
          relation Helper {
            m : Str;
            domain l c : A { x = m };
            domain r d : A { x = m };
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(!codes(&r).contains(&"MMT005"), "{}", r.render_text());
}

#[test]
fn mmt006_call_cycle_fires() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation P {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            where { Q(a, b) }
            depend l -> r;
          }
          relation Q {
            m : Str;
            domain l c : A { x = m };
            domain r d : A { x = m };
            where { P(c, d) }
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(codes(&r).contains(&"MMT006"), "{}", r.render_text());
    assert!(r.has_errors());
    let l = r
        .lints
        .iter()
        .find(|l| l.code == LintCode::CallCycle)
        .unwrap();
    assert!(l.message.contains("`P`") && l.message.contains("`Q`"));
}

#[test]
fn mmt006_clean_on_acyclic_calls() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation P {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            where { Q(a, b) }
            depend l -> r;
          }
          relation Q {
            m : Str;
            domain l c : A { x = m };
            domain r d : A { x = m };
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(!codes(&r).contains(&"MMT006"));
}

#[test]
fn mmt007_uninstantiable_domain_fires() {
    let abs = mm("metamodel M { abstract class A { attr x: Str; } class B { attr y: Str; } }");
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            depend l -> r;
          }
        }"#,
        &[abs],
    );
    assert!(codes(&r).contains(&"MMT007"), "{}", r.render_text());
    assert!(r.has_errors());
    let l = r
        .lints
        .iter()
        .find(|l| l.code == LintCode::UninstantiableDomain)
        .unwrap();
    assert!(l.message.contains("`A`"));
}

#[test]
fn mmt007_clean_when_abstract_class_has_concrete_subtype() {
    let abs =
        mm("metamodel M { abstract class A { attr x: Str; } class B extends A { attr y: Str; } }");
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            depend l -> r;
          }
        }"#,
        &[abs],
    );
    assert!(!codes(&r).contains(&"MMT007"), "{}", r.render_text());
}

#[test]
fn mmt010_repair_conflict_fires_on_overlapping_relations() {
    // R1's repairs towards `r` write A.x there; R2 reads A.x in `r`
    // universally (its r -> l direction).
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R1 {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
          }
          top relation R2 {
            m : Str;
            domain l c : A { x = m };
            domain r d : A { x = m };
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(codes(&r).contains(&"MMT010"), "{}", r.render_text());
    assert!(!r.has_errors());
    let l = r
        .lints
        .iter()
        .find(|l| l.code == LintCode::RepairConflict)
        .unwrap();
    assert!(l.message.contains("ping-pong"));
}

#[test]
fn mmt010_clean_on_disjoint_relations() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R1 {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            depend l -> r;
          }
          top relation R2 {
            m : Str;
            domain l c : B { y = m };
            domain r d : B { y = m };
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(!codes(&r).contains(&"MMT010"), "{}", r.render_text());
}

#[test]
fn mmt011_bidirectional_coupling_fires() {
    // Standard (all-directions) deps couple the relation with itself.
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(codes(&r).contains(&"MMT011"), "{}", r.render_text());
    assert_eq!(r.infos(), 1);
}

#[test]
fn mmt011_clean_on_single_direction() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
            depend l -> r;
          }
        }"#,
        &[mm(M_STR)],
    );
    assert!(!codes(&r).contains(&"MMT011"));
}

const UML: &str = "metamodel UML { class Class { attr name: Str; ref attrs: Attribute; } \
                   class Attribute { attr name: Str; } }";
const RDB: &str = "metamodel RDB { class Table { attr name: Str; ref cols: Column; } \
                   class Column { attr name: Str; } }";

#[test]
fn mmt020_grounding_blowup_fires_on_nested_templates() {
    // The class2rdbms AttrToCol shape: two object variables per side.
    let r = run(
        r#"transformation T(u : UML, r : RDB) {
          top relation AttrToCol {
            an : Str;
            domain u c : Class { attrs = a : Attribute { name = an } };
            domain r t : Table { cols = col : Column { name = an } };
            depend u -> r;
          }
        }"#,
        &[mm(UML), mm(RDB)],
    );
    assert!(codes(&r).contains(&"MMT020"), "{}", r.render_text());
    assert!(!r.has_errors());
    let l = r
        .lints
        .iter()
        .find(|l| l.code == LintCode::GroundingBlowup)
        .unwrap();
    assert!(l.message.contains("2 universal and 2 witness"));
}

#[test]
fn mmt020_clean_on_flat_templates() {
    let r = run(
        r#"transformation T(u : UML, r : RDB) {
          top relation ClassToTable {
            cn : Str;
            domain u c : Class { name = cn };
            domain r t : Table { name = cn };
            depend u -> r;
          }
        }"#,
        &[mm(UML), mm(RDB)],
    );
    assert!(!codes(&r).contains(&"MMT020"));
}

#[test]
fn allow_suppresses_codes() {
    let hir = parse_and_resolve(
        r#"transformation T(l : M, r : M) {
          top relation R1 {
            n : Str;
            domain l a : A { x = n };
            domain r b : A { x = n };
          }
          top relation R2 {
            m : Str;
            domain l c : A { x = m };
            domain r d : A { x = m };
          }
        }"#,
        &[mm(M_STR)],
    )
    .unwrap();
    let noisy = lint(&hir, &LintOptions::default());
    assert!(codes(&noisy).contains(&"MMT010"));
    let quiet = lint(
        &hir,
        &LintOptions {
            allow: vec![LintCode::RepairConflict, LintCode::BidirectionalCoupling],
        },
    );
    assert!(!codes(&quiet).contains(&"MMT010"));
    assert!(!codes(&quiet).contains(&"MMT011"));
    assert!(quiet.is_clean(), "{}", quiet.render_text());
}

#[test]
fn report_renders_text_and_json() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Int;
            domain l a : A { x = n };
            domain r b : A { x = n };
            when { n > 3 and n < 2 }
            depend l -> r;
          }
        }"#,
        &[mm(M_INT)],
    );
    let text = r.render_text();
    assert!(text.contains("error[MMT003] relation `R`:"), "{text}");
    assert!(text.contains("1 error(s)"), "{text}");
    let json = r.render_json();
    assert!(json.starts_with("{\"errors\":1,"), "{json}");
    assert!(json.contains("\"code\":\"MMT003\""), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
    assert!(json.contains("\"relation\":\"R\""), "{json}");
}

#[test]
fn errors_sort_before_warnings() {
    let r = run(
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Int; unused : Int;
            domain l a : A { x = n };
            domain r b : A { x = n };
            when { n > 3 and n < 2 }
            depend l -> r;
          }
        }"#,
        &[mm(M_INT)],
    );
    assert!(r.errors() >= 1 && r.warnings() >= 1);
    let sevs: Vec<Severity> = r.lints.iter().map(|l| l.severity()).collect();
    let mut sorted = sevs.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(sevs, sorted);
}

#[test]
fn lint_code_parse_round_trips() {
    for c in LintCode::ALL {
        assert_eq!(LintCode::parse(c.code()), Some(c));
        assert_eq!(c.severity(), c.severity());
    }
    assert_eq!(LintCode::parse("MMT999"), None);
}
