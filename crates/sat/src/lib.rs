//! # mmt-sat — CDCL SAT solver
//!
//! A from-scratch conflict-driven clause-learning SAT solver, standing in
//! for the Alloy/Kodkod→SAT back-end that Echo uses for least-change
//! enforcement (paper §3). Features: two-watched-literal propagation,
//! first-UIP clause learning, VSIDS branching with an indexed binary heap,
//! phase saving, and Luby restarts. Solving under *assumptions* supports
//! the increasing-distance search loop ("searching for all consistent
//! models at increasing distance", §3): the grounder encodes a cost bound
//! as an assumption literal and relaxes it monotonically.
//!
//! ```
//! use mmt_sat::{Solver, Lit, SatResult};
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert!(matches!(s.solve(), SatResult::Sat));
//! assert_eq!(s.value(b), Some(true));
//! ```

pub mod dimacs;

use std::fmt;

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Index into solver tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal with an explicit sign (`true` = positive).
    pub fn new(v: Var, sign: bool) -> Lit {
        if sign {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True for positive literals.
    pub fn sign(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.sign() { "" } else { "¬" }, self.var().0)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Solver outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable; read the model with [`Solver::value`].
    Sat,
    /// Unsatisfiable (under the given assumptions, if any).
    Unsat,
}

/// Aggregate statistics (exposed for benches).
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Decisions taken.
    pub decisions: u64,
    /// Unit propagations.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
}

const UNDEF_CLAUSE: u32 = u32::MAX;

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
}

#[derive(Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

/// Indexed max-heap over variable activities (MiniSat's VarOrder).
struct ActivityHeap {
    heap: Vec<Var>,
    pos: Vec<i32>, // -1 when absent
}

impl ActivityHeap {
    fn new() -> Self {
        ActivityHeap {
            heap: Vec::new(),
            pos: Vec::new(),
        }
    }

    fn grow(&mut self) {
        self.pos.push(-1);
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] >= 0
    }

    fn push(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.pos[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v.index()] as usize, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                return;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a as i32;
        self.pos[self.heap[b].index()] = b as i32;
    }
}

/// The CDCL solver.
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>, // indexed by Lit
    assign: Vec<Option<bool>>,
    phase: Vec<bool>, // saved phases
    reason: Vec<u32>, // clause index or UNDEF_CLAUSE
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: ActivityHeap,
    ok: bool,
    stats: SolverStats,
    seen: Vec<bool>,
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("vars", &self.num_vars())
            .field("clauses", &self.num_clauses())
            .field("ok", &self.ok)
            .finish()
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: ActivityHeap::new(),
            ok: true,
            stats: SolverStats::default(),
            seen: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(None);
        self.phase.push(false);
        self.reason.push(UNDEF_CLAUSE);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow();
        self.order.push(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a clause. Returns `false` if the formula became trivially
    /// unsatisfiable (empty clause, or conflicting units at level 0).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        debug_assert!(self.trail_lim.is_empty(), "add clauses at level 0");
        // Normalize: drop duplicate and false-at-0 literals; detect
        // tautologies and satisfied clauses.
        let mut cl: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => continue,
                None => {}
            }
            if cl.contains(&l) {
                continue;
            }
            if cl.contains(&l.negate()) {
                return true; // tautology
            }
            cl.push(l);
        }
        match cl.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(cl[0], UNDEF_CLAUSE) {
                    self.ok = false;
                    return false;
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                self.attach(cl);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].negate().index()].push(Watch {
            clause: idx,
            blocker: lits[1],
        });
        self.watches[lits[1].negate().index()].push(Watch {
            clause: idx,
            blocker: lits[0],
        });
        self.clauses.push(Clause { lits });
        idx
    }

    /// Current value of a literal.
    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|b| b == l.sign())
    }

    /// Model value of `v` after a `Sat` answer.
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assign[v.index()]
    }

    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var();
                self.assign[v.index()] = Some(l.sign());
                self.phase[v.index()] = l.sign();
                self.reason[v.index()] = reason;
                self.level[v.index()] = self.trail_lim.len() as u32;
                self.trail.push(l);
                self.stats.propagations += 1;
                true
            }
        }
    }

    /// Unit propagation; returns the conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // p became true: scan watchers of p's falsified side.
            let mut i = 0;
            let widx = p.index();
            'watchers: while i < self.watches[widx].len() {
                let w = self.watches[widx][i];
                if self.lit_value(w.blocker) == Some(true) {
                    i += 1;
                    continue;
                }
                let ci = w.clause as usize;
                // Ensure lits[0] is the other watched literal.
                let false_lit = p.negate();
                {
                    let cl = &mut self.clauses[ci];
                    if cl.lits[0] == false_lit {
                        cl.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci].lits[0];
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    self.watches[widx][i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new watch.
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[widx].swap_remove(i);
                        self.watches[lk.negate().index()].push(Watch {
                            clause: ci as u32,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if !self.enqueue(first, ci as u32) {
                    self.qhead = self.trail.len();
                    return Some(ci as u32);
                }
                i += 1;
            }
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    /// First-UIP conflict analysis. Returns the learned clause (UIP first)
    /// and the backjump level.
    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            let cl = &self.clauses[conflict as usize];
            let start = if p.is_some() { 1 } else { 0 };
            let lits: Vec<Lit> = cl.lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next marked literal on the trail.
            loop {
                idx -= 1;
                let l = self.trail[idx];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pl = p.expect("UIP exists");
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = pl.negate();
                break;
            }
            conflict = self.reason[pl.var().index()];
            debug_assert_ne!(conflict, UNDEF_CLAUSE);
        }
        for l in &learned[1..] {
            self.seen[l.var().index()] = false;
        }
        // Backjump level: second-highest level in the clause.
        let bj = if learned.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var().index()] > self.level[learned[max_i].var().index()] {
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
            self.level[learned[1].var().index()]
        };
        (learned, bj)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail nonempty");
                let v = l.var();
                self.assign[v.index()] = None;
                self.reason[v.index()] = UNDEF_CLAUSE;
                self.order.push(v, &self.activity);
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self, l: Lit) {
        self.trail_lim.push(self.trail.len());
        let ok = self.enqueue(l, UNDEF_CLAUSE);
        debug_assert!(ok, "decision literal must be unassigned");
        self.stats.decisions += 1;
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v.index()].is_none() {
                return Some(Lit::new(v, self.phase[v.index()]));
            }
        }
        None
    }

    /// Solves the formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves under `assumptions` (each forced true). The solver returns
    /// to decision level 0 afterwards, so it can be re-invoked with
    /// different assumptions (incremental use).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        let mut conflicts_budget = luby(self.stats.restarts) * 128;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    if assumptions.is_empty() {
                        self.ok = false;
                    }
                    self.cancel_until(0);
                    return SatResult::Unsat;
                }
                let n_assumed = assumptions.len() as u32;
                if self.decision_level() <= n_assumed {
                    // The conflict is rooted in the assumptions.
                    self.cancel_until(0);
                    return SatResult::Unsat;
                }
                let (learned, bj) = self.analyze(conflict);
                let bj = bj.max(self.assumption_level(assumptions));
                self.cancel_until(bj);
                let asserting = learned[0];
                let enq_ok = if learned.len() == 1 {
                    self.enqueue(asserting, UNDEF_CLAUSE)
                } else {
                    let ci = self.attach(learned);
                    self.enqueue(asserting, ci)
                };
                if !enq_ok {
                    self.cancel_until(0);
                    if assumptions.is_empty() {
                        self.ok = false;
                    }
                    return SatResult::Unsat;
                }
                self.var_inc *= 1.0 / 0.95;
                if conflicts_budget > 0 {
                    conflicts_budget -= 1;
                } else {
                    // Restart (keep assumption levels).
                    self.stats.restarts += 1;
                    self.cancel_until(self.assumption_level(assumptions));
                    conflicts_budget = luby(self.stats.restarts) * 128;
                }
            } else {
                // Extend assumptions first.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.lit_value(a) {
                        Some(true) => {
                            // Already satisfied: introduce an empty level
                            // so the level↔assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        None => self.decide(a),
                    }
                    continue;
                }
                match self.pick_branch() {
                    Some(l) => self.decide(l),
                    None => return SatResult::Sat,
                }
            }
        }
    }

    fn assumption_level(&self, assumptions: &[Lit]) -> u32 {
        (assumptions.len() as u32).min(self.decision_level())
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,…), 0-indexed.
fn luby(i: u64) -> u64 {
    let mut i = i + 1;
    loop {
        // Largest k with 2^k - 1 ≤ i.
        let mut k = 1u64;
        while (1u64 << (k + 1)) - 1 <= i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << k) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lit(v: &[Var], i: i32) -> Lit {
        if i > 0 {
            Lit::pos(v[(i - 1) as usize])
        } else {
            Lit::neg(v[(-i - 1) as usize])
        }
    }

    fn solver_with(n: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars = (0..n).map(|_| s.new_var()).collect();
        (s, vars)
    }

    #[test]
    fn trivial_sat_and_unit() {
        let (mut s, v) = solver_with(2);
        assert!(s.add_clause(&[lit(&v, 1), lit(&v, 2)]));
        assert!(s.add_clause(&[lit(&v, -1)]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(false));
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn empty_clause_unsat() {
        let (mut s, _) = solver_with(1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn contradictory_units_unsat() {
        let (mut s, v) = solver_with(1);
        assert!(s.add_clause(&[lit(&v, 1)]));
        assert!(!s.add_clause(&[lit(&v, -1)]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn requires_learning() {
        // (a∨b)(a∨¬b)(¬a∨c)(¬a∨¬c) — unsat.
        let (mut s, v) = solver_with(3);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, 1), lit(&v, -2)]);
        s.add_clause(&[lit(&v, -1), lit(&v, 3)]);
        s.add_clause(&[lit(&v, -1), lit(&v, -3)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    /// Pigeonhole: n+1 pigeons into n holes is unsatisfiable.
    fn pigeonhole(pigeons: usize, holes: usize) -> SatResult {
        let mut s = Solver::new();
        let mut var = vec![vec![Var(0); holes]; pigeons];
        for p in var.iter_mut() {
            for h in p.iter_mut() {
                *h = s.new_var();
            }
        }
        for row in &var {
            let clause: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for (i, p1) in var.iter().enumerate() {
                for p2 in &var[i + 1..] {
                    s.add_clause(&[Lit::neg(p1[h]), Lit::neg(p2[h])]);
                }
            }
        }
        s.solve()
    }

    #[test]
    fn pigeonhole_unsat() {
        assert_eq!(pigeonhole(4, 3), SatResult::Unsat);
        assert_eq!(pigeonhole(5, 4), SatResult::Unsat);
        assert_eq!(pigeonhole(3, 3), SatResult::Sat);
    }

    #[test]
    fn assumptions_are_incremental() {
        let (mut s, v) = solver_with(3);
        // a → b, b → c.
        s.add_clause(&[lit(&v, -1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -2), lit(&v, 3)]);
        // Assume a: model must set c.
        assert_eq!(s.solve_with(&[lit(&v, 1)]), SatResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
        // Assume a ∧ ¬c: unsat, but the formula stays usable.
        assert_eq!(s.solve_with(&[lit(&v, 1), lit(&v, -3)]), SatResult::Unsat);
        // Without assumptions: still sat.
        assert_eq!(s.solve(), SatResult::Sat);
        // Assume ¬a: sat.
        assert_eq!(s.solve_with(&[lit(&v, -1)]), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(false));
    }

    #[test]
    fn conflicting_assumptions() {
        let (mut s, v) = solver_with(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve_with(&[lit(&v, -1), lit(&v, -2)]), SatResult::Unsat);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let (mut s, v) = solver_with(2);
        assert!(s.add_clause(&[lit(&v, 1), lit(&v, 1)]));
        assert!(s.add_clause(&[lit(&v, 2), lit(&v, -2)])); // tautology: ignored
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn stats_track_work() {
        let (mut s, v) = solver_with(3);
        s.add_clause(&[lit(&v, 1), lit(&v, 2), lit(&v, 3)]);
        s.solve();
        assert!(s.stats().propagations > 0);
    }

    /// Brute-force reference check.
    fn brute_force(n: usize, clauses: &[Vec<i32>]) -> bool {
        'outer: for mask in 0u32..(1 << n) {
            for cl in clauses {
                let sat = cl.iter().any(|&l| {
                    let v = (l.unsigned_abs() - 1) as usize;
                    let val = mask & (1 << v) != 0;
                    (l > 0) == val
                });
                if !sat {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        /// The CDCL solver agrees with brute force on random small CNFs,
        /// and its SAT models actually satisfy the formula.
        #[test]
        fn matches_brute_force(
            clauses in proptest::collection::vec(
                proptest::collection::vec((1i32..=8, proptest::bool::ANY), 1..4),
                0..24
            )
        ) {
            let n = 8usize;
            let signed: Vec<Vec<i32>> = clauses
                .iter()
                .map(|cl| cl.iter().map(|&(v, s)| if s { v } else { -v }).collect())
                .collect();
            let (mut s, vars) = solver_with(n);
            let mut early_unsat = false;
            for cl in &signed {
                let lits: Vec<Lit> = cl.iter().map(|&l| lit(&vars, l)).collect();
                if !s.add_clause(&lits) {
                    early_unsat = true;
                    break;
                }
            }
            let expected = brute_force(n, &signed);
            if early_unsat {
                prop_assert!(!expected);
            } else {
                let got = s.solve();
                prop_assert_eq!(got == SatResult::Sat, expected);
                if got == SatResult::Sat {
                    // Verify the model.
                    for cl in &signed {
                        let ok = cl.iter().any(|&l| {
                            let var = vars[(l.unsigned_abs() - 1) as usize];
                            let val = s.value(var).unwrap_or(false);
                            (l > 0) == val
                        });
                        prop_assert!(ok, "model does not satisfy clause {:?}", cl);
                    }
                }
            }
        }

        /// Incremental assumption solving agrees with adding units.
        #[test]
        fn assumptions_match_units(
            clauses in proptest::collection::vec(
                proptest::collection::vec((1i32..=6, proptest::bool::ANY), 1..4),
                0..16
            ),
            assumed in proptest::collection::vec((1i32..=6, proptest::bool::ANY), 0..3)
        ) {
            let n = 6usize;
            let signed: Vec<Vec<i32>> = clauses
                .iter()
                .map(|cl| cl.iter().map(|&(v, s)| if s { v } else { -v }).collect())
                .collect();
            let assumed: Vec<i32> = assumed.iter().map(|&(v, s)| if s { v } else { -v }).collect();
            // Reference: formula + assumptions as unit clauses.
            let mut all = signed.clone();
            for &a in &assumed {
                all.push(vec![a]);
            }
            let expected = brute_force(n, &all);
            // Incremental: assumptions passed to solve_with.
            let (mut s, vars) = solver_with(n);
            let mut early_unsat = false;
            for cl in &signed {
                let lits: Vec<Lit> = cl.iter().map(|&l| lit(&vars, l)).collect();
                if !s.add_clause(&lits) {
                    early_unsat = true;
                    break;
                }
            }
            if early_unsat {
                prop_assert!(!expected);
            } else {
                let alits: Vec<Lit> = assumed.iter().map(|&l| lit(&vars, l)).collect();
                let got = s.solve_with(&alits);
                prop_assert_eq!(got == SatResult::Sat, expected);
                // And repeated solving stays consistent (incrementality).
                let again = s.solve_with(&alits);
                prop_assert_eq!(got, again);
            }
        }
    }
}
