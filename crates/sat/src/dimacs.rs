//! DIMACS CNF import/export.
//!
//! Lets ground problems be dumped for external solvers (debugging the
//! grounding) and standard benchmark instances be replayed against this
//! solver.

use crate::{Lit, SatResult, Solver, Var};
use std::fmt::Write as _;

/// Errors raised while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF into a fresh solver. Returns the solver and the
/// variable table (index `i` = DIMACS variable `i + 1`).
pub fn parse_dimacs(src: &str) -> Result<(Solver, Vec<Var>), DimacsError> {
    let mut solver = Solver::new();
    let mut vars: Vec<Var> = Vec::new();
    let mut declared: Option<(usize, usize)> = None;
    let mut clauses = 0usize;
    let mut current: Vec<Lit> = Vec::new();
    for (ln, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(DimacsError {
                    line: ln + 1,
                    msg: "expected `p cnf <vars> <clauses>`".into(),
                });
            }
            let nv: usize = it.next().and_then(|s| s.parse().ok()).ok_or(DimacsError {
                line: ln + 1,
                msg: "bad variable count".into(),
            })?;
            let nc: usize = it.next().and_then(|s| s.parse().ok()).ok_or(DimacsError {
                line: ln + 1,
                msg: "bad clause count".into(),
            })?;
            declared = Some((nv, nc));
            while vars.len() < nv {
                vars.push(solver.new_var());
            }
            continue;
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| DimacsError {
                line: ln + 1,
                msg: format!("bad literal `{tok}`"),
            })?;
            if v == 0 {
                solver.add_clause(&current);
                current.clear();
                clauses += 1;
            } else {
                let idx = (v.unsigned_abs() - 1) as usize;
                while vars.len() <= idx {
                    vars.push(solver.new_var());
                }
                current.push(Lit::new(vars[idx], v > 0));
            }
        }
    }
    if !current.is_empty() {
        solver.add_clause(&current);
        clauses += 1;
    }
    if let Some((_, nc)) = declared {
        if clauses != nc {
            return Err(DimacsError {
                line: 0,
                msg: format!("header declared {nc} clauses, found {clauses}"),
            });
        }
    }
    Ok((solver, vars))
}

/// Renders a clause list in DIMACS CNF.
pub fn to_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "p cnf {} {}", num_vars, clauses.len());
    for cl in clauses {
        for &l in cl {
            let v = l.var().0 as i64 + 1;
            let _ = write!(s, "{} ", if l.sign() { v } else { -v });
        }
        s.push_str("0\n");
    }
    s
}

/// Convenience: parse, solve and report `SATISFIABLE`/`UNSATISFIABLE` in
/// SAT-competition style, including the model line when satisfiable.
pub fn solve_dimacs(src: &str) -> Result<String, DimacsError> {
    let (mut solver, vars) = parse_dimacs(src)?;
    match solver.solve() {
        SatResult::Unsat => Ok("s UNSATISFIABLE\n".into()),
        SatResult::Sat => {
            let mut s = String::from("s SATISFIABLE\nv ");
            for (i, &v) in vars.iter().enumerate() {
                let val = solver.value(v).unwrap_or(false);
                let _ = write!(s, "{} ", if val { i as i64 + 1 } else { -(i as i64 + 1) });
            }
            s.push_str("0\n");
            Ok(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_solve_sat() {
        let out = solve_dimacs("c a comment\np cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        assert!(out.starts_with("s SATISFIABLE"));
        assert!(out.contains("-1"));
        assert!(out.contains(" 2 "));
    }

    #[test]
    fn parse_and_solve_unsat() {
        let out = solve_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert_eq!(out, "s UNSATISFIABLE\n");
    }

    #[test]
    fn round_trip() {
        let (mut solver, vars) = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(vars.len(), 3);
        assert_eq!(solver.solve(), SatResult::Sat);
        let clauses = vec![
            vec![Lit::pos(vars[0]), Lit::neg(vars[1])],
            vec![Lit::pos(vars[1]), Lit::pos(vars[2])],
        ];
        let text = to_dimacs(3, &clauses);
        let (mut s2, _) = parse_dimacs(&text).unwrap();
        assert_eq!(s2.solve(), SatResult::Sat);
    }

    #[test]
    fn header_clause_count_checked() {
        let err = parse_dimacs("p cnf 1 5\n1 0\n").unwrap_err();
        assert!(err.msg.contains("declared 5"));
    }

    #[test]
    fn bad_tokens_rejected() {
        assert!(parse_dimacs("p cnf x 1\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\nzz 0\n").is_err());
        assert!(parse_dimacs("p dnf 1 1\n").is_err());
    }

    #[test]
    fn clauses_without_header_accepted() {
        let (mut s, vars) = parse_dimacs("1 -2 0\n2 0\n").unwrap();
        assert_eq!(vars.len(), 2);
        assert_eq!(s.solve(), SatResult::Sat);
    }
}
