//! # mmt-deps — checking-dependency algebra and Horn entailment
//!
//! Implements §2.2–§2.3 of the paper. A *checking dependency* `S → T` for a
//! relation `R` over domains `M₁ … Mₙ` states that the model conforming to
//! `T` depends on the models conforming to the metamodels in `S`
//! (`S ⊆ dom R`, `T ∈ dom R`, `T ∉ S`). The set of dependencies attached to
//! a relation, written `R̄`, determines which directional checks constitute
//! consistency.
//!
//! Dependencies are definite Horn clauses (`s₁ ∧ … ∧ sₖ ⇒ t`), so
//! entailment `D ⊢ S → T` is decidable in time linear in the total size of
//! `D` — the paper's §2.3 "type checking in linear time" claim — using
//! Dowling–Gallier counter-based unit propagation, implemented in
//! [`DepSet::entails`].

use std::fmt;

/// Index of a domain (model position) within a relation. Relations in this
/// framework have at most [`MAX_DOMAINS`] domains.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DomIdx(pub u8);

/// Maximum number of domains in a relation ([`DomSet`] is a 64-bit set).
pub const MAX_DOMAINS: usize = 64;

impl DomIdx {
    /// Index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DomIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// A set of domain indices (bitset over `0..MAX_DOMAINS`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct DomSet(pub u64);

impl DomSet {
    /// The empty set.
    pub const EMPTY: DomSet = DomSet(0);

    /// Singleton set `{d}`.
    pub fn single(d: DomIdx) -> DomSet {
        DomSet(1u64 << d.0)
    }

    /// Set containing every index in `it`.
    #[allow(clippy::should_implement_trait)] // const-friendly inherent form
    pub fn from_iter(it: impl IntoIterator<Item = DomIdx>) -> DomSet {
        let mut s = DomSet::EMPTY;
        for d in it {
            s = s.with(d);
        }
        s
    }

    /// The full set `{0, …, n-1}`.
    pub fn full(n: usize) -> DomSet {
        assert!(n <= MAX_DOMAINS, "too many domains");
        if n == MAX_DOMAINS {
            DomSet(u64::MAX)
        } else {
            DomSet((1u64 << n) - 1)
        }
    }

    /// True iff `d` is a member.
    pub fn contains(self, d: DomIdx) -> bool {
        self.0 & (1u64 << d.0) != 0
    }

    /// This set plus `d`.
    #[must_use]
    pub fn with(self, d: DomIdx) -> DomSet {
        DomSet(self.0 | (1u64 << d.0))
    }

    /// This set minus `d`.
    #[must_use]
    pub fn without(self, d: DomIdx) -> DomSet {
        DomSet(self.0 & !(1u64 << d.0))
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: DomSet) -> DomSet {
        DomSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: DomSet) -> DomSet {
        DomSet(self.0 & other.0)
    }

    /// True iff `self ⊆ other`.
    pub fn subset_of(self, other: DomSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True iff the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over members in ascending order.
    pub fn iter(self) -> impl Iterator<Item = DomIdx> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let d = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(DomIdx(d))
            }
        })
    }

    fn fmt_impl(self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for DomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_impl(f)
    }
}

impl fmt::Display for DomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_impl(f)
    }
}

/// A checking dependency `S → T`: the `T` domain depends on the domains in
/// `S`. Invariant: `T ∉ S`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Dep {
    /// Source domains (universally quantified side).
    pub sources: DomSet,
    /// Target domain (existentially quantified side).
    pub target: DomIdx,
}

impl Dep {
    /// Builds `S → T`, checking `T ∉ S`.
    pub fn new(sources: DomSet, target: DomIdx) -> Result<Dep, DepError> {
        if sources.contains(target) {
            return Err(DepError::TargetInSources { target });
        }
        Ok(Dep { sources, target })
    }

    /// Builds `S → T` from indices; panics on `T ∈ S` (test/const helper).
    pub fn of(sources: &[u8], target: u8) -> Dep {
        let s = DomSet::from_iter(sources.iter().map(|&i| DomIdx(i)));
        Dep::new(s, DomIdx(target)).expect("target must not be a source")
    }
}

impl fmt::Display for Dep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.sources.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{d}")?;
        }
        if self.sources.is_empty() {
            write!(f, "∅")?;
        }
        write!(f, " → {}", self.target)
    }
}

/// Errors in dependency construction and use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepError {
    /// The target also appears among the sources.
    TargetInSources {
        /// The offending target.
        target: DomIdx,
    },
    /// A domain index is out of range for the declaring relation.
    DomainOutOfRange {
        /// The offending index.
        idx: DomIdx,
        /// Number of domains in the relation.
        arity: usize,
    },
}

impl fmt::Display for DepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepError::TargetInSources { target } => {
                write!(f, "dependency target {target} also appears in sources")
            }
            DepError::DomainOutOfRange { idx, arity } => {
                write!(
                    f,
                    "domain {idx} out of range (relation has {arity} domains)"
                )
            }
        }
    }
}

impl std::error::Error for DepError {}

/// The set of checking dependencies attached to a relation (the paper's
/// `R̄`), over a fixed arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepSet {
    arity: usize,
    deps: Vec<Dep>,
}

impl DepSet {
    /// An empty dependency set over `arity` domains.
    pub fn new(arity: usize) -> DepSet {
        assert!(arity <= MAX_DOMAINS, "too many domains");
        DepSet {
            arity,
            deps: Vec::new(),
        }
    }

    /// The paper's conservative *standard semantics*:
    /// `R̄ = ⋃ᵢ (dom R ∖ Mᵢ → Mᵢ)` — one directional check per domain, each
    /// sourcing from all the others.
    pub fn standard(arity: usize) -> DepSet {
        let mut s = DepSet::new(arity);
        let full = DomSet::full(arity);
        for i in 0..arity {
            let t = DomIdx(i as u8);
            s.deps.push(Dep {
                sources: full.without(t),
                target: t,
            });
        }
        s
    }

    /// Number of domains this set ranges over.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The attached dependencies, in insertion order.
    pub fn deps(&self) -> &[Dep] {
        &self.deps
    }

    /// True when no dependencies are attached.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Number of attached dependencies.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Adds a dependency, validating domain ranges. Duplicates are ignored.
    pub fn add(&mut self, dep: Dep) -> Result<(), DepError> {
        let full = DomSet::full(self.arity);
        if !dep.sources.subset_of(full) {
            let bad = dep
                .sources
                .iter()
                .find(|d| d.index() >= self.arity)
                .expect("some source out of range");
            return Err(DepError::DomainOutOfRange {
                idx: bad,
                arity: self.arity,
            });
        }
        if dep.target.index() >= self.arity {
            return Err(DepError::DomainOutOfRange {
                idx: dep.target,
                arity: self.arity,
            });
        }
        if !self.deps.contains(&dep) {
            self.deps.push(dep);
        }
        Ok(())
    }

    /// Linear-time Horn entailment `D ⊢ S → T` (Dowling–Gallier).
    ///
    /// Treats every domain in `goal.sources` as a fact and propagates
    /// through the dependency clauses using per-clause counters of
    /// unsatisfied antecedents; `goal.target` must become derivable.
    /// Runs in `O(Σ |dep.sources| + arity)`.
    pub fn entails(&self, goal: Dep) -> bool {
        self.derivable_from(goal.sources).contains(goal.target)
    }

    /// All domains derivable from the facts in `from` under this set.
    pub fn derivable_from(&self, from: DomSet) -> DomSet {
        let mut facts = from;
        // counters[i] = number of sources of deps[i] not among the initial
        // facts; watch[d] = indices of deps that wait on d. Each source is
        // accounted exactly once: either excluded from the counter (initial
        // fact) or decremented when first derived (facts dedups the queue).
        let mut counters: Vec<u32> = Vec::with_capacity(self.deps.len());
        let mut watch: Vec<Vec<u32>> = vec![Vec::new(); self.arity];
        for (i, dep) in self.deps.iter().enumerate() {
            let unknown = dep.sources.len() - dep.sources.intersect(from).len();
            counters.push(unknown as u32);
            for s in dep.sources.iter() {
                if !from.contains(s) {
                    watch[s.index()].push(i as u32);
                }
            }
        }
        let mut queue: Vec<DomIdx> = Vec::with_capacity(self.arity);
        for (i, dep) in self.deps.iter().enumerate() {
            if counters[i] == 0 && !facts.contains(dep.target) {
                facts = facts.with(dep.target);
                queue.push(dep.target);
            }
        }
        while let Some(d) = queue.pop() {
            for &ci in &watch[d.index()] {
                let c = &mut counters[ci as usize];
                debug_assert!(*c > 0, "source decremented twice");
                *c -= 1;
                if *c == 0 {
                    let t = self.deps[ci as usize].target;
                    if !facts.contains(t) {
                        facts = facts.with(t);
                        queue.push(t);
                    }
                }
            }
        }
        facts
    }

    /// Entailment of a *multi-target* dependency `S → T₁ T₂ …` (§2.3):
    /// `{M₁→M₂, M₁→M₃} ⊢ M₁ → M₂M₃`. Holds iff every target is derivable.
    pub fn entails_multi(&self, sources: DomSet, targets: DomSet) -> bool {
        targets.subset_of(self.derivable_from(sources))
    }

    /// Entailment of a *source-union* dependency `S₁ | S₂ | … → T` (§2.3):
    /// `{M₁→M₃, M₂→M₃} ⊢ M₁|M₂ → M₃`. Holds iff each alternative alone
    /// derives the target.
    pub fn entails_union(&self, alternatives: &[DomSet], target: DomIdx) -> bool {
        !alternatives.is_empty()
            && alternatives
                .iter()
                .all(|&alt| self.derivable_from(alt).contains(target))
    }

    /// Reference implementation of [`DepSet::entails`] by naive fixpoint
    /// iteration; used for differential testing.
    pub fn entails_naive(&self, goal: Dep) -> bool {
        let mut facts = goal.sources;
        loop {
            let before = facts;
            for dep in &self.deps {
                if dep.sources.subset_of(facts) {
                    facts = facts.with(dep.target);
                }
            }
            if facts == before {
                break;
            }
        }
        facts.contains(goal.target)
    }

    /// Enumerates the full closure: every `S → T` with `T ∉ S` over this
    /// arity that this set entails. Exponential in arity; intended for
    /// small `n` (diagnostics, tests).
    pub fn closure(&self) -> Vec<Dep> {
        let n = self.arity;
        let mut out = Vec::new();
        for mask in 0..(1u64 << n) {
            let sources = DomSet(mask);
            let derived = self.derivable_from(sources);
            for t in derived.iter() {
                if !sources.contains(t) {
                    out.push(Dep { sources, target: t });
                }
            }
        }
        out
    }

    /// Removes dependencies entailed by the remaining ones (irredundant
    /// core). Preserves the entailment closure.
    pub fn minimize(&self) -> DepSet {
        let mut kept: Vec<Dep> = self.deps.clone();
        let mut i = 0;
        while i < kept.len() {
            let candidate = kept[i];
            let mut rest = DepSet::new(self.arity);
            for (j, &d) in kept.iter().enumerate() {
                if j != i {
                    rest.deps.push(d);
                }
            }
            if rest.entails(candidate) {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        DepSet {
            arity: self.arity,
            deps: kept,
        }
    }

    /// True iff this set's closure equals the standard semantics' closure —
    /// i.e. the relation behaves exactly as the unextended QVT-R standard
    /// prescribes (conservativity test, §2.2).
    pub fn is_standard_equivalent(&self) -> bool {
        let std_set = DepSet::standard(self.arity);
        let mut a = self.closure();
        let mut b = std_set.closure();
        a.sort_by_key(|d| (d.sources.0, d.target.0));
        b.sort_by_key(|d| (d.sources.0, d.target.0));
        a == b
    }
}

impl fmt::Display for DepSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.deps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn domset_ops() {
        let s = DomSet::from_iter([DomIdx(0), DomIdx(2)]);
        assert!(s.contains(DomIdx(0)));
        assert!(!s.contains(DomIdx(1)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.with(DomIdx(1)).len(), 3);
        assert_eq!(s.without(DomIdx(0)).len(), 1);
        assert!(s.subset_of(DomSet::full(3)));
        assert!(!DomSet::full(3).subset_of(s));
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![DomIdx(0), DomIdx(2)]);
        assert_eq!(s.to_string(), "{M0 M2}");
    }

    #[test]
    fn dep_construction_guards() {
        assert!(Dep::new(DomSet::single(DomIdx(1)), DomIdx(1)).is_err());
        assert!(Dep::new(DomSet::single(DomIdx(1)), DomIdx(0)).is_ok());
        assert_eq!(Dep::of(&[0, 1], 2).to_string(), "M0 M1 → M2");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = DepSet::new(2);
        assert!(matches!(
            s.add(Dep::of(&[0], 5)),
            Err(DepError::DomainOutOfRange { .. })
        ));
        assert!(matches!(
            s.add(Dep::of(&[5], 0)),
            Err(DepError::DomainOutOfRange { .. })
        ));
    }

    /// The paper's §2.3 example: `{M₁→M₂, M₂→M₃} ⊢ M₁→M₃`.
    #[test]
    fn transitivity_entailment() {
        let mut d = DepSet::new(3);
        d.add(Dep::of(&[0], 1)).unwrap();
        d.add(Dep::of(&[1], 2)).unwrap();
        assert!(d.entails(Dep::of(&[0], 2)));
        assert!(!d.entails(Dep::of(&[2], 0)));
    }

    /// §2.3: `{M₁→M₂, M₁→M₃} ⊢ M₁ → M₂M₃` (multi-target).
    #[test]
    fn multi_target_entailment() {
        let mut d = DepSet::new(3);
        d.add(Dep::of(&[0], 1)).unwrap();
        d.add(Dep::of(&[0], 2)).unwrap();
        let targets = DomSet::from_iter([DomIdx(1), DomIdx(2)]);
        assert!(d.entails_multi(DomSet::single(DomIdx(0)), targets));
        assert!(!d.entails_multi(DomSet::single(DomIdx(1)), targets));
    }

    /// §2.3: `{M₁→M₃, M₂→M₃} ⊢ M₁|M₂ → M₃` (source-union).
    #[test]
    fn union_source_entailment() {
        let mut d = DepSet::new(3);
        d.add(Dep::of(&[0], 2)).unwrap();
        d.add(Dep::of(&[1], 2)).unwrap();
        let alts = [DomSet::single(DomIdx(0)), DomSet::single(DomIdx(1))];
        assert!(d.entails_union(&alts, DomIdx(2)));
        // If only one alternative derives the target, the union dep fails.
        let mut d2 = DepSet::new(3);
        d2.add(Dep::of(&[0], 2)).unwrap();
        assert!(!d2.entails_union(&alts, DomIdx(2)));
        assert!(!d2.entails_union(&[], DomIdx(2)));
    }

    /// §2.3: a relation `R̄ = {M₁→M₂}` must NOT be allowed to call
    /// `S̄ = {M₂→M₁}` — flagged as a typing error.
    #[test]
    fn reversed_call_rejected() {
        let mut callee = DepSet::new(2);
        callee.add(Dep::of(&[1], 0)).unwrap();
        // The caller needs direction M₁→M₂ (0→1); the callee only offers 1→0.
        assert!(!callee.entails(Dep::of(&[0], 1)));
        assert!(callee.entails(Dep::of(&[1], 0)));
    }

    /// The paper's MF dependency set over (CF₁, CF₂, FM) = (0, 1, 2):
    /// `{CF₁ CF₂ → FM, FM → CF₁, FM → CF₂}`.
    #[test]
    fn paper_mf_depset() {
        let mut d = DepSet::new(3);
        d.add(Dep::of(&[0, 1], 2)).unwrap();
        d.add(Dep::of(&[2], 0)).unwrap();
        d.add(Dep::of(&[2], 1)).unwrap();
        // FM alone determines both configurations (multi-target form
        // MF_{CF1×CF2} from the paper).
        assert!(d.entails_multi(
            DomSet::single(DomIdx(2)),
            DomSet::from_iter([DomIdx(0), DomIdx(1)])
        ));
        // But one configuration alone determines nothing.
        assert!(!d.entails(Dep::of(&[0], 2)));
        // It is NOT standard-equivalent (that is the whole point).
        assert!(!d.is_standard_equivalent());
    }

    #[test]
    fn standard_set_is_standard_equivalent() {
        for n in 1..=5 {
            assert!(DepSet::standard(n).is_standard_equivalent(), "n={n}");
        }
    }

    #[test]
    fn standard_shape() {
        let s = DepSet::standard(3);
        assert_eq!(s.len(), 3);
        assert!(s.deps().contains(&Dep::of(&[1, 2], 0)));
        assert!(s.deps().contains(&Dep::of(&[0, 2], 1)));
        assert!(s.deps().contains(&Dep::of(&[0, 1], 2)));
    }

    #[test]
    fn minimize_removes_entailed() {
        let mut d = DepSet::new(3);
        d.add(Dep::of(&[0], 1)).unwrap();
        d.add(Dep::of(&[1], 2)).unwrap();
        d.add(Dep::of(&[0], 2)).unwrap(); // entailed by the other two
        let m = d.minimize();
        assert_eq!(m.len(), 2);
        // Closure is preserved.
        assert!(m.entails(Dep::of(&[0], 2)));
    }

    #[test]
    fn empty_sources_dep_is_axiom() {
        let mut d = DepSet::new(2);
        d.add(Dep::of(&[], 1)).unwrap();
        // target derivable from nothing at all.
        assert!(d.entails(Dep::of(&[], 1)));
        assert!(d.entails(Dep::of(&[0], 1)));
    }

    #[test]
    fn duplicates_ignored() {
        let mut d = DepSet::new(2);
        d.add(Dep::of(&[0], 1)).unwrap();
        d.add(Dep::of(&[0], 1)).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn display_forms() {
        let mut d = DepSet::new(3);
        d.add(Dep::of(&[0, 1], 2)).unwrap();
        assert_eq!(d.to_string(), "{M0 M1 → M2}");
        assert_eq!(Dep::of(&[], 1).to_string(), "∅ → M1");
    }

    fn arb_depset(arity: usize, max_deps: usize) -> impl Strategy<Value = DepSet> {
        let dep = (0u64..(1 << arity), 0..arity as u8).prop_filter_map(
            "target must not be in sources",
            move |(mask, t)| {
                let sources = DomSet(mask).without(DomIdx(t));
                Dep::new(sources, DomIdx(t)).ok()
            },
        );
        proptest::collection::vec(dep, 0..=max_deps).prop_map(move |deps| {
            let mut s = DepSet::new(arity);
            for d in deps {
                s.add(d).unwrap();
            }
            s
        })
    }

    proptest! {
        /// The linear-time Dowling–Gallier algorithm agrees with the naive
        /// fixpoint on random dependency sets and goals.
        #[test]
        fn entails_matches_naive(
            set in arb_depset(5, 8),
            goal_mask in 0u64..(1 << 5),
            goal_t in 0u8..5,
        ) {
            let sources = DomSet(goal_mask).without(DomIdx(goal_t));
            let goal = Dep { sources, target: DomIdx(goal_t) };
            prop_assert_eq!(set.entails(goal), set.entails_naive(goal));
        }

        /// Every attached dependency is self-entailed.
        #[test]
        fn attached_deps_are_entailed(set in arb_depset(5, 8)) {
            for &d in set.deps() {
                prop_assert!(set.entails(d));
            }
        }

        /// Minimization preserves the closure.
        #[test]
        fn minimize_preserves_closure(set in arb_depset(4, 6)) {
            let min = set.minimize();
            let mut a = set.closure();
            let mut b = min.closure();
            a.sort_by_key(|d| (d.sources.0, d.target.0));
            b.sort_by_key(|d| (d.sources.0, d.target.0));
            prop_assert_eq!(a, b);
        }

        /// Entailment is monotone in the fact set.
        #[test]
        fn derivable_is_monotone(set in arb_depset(5, 8), a in 0u64..(1<<5), b in 0u64..(1<<5)) {
            let sa = DomSet(a);
            let sb = DomSet(a | b);
            prop_assert!(set.derivable_from(sa).subset_of(set.derivable_from(sb)));
        }
    }
}
