//! # mmt-gen — synthetic workload generators
//!
//! The paper evaluates on its running example (feature models vs. `k`
//! configurations) but publishes no datasets; this crate generates seeded
//! synthetic workloads with the same shape at controllable scale —
//! consistent by construction, with injectable inconsistencies matching
//! the paper's §1/§3 update scenarios.
//!
//! Beyond the running example, the [`scenario`] module carries the
//! ported exemplar catalog (Company HR, class↔RDBMS) behind the
//! [`Scenario`](scenario::Scenario) abstraction the differential
//! suites and benches sweep over.

pub mod scenario;

use mmt_deps::{Dep, DepSet, DomIdx, DomSet};
use mmt_dist::EditOp;
use mmt_model::text::parse_metamodel;
use mmt_model::{AttrType, ClassId, Metamodel, Model, ObjId, Value};
use mmt_qvtr::{parse_and_resolve, Hir};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;

/// Parameters for a feature-model workload.
#[derive(Clone, Debug)]
pub struct FeatureSpec {
    /// Number of features in the feature model.
    pub n_features: usize,
    /// Number of configurations (`k` in the paper).
    pub k_configs: usize,
    /// Fraction of features that are mandatory.
    pub mandatory_ratio: f64,
    /// Probability an optional feature is selected in a configuration.
    pub select_prob: f64,
    /// RNG seed (workloads are fully reproducible).
    pub seed: u64,
}

impl Default for FeatureSpec {
    fn default() -> Self {
        FeatureSpec {
            n_features: 8,
            k_configs: 2,
            mandatory_ratio: 0.3,
            select_prob: 0.4,
            seed: 42,
        }
    }
}

/// A generated workload: metamodels, resolved transformation, and a
/// consistent model tuple `(cf_1, …, cf_k, fm)`.
pub struct FeatureWorkload {
    /// The CF metamodel.
    pub cf: Arc<Metamodel>,
    /// The FM metamodel.
    pub fm: Arc<Metamodel>,
    /// The resolved `F = MF ∧ OF` transformation over `k + 1` models,
    /// behind the shared handle the un-borrowed stack consumes
    /// (`DeltaChecker`/engines clone it instead of borrowing).
    pub hir: Arc<Hir>,
    /// Models in model-space order: `cf_1 … cf_k, fm`.
    pub models: Vec<Model>,
    /// The spec that produced this workload.
    pub spec: FeatureSpec,
}

/// The QVT-R source of the paper's `F = MF ∧ OF` specification,
/// generalized to `k` configurations, with the §2.2 dependency sets
/// `MF̄ = {CF₁ … CF_k → FM} ∪ {FM → CF_i}` and `OF̄ = {CF_i → FM}`.
pub fn transformation_source(k: usize) -> String {
    assert!(k >= 1, "need at least one configuration");
    let mut params = String::new();
    for i in 1..=k {
        let _ = write!(params, "cf{i} : CF, ");
    }
    let mut mf_domains = String::new();
    let mut of_domains = String::new();
    for i in 1..=k {
        let _ = writeln!(
            mf_domains,
            "    domain cf{i} s{i} : Feature {{ name = n }};"
        );
        let _ = writeln!(
            of_domains,
            "    domain cf{i} t{i} : Feature {{ name = m }};"
        );
    }
    let all_cfs: Vec<String> = (1..=k).map(|i| format!("cf{i}")).collect();
    let union_cfs = all_cfs.join(" | ");
    let space_cfs = all_cfs.join(" ");
    format!(
        r#"transformation F({params}fm : FM) {{
  top relation MF {{
    n : Str;
{mf_domains}    domain fm f : Feature {{ name = n, mandatory = true }};
    depend {space_cfs} -> fm;
    depend fm -> {space_cfs};
  }}
  top relation OF {{
    m : Str;
{of_domains}    domain fm g : Feature {{ name = m }};
    depend {union_cfs} -> fm;
  }}
}}"#
    )
}

/// The textual CF metamodel (Figure 1, left).
pub const CF_METAMODEL: &str = "metamodel CF { class Feature { attr name: Str; } }";

/// The textual FM metamodel (Figure 1, right).
pub const FM_METAMODEL: &str =
    "metamodel FM { class Feature { attr name: Str; attr mandatory: Bool; } }";

/// Generates a consistent workload from `spec`.
pub fn feature_workload(spec: FeatureSpec) -> FeatureWorkload {
    let cf = parse_metamodel(CF_METAMODEL).expect("static metamodel");
    let fm = parse_metamodel(FM_METAMODEL).expect("static metamodel");
    let hir = Arc::new(
        parse_and_resolve(
            &transformation_source(spec.k_configs),
            &[cf.clone(), fm.clone()],
        )
        .expect("static transformation"),
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let names: Vec<String> = (0..spec.n_features).map(|i| format!("feat{i}")).collect();
    let mut mandatory: Vec<bool> = (0..spec.n_features)
        .map(|_| rng.gen_bool(spec.mandatory_ratio))
        .collect();
    // Guarantee at least one mandatory feature (for any positive ratio):
    // mandatory features are selected in every configuration, so this
    // keeps configurations non-empty — injections such as
    // [`Injection::RenameInConfig`] rely on having something to rename.
    if spec.n_features > 0 && spec.mandatory_ratio > 0.0 && !mandatory.contains(&true) {
        mandatory[0] = true;
    }
    // Selections: every mandatory feature in every configuration; optional
    // features with probability `select_prob`.
    let mut selections: Vec<Vec<bool>> = (0..spec.k_configs)
        .map(|_| {
            (0..spec.n_features)
                .map(|f| mandatory[f] || rng.gen_bool(spec.select_prob))
                .collect()
        })
        .collect();
    // MF also demands the converse: a feature selected in *every*
    // configuration must be mandatory. Deselect such optionals somewhere.
    for f in 0..spec.n_features {
        if !mandatory[f] && selections.iter().all(|s| s[f]) {
            let victim = rng.gen_range(0..spec.k_configs);
            selections[victim][f] = false;
        }
    }
    let feature_cf = cf.class_named("Feature").expect("static class");
    let feature_fm = fm.class_named("Feature").expect("static class");
    let mut models = Vec::with_capacity(spec.k_configs + 1);
    for (c, sel) in selections.iter().enumerate() {
        let mut m = Model::with_capacity(&format!("cf{}", c + 1), Arc::clone(&cf), spec.n_features);
        for f in 0..spec.n_features {
            if sel[f] {
                let id = m.add(feature_cf).expect("concrete class");
                m.set_attr_named(id, "name", Value::str(&names[f]))
                    .expect("declared attr");
            }
        }
        models.push(m);
    }
    let mut m = Model::with_capacity("fm", Arc::clone(&fm), spec.n_features);
    for f in 0..spec.n_features {
        let id = m.add(feature_fm).expect("concrete class");
        m.set_attr_named(id, "name", Value::str(&names[f]))
            .expect("declared attr");
        m.set_attr_named(id, "mandatory", Value::Bool(mandatory[f]))
            .expect("declared attr");
    }
    models.push(m);
    FeatureWorkload {
        cf,
        fm,
        hir,
        models,
        spec,
    }
}

/// The §1/§3 update scenarios that break consistency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injection {
    /// Add a brand-new mandatory feature to FM (§3: needs `→F_CFᵏ`).
    NewMandatoryInFm,
    /// Rename a feature in one configuration (§1: needs
    /// `→Fⁱ_{FM×CFᵏ⁻¹}`).
    RenameInConfig {
        /// Which configuration (0-based).
        config: usize,
    },
    /// Select a feature in every configuration without making it
    /// mandatory (breaks `CF₁…CF_k → FM`; repaired by `→F_FM`).
    SelectEverywhere,
    /// Select a feature unknown to FM in one configuration (breaks OF).
    SelectUnknown {
        /// Which configuration (0-based).
        config: usize,
    },
}

/// Applies an injection to a workload's models, returning a description
/// of what changed. Panics if the workload is too small to inject into.
pub fn inject(w: &mut FeatureWorkload, injection: Injection) -> String {
    let k = w.spec.k_configs;
    let fm_idx = k;
    match injection {
        Injection::NewMandatoryInFm => {
            let feature = w.fm.class_named("Feature").expect("static class");
            let m = &mut w.models[fm_idx];
            let id = m.add(feature).expect("concrete");
            m.set_attr_named(id, "name", Value::str("$injected"))
                .expect("attr");
            m.set_attr_named(id, "mandatory", Value::Bool(true))
                .expect("attr");
            "added mandatory feature `$injected` to fm".into()
        }
        Injection::RenameInConfig { config } => {
            let m = &mut w.models[config];
            let (id, _) = m.objects().next().expect("nonempty configuration");
            let old = m.attr_named(id, "name").expect("attr");
            m.set_attr_named(id, "name", Value::str("$renamed"))
                .expect("attr");
            format!("renamed {old} to `$renamed` in cf{}", config + 1)
        }
        Injection::SelectEverywhere => {
            // Pick an FM feature that is optional; select it in every
            // configuration that misses it.
            let target = {
                let fm_model = &w.models[fm_idx];
                fm_model
                    .objects()
                    .find(|(id, _)| fm_model.attr_named(*id, "mandatory") == Ok(Value::Bool(false)))
                    .map(|(id, _)| fm_model.attr_named(id, "name").expect("attr"))
            };
            // If every feature happens to be mandatory, introduce a fresh
            // optional one first.
            let target = match target {
                Some(t) => t,
                None => {
                    let feature_fm = w.fm.class_named("Feature").expect("static class");
                    let m = &mut w.models[fm_idx];
                    let id = m.add(feature_fm).expect("concrete");
                    let t = Value::str("$optional");
                    m.set_attr_named(id, "name", t).expect("attr");
                    t
                }
            };
            let feature_cf = w.cf.class_named("Feature").expect("static class");
            for c in 0..k {
                let m = &mut w.models[c];
                let present = m
                    .objects()
                    .any(|(id, _)| m.attr_named(id, "name") == Ok(target));
                if !present {
                    let id = m.add(feature_cf).expect("concrete");
                    m.set_attr_named(id, "name", target).expect("attr");
                }
            }
            format!("selected optional {target} in every configuration")
        }
        Injection::SelectUnknown { config } => {
            let feature_cf = w.cf.class_named("Feature").expect("static class");
            let m = &mut w.models[config];
            let id = m.add(feature_cf).expect("concrete");
            m.set_attr_named(id, "name", Value::str("$unknown"))
                .expect("attr");
            format!("selected unknown feature `$unknown` in cf{}", config + 1)
        }
    }
}

/// Generates a seeded random edit script of `n_edits` atomic
/// [`EditOp`]s, valid when applied to `model` in order.
///
/// Works against any metamodel: object creation/deletion, attribute
/// overwrites (values drawn from the model's own strings plus a few
/// fresh ones), and — when the metamodel declares references — link
/// insertion/removal. The script is kept coherent by replaying it on a
/// scratch copy as it is generated, so deletions never dangle and ids
/// match the evolving model. Some generated ops are deliberate no-ops
/// (re-setting an attribute to its current value, re-adding a present
/// link): incremental checkers must tolerate those, so the differential
/// tests want them in the mix.
pub fn random_edits(model: &Model, n_edits: usize, seed: u64) -> Vec<EditOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = model.clone();
    let meta = Arc::clone(scratch.metamodel());
    let concrete: Vec<ClassId> = (0..meta.class_count() as u32)
        .map(ClassId)
        .filter(|&c| !meta.class(c).is_abstract)
        .collect();
    // Value pools per attribute type.
    let mut strings: Vec<Value> = Vec::new();
    for (_, obj) in model.objects() {
        for (slot, &attr) in meta.class(obj.class).all_attrs.iter().enumerate() {
            if meta.attr(attr).ty == AttrType::Str && !strings.contains(&obj.attrs[slot]) {
                strings.push(obj.attrs[slot]);
            }
        }
    }
    for i in 0..3 {
        let v = Value::str(&format!("$edit{i}"));
        if !strings.contains(&v) {
            strings.push(v);
        }
    }
    if concrete.is_empty() {
        return Vec::new(); // all-abstract metamodel: no edit is expressible
    }
    let has_refs = concrete.iter().any(|&c| !meta.class(c).all_refs.is_empty());
    let mut ops = Vec::with_capacity(n_edits);
    let mut guard = 0usize;
    while ops.len() < n_edits && guard < n_edits * 50 {
        guard += 1;
        let live: Vec<ObjId> = scratch.objects().map(|(id, _)| id).collect();
        let roll = rng.gen_range(0..100usize);
        if roll < 15 || live.is_empty() {
            // Create an object.
            let class = concrete[rng.gen_range(0..concrete.len())];
            let id = scratch.add(class).expect("concrete class");
            ops.push(EditOp::AddObj { id, class });
        } else if roll < 27 {
            // Delete an object.
            let id = live[rng.gen_range(0..live.len())];
            let class = scratch.class_of(id).expect("live");
            scratch.delete(id).expect("live");
            ops.push(EditOp::DelObj { id, class });
        } else if roll < 75 || !has_refs {
            // Overwrite an attribute.
            let id = live[rng.gen_range(0..live.len())];
            let class = scratch.class_of(id).expect("live");
            let attrs = &meta.class(class).all_attrs;
            if attrs.is_empty() {
                continue;
            }
            let attr = attrs[rng.gen_range(0..attrs.len())];
            let value = match meta.attr(attr).ty {
                AttrType::Str => strings[rng.gen_range(0..strings.len())],
                AttrType::Int => Value::Int(rng.gen_range(0..6) as i64),
                AttrType::Bool => Value::Bool(rng.gen_bool(0.5)),
            };
            let old = scratch.attr(id, attr).expect("declared attr");
            scratch.set_attr(id, attr, value).expect("typed value");
            ops.push(EditOp::SetAttr {
                id,
                attr,
                value,
                old,
            });
        } else {
            // Rewire a link.
            let id = live[rng.gen_range(0..live.len())];
            let class = scratch.class_of(id).expect("live");
            let refs = &meta.class(class).all_refs;
            if refs.is_empty() {
                continue;
            }
            let r = refs[rng.gen_range(0..refs.len())];
            let dsts: Vec<ObjId> = scratch.objects_of(meta.reference(r).target).collect();
            if dsts.is_empty() {
                continue;
            }
            let dst = dsts[rng.gen_range(0..dsts.len())];
            if rng.gen_bool(0.5) && scratch.has_link(id, r, dst) {
                scratch.remove_link(id, r, dst).expect("typed link");
                ops.push(EditOp::DelLink { src: id, r, dst });
            } else {
                scratch.add_link(id, r, dst).expect("typed link");
                ops.push(EditOp::AddLink { src: id, r, dst });
            }
        }
    }
    ops
}

/// One step of a synchronization-session script (the workload a
/// `mmt_core` `SyncSession` consumes: drift edits interleaved with
/// repair checkpoints).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionStep {
    /// Apply one edit to the model at `model`.
    Edit {
        /// The model the edit lands on.
        model: DomIdx,
        /// The edit itself.
        op: EditOp,
    },
    /// A repair checkpoint: restore consistency under `targets`.
    Repair {
        /// The repair shape's target set.
        targets: DomSet,
    },
}

/// Seeded generator of session scripts with interleaved repair
/// checkpoints, for differential testing of the stateful sync layer
/// against the stateless engines.
///
/// Steps are generated *against the current tuple*: because an
/// auto-applied repair rewrites models in ways no offline generator can
/// predict, the caller feeds the live models back into
/// [`SessionScriptGen::next_step`] after executing each step. The same
/// seed over the same executed tuple evolution yields the same script,
/// so a warm session and a stateless replay driven by the same
/// generator see identical steps.
pub struct SessionScriptGen {
    rng: StdRng,
    targets: DomSet,
    repair_every: usize,
    step: usize,
}

impl SessionScriptGen {
    /// A generator whose every `repair_every`-th step is a repair
    /// checkpoint under `targets` (0 = no checkpoints, edits only).
    pub fn new(targets: DomSet, repair_every: usize, seed: u64) -> SessionScriptGen {
        SessionScriptGen {
            rng: StdRng::seed_from_u64(seed),
            targets,
            repair_every,
            step: 0,
        }
    }

    /// The next step, valid against `models` (the live tuple after every
    /// previous step was executed). Edits are drawn via [`random_edits`]
    /// from a randomly chosen model; models with no expressible edit are
    /// skipped.
    pub fn next_step(&mut self, models: &[Model]) -> SessionStep {
        self.step += 1;
        if self.repair_every > 0 && self.step.is_multiple_of(self.repair_every) {
            return SessionStep::Repair {
                targets: self.targets,
            };
        }
        for _ in 0..models.len() * 4 {
            let i = self.rng.gen_range(0..models.len());
            let seed = self.rng.next_u64();
            if let Some(op) = random_edits(&models[i], 1, seed).into_iter().next() {
                return SessionStep::Edit {
                    model: DomIdx(i as u8),
                    op,
                };
            }
        }
        // Nothing editable anywhere (degenerate metamodels): checkpoint.
        SessionStep::Repair {
            targets: self.targets,
        }
    }
}

/// Renders one [`SessionStep`] in the `mmt sync` script syntax (see the
/// CLI), resolving parameter, class, attribute, and reference names
/// through `hir`.
pub fn render_step(hir: &Hir, step: &SessionStep) -> String {
    match step {
        SessionStep::Repair { targets } => {
            let names: Vec<String> = targets
                .iter()
                .map(|t| hir.models[t.index()].name.resolve())
                .collect();
            format!("repair {}", names.join(","))
        }
        SessionStep::Edit { model, op } => {
            let param = hir.models[model.index()].name.resolve();
            let meta = &hir.models[model.index()].meta;
            match *op {
                EditOp::AddObj { id, class } => format!(
                    "edit {param} add {} @{}",
                    meta.class(class).name.resolve(),
                    id.index()
                ),
                EditOp::DelObj { id, .. } => format!("edit {param} del @{}", id.index()),
                EditOp::SetAttr {
                    id, attr, value, ..
                } => format!(
                    "edit {param} set @{}.{} = {}",
                    id.index(),
                    meta.attr(attr).name.resolve(),
                    render_value(value)
                ),
                EditOp::AddLink { src, r, dst } => format!(
                    "edit {param} link @{}.{} @{}",
                    src.index(),
                    meta.reference(r).name.resolve(),
                    dst.index()
                ),
                EditOp::DelLink { src, r, dst } => format!(
                    "edit {param} unlink @{}.{} @{}",
                    src.index(),
                    meta.reference(r).name.resolve(),
                    dst.index()
                ),
            }
        }
    }
}

fn render_value(v: Value) -> String {
    match v {
        Value::Str(s) => format!("{:?}", s.resolve()),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
    }
}

/// A random dependency set over `arity` domains (for entailment benches).
pub fn random_depset(arity: usize, n_deps: usize, seed: u64) -> DepSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = DepSet::new(arity);
    while set.len() < n_deps {
        let target = DomIdx(rng.gen_range(0..arity) as u8);
        let mut sources = DomSet::EMPTY;
        for i in 0..arity {
            if i != target.index() && rng.gen_bool(0.4) {
                sources = sources.with(DomIdx(i as u8));
            }
        }
        if sources.is_empty() {
            continue;
        }
        let dep = Dep::new(sources, target).expect("target excluded");
        set.add(dep).expect("in range");
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_check::Checker;

    #[test]
    fn generated_workload_is_consistent() {
        for seed in [1, 7, 99] {
            for k in [1, 2, 3] {
                let w = feature_workload(FeatureSpec {
                    k_configs: k,
                    seed,
                    ..FeatureSpec::default()
                });
                let report = Checker::new(&w.hir, &w.models).unwrap().check().unwrap();
                assert!(report.consistent(), "seed={seed} k={k}\n{report}");
            }
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = feature_workload(FeatureSpec::default());
        let b = feature_workload(FeatureSpec::default());
        for (x, y) in a.models.iter().zip(&b.models) {
            // Same structure (ids align by construction).
            assert_eq!(x.len(), y.len());
        }
    }

    #[test]
    fn injections_break_consistency() {
        for injection in [
            Injection::NewMandatoryInFm,
            Injection::RenameInConfig { config: 0 },
            Injection::SelectEverywhere,
            Injection::SelectUnknown { config: 1 },
        ] {
            let mut w = feature_workload(FeatureSpec {
                n_features: 6,
                k_configs: 2,
                mandatory_ratio: 0.5,
                select_prob: 0.5,
                seed: 3,
            });
            let what = inject(&mut w, injection);
            let report = Checker::new(&w.hir, &w.models).unwrap().check().unwrap();
            assert!(!report.consistent(), "{injection:?}: {what}");
        }
    }

    #[test]
    fn transformation_source_scales_with_k() {
        for k in [1, 2, 5] {
            let src = transformation_source(k);
            assert_eq!(src.matches("domain cf").count(), 2 * k);
        }
    }

    #[test]
    fn random_edit_scripts_replay_cleanly() {
        use mmt_dist::Delta;
        for seed in [1u64, 9, 23] {
            let w = feature_workload(FeatureSpec {
                n_features: 5,
                k_configs: 2,
                mandatory_ratio: 0.4,
                select_prob: 0.4,
                seed,
            });
            for target in 0..w.models.len() {
                let ops = random_edits(&w.models[target], 10, seed * 7 + target as u64);
                assert_eq!(ops.len(), 10);
                // Deterministic.
                assert_eq!(
                    ops,
                    random_edits(&w.models[target], 10, seed * 7 + target as u64)
                );
                // Valid when replayed in order.
                let mut d = Delta::new();
                for op in ops {
                    d.push(op);
                }
                let mut replay = w.models[target].clone();
                d.apply(&mut replay).unwrap();
            }
        }
    }

    #[test]
    fn random_edit_scripts_cover_links_when_the_metamodel_has_them() {
        let mm = mmt_model::text::parse_metamodel(
            "metamodel X { class Node { attr name: Str; ref next: Node [0..*]; } }",
        )
        .unwrap();
        let m = mmt_model::text::parse_model(
            r#"model m : X {
                a = Node { name = "a", next = [b] }
                b = Node { name = "b" }
            }"#,
            &mm,
        )
        .unwrap();
        let ops = random_edits(&m, 40, 3);
        assert!(ops
            .iter()
            .any(|op| matches!(op, EditOp::AddLink { .. } | EditOp::DelLink { .. })));
        let mut d = mmt_dist::Delta::new();
        for op in ops {
            d.push(op);
        }
        let mut replay = m.clone();
        d.apply(&mut replay).unwrap();
    }

    #[test]
    fn session_scripts_interleave_checkpoints_deterministically() {
        let w = feature_workload(FeatureSpec::default());
        let targets = DomSet::from_iter([DomIdx(0), DomIdx(1)]);
        let run = |seed: u64| {
            let mut gen = SessionScriptGen::new(targets, 4, seed);
            let mut models = w.models.clone();
            let mut steps = Vec::new();
            for _ in 0..12 {
                let step = gen.next_step(&models);
                if let SessionStep::Edit { model, op } = &step {
                    // Execute edits so later steps stay valid.
                    let mut d = mmt_dist::Delta::new();
                    d.push(*op);
                    d.apply(&mut models[model.index()]).unwrap();
                }
                steps.push(step);
            }
            steps
        };
        let a = run(5);
        assert_eq!(a, run(5), "same seed, same script");
        // Every 4th step is a checkpoint, the rest are edits.
        for (i, step) in a.iter().enumerate() {
            if (i + 1) % 4 == 0 {
                assert_eq!(*step, SessionStep::Repair { targets }, "step {i}");
            } else {
                assert!(matches!(step, SessionStep::Edit { .. }), "step {i}");
            }
        }
    }

    #[test]
    fn session_steps_render_to_sync_script_syntax() {
        let w = feature_workload(FeatureSpec::default());
        let fm_feature = w.fm.class_named("Feature").unwrap();
        let name =
            w.fm.attr_of(fm_feature, mmt_model::Sym::new("name"))
                .unwrap();
        let add = SessionStep::Edit {
            model: DomIdx(2),
            op: EditOp::AddObj {
                id: ObjId(9),
                class: fm_feature,
            },
        };
        assert_eq!(render_step(&w.hir, &add), "edit fm add Feature @9");
        let set = SessionStep::Edit {
            model: DomIdx(2),
            op: EditOp::SetAttr {
                id: ObjId(9),
                attr: name,
                value: Value::str("gps"),
                old: Value::str(""),
            },
        };
        assert_eq!(render_step(&w.hir, &set), "edit fm set @9.name = \"gps\"");
        let repair = SessionStep::Repair {
            targets: DomSet::from_iter([DomIdx(0), DomIdx(1)]),
        };
        assert_eq!(render_step(&w.hir, &repair), "repair cf1,cf2");
    }

    #[test]
    fn random_depset_has_requested_size() {
        let s = random_depset(6, 9, 11);
        assert_eq!(s.len(), 9);
        assert_eq!(s.arity(), 6);
        // Deterministic.
        assert_eq!(random_depset(6, 9, 11), s);
    }
}
