//! The scenario corpus: every workload family the differential suites
//! and benches sweep over, behind one [`Scenario`] abstraction.
//!
//! The paper's running example (feature models vs. `k` configurations)
//! is one point in a space of multidirectional synchronization
//! problems; the correctness claims (incremental ≡ from-scratch,
//! search ≡ SAT, warm ≡ cold, persisted ≡ uninterrupted) are only
//! trustworthy if they hold across that space. This module ports the
//! exemplar catalog:
//!
//! * [`Fm2Cfs`] — the paper's own FM↔CF² family, delegating to
//!   [`feature_workload`];
//! * [`CompanyHr`] — the Company HR sync (World↔Company): every
//!   `Person` maps to an `Employee` with the same name, and employees
//!   additionally carry a salary capped at [`SALARY_CAP`];
//! * [`Class2Rdbms`] — the classic class↔RDBMS round-trip
//!   (classes/attributes ↔ tables/columns), whose repairs need
//!   multi-class witnesses (a fresh `Table` *and* a fresh `Column`
//!   plus the containment link in one step).
//!
//! A scenario bundles a spec source, metamodel sources, a seeded
//! consistent model tuple, and a canonical repair-target set; random
//! drift comes from the metamodel-generic
//! [`random_edits`](crate::random_edits) /
//! [`SessionScriptGen`](crate::SessionScriptGen), which work unchanged
//! on every scenario.
//!
//! ```
//! use mmt_gen::scenario::all_scenarios;
//!
//! for sc in all_scenarios() {
//!     let w = sc.workload(7);
//!     assert_eq!(w.models.len(), w.hir.models.len());
//!     // Every scenario's seed tuple is consistent by construction.
//!     let report = mmt_check::Checker::new(&w.hir, &w.models)
//!         .unwrap()
//!         .check()
//!         .unwrap();
//!     assert!(report.consistent(), "{}", sc.name());
//! }
//! ```

use crate::{feature_workload, FeatureSpec, CF_METAMODEL, FM_METAMODEL};
use mmt_deps::{DomIdx, DomSet};
use mmt_model::text::parse_metamodel;
use mmt_model::{Metamodel, Model, Sym, Value};
use mmt_qvtr::{parse_and_resolve, Hir};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A built scenario instance: resolved transformation, metamodels, and
/// a seeded consistent model tuple, ready for a checker, an engine, or
/// a session.
pub struct ScenarioWorkload {
    /// The resolved transformation, behind the shared handle the
    /// un-borrowed stack consumes.
    pub hir: Arc<Hir>,
    /// Parsed metamodels, in spec-parameter order (deduplicated: a
    /// spec with two parameters of the same metamodel lists it once).
    pub metamodels: Vec<Arc<Metamodel>>,
    /// The seeded consistent model tuple, in model-space order.
    pub models: Vec<Model>,
}

/// One workload family: a QVT-R spec, its metamodels, and a seeded
/// generator of consistent model tuples.
///
/// Random drift and session scripts are *not* part of the trait: the
/// generic [`random_edits`](crate::random_edits) and
/// [`SessionScriptGen`](crate::SessionScriptGen) read any metamodel,
/// so every scenario gets them for free. Adding a fourth scenario
/// means implementing the four required methods and listing it in
/// [`all_scenarios`]; every scenario-swept differential suite and
/// bench picks it up from there.
pub trait Scenario {
    /// Short stable name (`fm2cfs`, `company`, `class2rdbms`), used in
    /// test names and CI job logs.
    fn name(&self) -> &'static str;

    /// The QVT-R source of the scenario's transformation.
    fn spec_source(&self) -> String;

    /// Textual metamodels, in the order [`parse_and_resolve`] expects.
    fn metamodel_sources(&self) -> Vec<&'static str>;

    /// A consistent-by-construction model tuple for `seed`, built over
    /// the already-parsed `metamodels` (same order as
    /// [`Scenario::metamodel_sources`]).
    fn seed_models(&self, metamodels: &[Arc<Metamodel>], seed: u64) -> Vec<Model>;

    /// The canonical repair-target set session scripts use (which
    /// models a `repair` checkpoint may rewrite).
    fn repair_targets(&self) -> DomSet;

    /// Parses and resolves everything into a [`ScenarioWorkload`].
    fn workload(&self, seed: u64) -> ScenarioWorkload {
        let metamodels: Vec<Arc<Metamodel>> = self
            .metamodel_sources()
            .iter()
            .map(|src| parse_metamodel(src).expect("static scenario metamodel"))
            .collect();
        let hir = Arc::new(
            parse_and_resolve(&self.spec_source(), &metamodels)
                .expect("static scenario transformation"),
        );
        let models = self.seed_models(&metamodels, seed);
        ScenarioWorkload {
            hir,
            metamodels,
            models,
        }
    }
}

/// Every scenario in the corpus, in a stable order.
pub fn all_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(Fm2Cfs::default()),
        Box::new(CompanyHr),
        Box::new(Class2Rdbms),
    ]
}

/// Looks a scenario up by its [`Scenario::name`].
pub fn scenario_named(name: &str) -> Option<Box<dyn Scenario>> {
    all_scenarios().into_iter().find(|s| s.name() == name)
}

// ---------------------------------------------------------------------
// FM ↔ CF²: the paper's running example.
// ---------------------------------------------------------------------

/// The paper's feature-model family behind the [`Scenario`] interface.
///
/// Delegates to [`feature_workload`] — the
/// hot path the benches time is untouched; this wrapper only threads
/// the spec's `seed` through.
pub struct Fm2Cfs {
    /// The workload parameters (the `seed` field is overridden per
    /// [`Scenario::seed_models`] call).
    pub spec: FeatureSpec,
}

impl Default for Fm2Cfs {
    fn default() -> Self {
        Fm2Cfs {
            spec: FeatureSpec {
                n_features: 5,
                k_configs: 2,
                mandatory_ratio: 0.4,
                select_prob: 0.4,
                seed: 0,
            },
        }
    }
}

impl Scenario for Fm2Cfs {
    fn name(&self) -> &'static str {
        "fm2cfs"
    }

    fn spec_source(&self) -> String {
        crate::transformation_source(self.spec.k_configs)
    }

    fn metamodel_sources(&self) -> Vec<&'static str> {
        vec![CF_METAMODEL, FM_METAMODEL]
    }

    fn seed_models(&self, _metamodels: &[Arc<Metamodel>], seed: u64) -> Vec<Model> {
        feature_workload(FeatureSpec {
            seed,
            ..self.spec.clone()
        })
        .models
    }

    fn repair_targets(&self) -> DomSet {
        // The configurations, mirroring the suites' historical choice:
        // the feature model is the read-mostly authority.
        DomSet::from_iter([DomIdx(0), DomIdx(1)])
    }
}

// ---------------------------------------------------------------------
// Company HR: World ↔ Company.
// ---------------------------------------------------------------------

/// The textual World metamodel (the HR source of truth).
pub const WORLD_METAMODEL: &str = "metamodel World { class Person { attr name: Str; } }";

/// The textual Company metamodel (employees carry a salary).
pub const COMPANY_METAMODEL: &str =
    "metamodel Company { class Employee { attr name: Str; attr salary: Int; } }";

/// Salaries above this bound violate the `SalaryCap` relation.
pub const SALARY_CAP: i64 = 9;

/// The QVT-R source of the Company HR sync: every `Person` maps to an
/// `Employee` with the same name (both directions), and every person's
/// employee record must carry a salary within [`SALARY_CAP`] (enforced
/// towards the company — the world knows nothing about pay, so an
/// over-cap salary has no world-side fix).
pub fn company_transformation_source() -> String {
    format!(
        r#"transformation W2C(world : World, company : Company) {{
  top relation PersonToEmployee {{
    n : Str;
    domain world p : Person {{ name = n }};
    domain company e : Employee {{ name = n }};
    depend world -> company;
    depend company -> world;
  }}
  top relation SalaryCap {{
    m : Str; s : Int;
    domain world q : Person {{ name = m }};
    domain company w : Employee {{ name = m, salary = s }};
    where {{ s <= {SALARY_CAP} }}
    depend world -> company;
  }}
}}"#
    )
}

/// The Company HR sync scenario (SNIPPETS exemplar 2).
pub struct CompanyHr;

impl Scenario for CompanyHr {
    fn name(&self) -> &'static str {
        "company"
    }

    fn spec_source(&self) -> String {
        company_transformation_source()
    }

    fn metamodel_sources(&self) -> Vec<&'static str> {
        vec![WORLD_METAMODEL, COMPANY_METAMODEL]
    }

    fn seed_models(&self, metamodels: &[Arc<Metamodel>], seed: u64) -> Vec<Model> {
        let mut rng = StdRng::seed_from_u64(seed);
        let world_mm = &metamodels[0];
        let company_mm = &metamodels[1];
        let person = world_mm.class_named("Person").expect("static class");
        let employee = company_mm.class_named("Employee").expect("static class");
        let mut world = Model::new("world", Arc::clone(world_mm));
        let mut company = Model::new("company", Arc::clone(company_mm));
        let n = 3 + (seed % 3) as usize;
        for i in 0..n {
            let name = Value::str(&format!("emp{i}"));
            let p = world.add(person).expect("concrete class");
            world
                .set_attr_named(p, "name", name)
                .expect("declared attr");
            let e = company.add(employee).expect("concrete class");
            company
                .set_attr_named(e, "name", name)
                .expect("declared attr");
            // Always within the cap, so the seed tuple is consistent —
            // and the tuple always carries in-range salaries for the
            // repair value pool to draw on.
            let salary = rng.gen_range(0..(SALARY_CAP as usize + 1)) as i64;
            company
                .set_attr_named(e, "salary", Value::Int(salary))
                .expect("declared attr");
        }
        vec![world, company]
    }

    fn repair_targets(&self) -> DomSet {
        DomSet::full(2)
    }
}

// ---------------------------------------------------------------------
// Class ↔ RDBMS: the QVT-R literature's benchmark round-trip.
// ---------------------------------------------------------------------

/// The textual UML-side metamodel (classes contain attributes).
pub const UML_METAMODEL: &str = "metamodel UML { class Class { attr name: Str; ref attrs: Attribute [0..*] containment; } class Attribute { attr name: Str; } }";

/// The textual RDB-side metamodel (tables contain columns).
pub const RDB_METAMODEL: &str = "metamodel RDB { class Table { attr name: Str; ref cols: Column [0..*] containment; } class Column { attr name: Str; } }";

/// The QVT-R source of the class↔RDBMS round-trip: classes map to
/// same-named tables, and every attribute of a class maps to a
/// same-named column of the matching table. The nested reference
/// templates are what the FM family never exercises: repairing a
/// missing `AttrToCol` witness must create a `Table` *and* a `Column`
/// *and* the containment link between them.
pub fn class2rdbms_transformation_source() -> String {
    r#"transformation C2T(uml : UML, rdb : RDB) {
  top relation ClassToTable {
    cn : Str;
    domain uml c : Class { name = cn };
    domain rdb t : Table { name = cn };
    depend uml -> rdb;
    depend rdb -> uml;
  }
  top relation AttrToCol {
    kn, an : Str;
    domain uml k : Class { name = kn, attrs = a : Attribute { name = an } };
    domain rdb u : Table { name = kn, cols = col : Column { name = an } };
    depend uml -> rdb;
    depend rdb -> uml;
  }
}"#
    .to_string()
}

/// The class↔RDBMS scenario.
pub struct Class2Rdbms;

impl Scenario for Class2Rdbms {
    fn name(&self) -> &'static str {
        "class2rdbms"
    }

    fn spec_source(&self) -> String {
        class2rdbms_transformation_source()
    }

    fn metamodel_sources(&self) -> Vec<&'static str> {
        vec![UML_METAMODEL, RDB_METAMODEL]
    }

    fn seed_models(&self, metamodels: &[Arc<Metamodel>], seed: u64) -> Vec<Model> {
        let mut rng = StdRng::seed_from_u64(seed);
        let uml_mm = &metamodels[0];
        let rdb_mm = &metamodels[1];
        let class = uml_mm.class_named("Class").expect("static class");
        let attribute = uml_mm.class_named("Attribute").expect("static class");
        let table = rdb_mm.class_named("Table").expect("static class");
        let column = rdb_mm.class_named("Column").expect("static class");
        let attrs_ref = uml_mm
            .ref_of(class, Sym::new("attrs"))
            .expect("declared ref");
        let cols_ref = rdb_mm
            .ref_of(table, Sym::new("cols"))
            .expect("declared ref");
        let mut uml = Model::new("uml", Arc::clone(uml_mm));
        let mut rdb = Model::new("rdb", Arc::clone(rdb_mm));
        // Kept deliberately small: the SAT engine grounds fresh-object
        // slack per class, so tuple size is the grounding's exponent.
        let n_classes = 2;
        for c in 0..n_classes {
            let cname = Value::str(&format!("C{c}"));
            let cls = uml.add(class).expect("concrete class");
            uml.set_attr_named(cls, "name", cname)
                .expect("declared attr");
            let tbl = rdb.add(table).expect("concrete class");
            rdb.set_attr_named(tbl, "name", cname)
                .expect("declared attr");
            let n_attrs = 1 + rng.gen_range(0..2usize);
            for a in 0..n_attrs {
                let aname = Value::str(&format!("f{c}_{a}"));
                let at = uml.add(attribute).expect("concrete class");
                uml.set_attr_named(at, "name", aname)
                    .expect("declared attr");
                uml.add_link(cls, attrs_ref, at).expect("typed link");
                let col = rdb.add(column).expect("concrete class");
                rdb.set_attr_named(col, "name", aname)
                    .expect("declared attr");
                rdb.add_link(tbl, cols_ref, col).expect("typed link");
            }
        }
        vec![uml, rdb]
    }

    fn repair_targets(&self) -> DomSet {
        DomSet::full(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_check::Checker;

    #[test]
    fn every_scenario_seed_tuple_is_consistent() {
        for sc in all_scenarios() {
            for seed in [0u64, 1, 7, 23] {
                let w = sc.workload(seed);
                assert_eq!(w.models.len(), w.hir.models.len(), "{}", sc.name());
                let report = Checker::new(&w.hir, &w.models).unwrap().check().unwrap();
                assert!(report.consistent(), "{} seed={seed}\n{report}", sc.name());
            }
        }
    }

    #[test]
    fn scenarios_are_deterministic_and_named() {
        for sc in all_scenarios() {
            let a = sc.workload(5);
            let b = sc.workload(5);
            for (x, y) in a.models.iter().zip(&b.models) {
                // Workloads parse their own metamodel instances, so
                // compare the printed object graphs, not Arc identity.
                assert_eq!(
                    mmt_model::text::print_model(x),
                    mmt_model::text::print_model(y),
                    "{}",
                    sc.name()
                );
            }
            let by_name = scenario_named(sc.name()).expect("round-trips by name");
            assert_eq!(by_name.name(), sc.name());
        }
        assert!(scenario_named("nonesuch").is_none());
    }

    #[test]
    fn repair_targets_are_within_arity() {
        for sc in all_scenarios() {
            let w = sc.workload(0);
            let arity = w.hir.models.len();
            assert!(
                sc.repair_targets().subset_of(mmt_deps::DomSet::full(arity)),
                "{}",
                sc.name()
            );
        }
    }

    #[test]
    fn generic_drift_applies_to_every_scenario() {
        use mmt_dist::Delta;
        for sc in all_scenarios() {
            let w = sc.workload(3);
            for (i, m) in w.models.iter().enumerate() {
                let ops = crate::random_edits(m, 8, 11 + i as u64);
                assert_eq!(ops.len(), 8, "{} model {i}", sc.name());
                let mut d = Delta::new();
                for op in ops {
                    d.push(op);
                }
                let mut replay = m.clone();
                d.apply(&mut replay).unwrap();
            }
        }
    }
}
