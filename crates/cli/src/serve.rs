//! `mmt serve` — concurrent synchronization sessions over a
//! line-oriented JSON protocol on stdin/stdout.
//!
//! The serve loop is the thinnest possible shell around
//! [`mmt_core::SyncHub`]: the transformation is loaded once and
//! registered, every `open` request adds a named session over the seed
//! tuple, and each subsequent request locks exactly that session. One
//! request per line in, one response per line out:
//!
//! ```text
//! → {"id":1,"cmd":"open","session":"a"}
//! ← {"id":1,"ok":true,"result":{"consistent":true,...}}
//! → {"id":2,"cmd":"edit","session":"a","edit":"fm set @0.name = \"x\""}
//! ← {"id":2,"ok":true,"result":{"consistent":false,...}}
//! ```
//!
//! The verbs (`open`, `edit`, `status`, `repair`, `rollback`,
//! `journal`, `close`) mirror the `mmt sync` script commands, the
//! `edit` payload **is** a sync edit line (minus the `edit` keyword),
//! and `status`/`journal` results are byte-identical to `mmt sync
//! --json` output — the serve differential e2e test pins that down.
//! Errors answer `{"ok":false,"error":...}` and the loop keeps
//! serving; EOF exits 0.

use crate::{
    apply_session_edit, journal_json, json_str, load, repair_options, shape_of_names, status_json,
    write_models_quiet, Parsed,
};
use mmt_core::{EngineKind, SessionHandle, SessionOptions, SyncHub, Transformation};
use mmt_model::Model;
use mmt_store::{write_hub_manifest, HubStore, PersistentSession};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A parsed JSON value — the minimal self-contained reader the request
/// side of the protocol needs (the build environment vendors no serde).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders back to JSON text (used to echo request ids verbatim).
    fn render(&self) -> String {
        match self {
            Json::Null => "null".into(),
            Json::Bool(b) => b.to_string(),
            Json::Int(i) => i.to_string(),
            Json::Str(s) => json_str(s),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", json_str(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Hard ceiling on container nesting. Real requests nest two levels;
/// without a cap a hostile line of `[[[[…` recurses once per bracket
/// and takes the whole serve loop down with a stack overflow.
const MAX_DEPTH: usize = 64;

/// Recursive-descent JSON reader over one request line.
struct JsonReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> JsonReader<'a> {
    fn new(src: &'a str) -> JsonReader<'a> {
        JsonReader {
            bytes: src.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == c => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "expected `{}` at byte {}, found {:?}",
                c as char,
                self.pos,
                got.map(|b| b as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(c @ (b'{' | b'[')) => {
                if self.depth >= MAX_DEPTH {
                    return Err(format!(
                        "nesting deeper than {MAX_DEPTH} levels at byte {}",
                        self.pos
                    ));
                }
                self.depth += 1;
                let v = if c == b'{' {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err("non-integer numbers are not part of the protocol".into());
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<i64>().ok())
            .map(Json::Int)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are outside the protocol's
                            // needs; reject rather than mis-decode.
                            out.push(
                                char::from_u32(hex).ok_or("surrogate \\u escapes unsupported")?,
                            );
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let ch_len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + ch_len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or("bad utf-8 in string")?;
                    out.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn parse_request(src: &str) -> Result<Vec<(String, Json)>, String> {
        let mut r = JsonReader::new(src);
        let v = r.value()?;
        r.skip_ws();
        if r.pos != r.bytes.len() {
            return Err(format!("trailing garbage at byte {}", r.pos));
        }
        match v {
            Json::Obj(fields) => Ok(fields),
            _ => Err("request must be a JSON object".into()),
        }
    }
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    match field(obj, key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field \"{key}\" must be a string")),
        None => Err(format!("missing field \"{key}\"")),
    }
}

/// The durable side of a serving hub: the store directory plus the open
/// per-session stores the loop commits to after every mutating request.
struct ServeStore {
    dir: PathBuf,
    sessions: HashMap<String, PersistentSession>,
}

impl ServeStore {
    /// Rewrites the hub manifest from the hub's current registry — the
    /// visibility point for `open`/`close` under `--store`.
    fn sync_manifest(&self, hub: &SyncHub) -> Result<(), String> {
        let entries: Vec<(String, String)> = hub
            .sessions()
            .iter()
            .map(|h| (h.name().to_string(), h.transformation_id().to_string()))
            .collect();
        write_hub_manifest(&self.dir, &entries).map_err(|e| format!("store: {e}"))
    }

    /// Commits the named session's journal to its WAL (the commit point
    /// of one mutating request).
    fn commit(&mut self, name: &str, handle: &SessionHandle) -> Result<(), String> {
        if let Some(ps) = self.sessions.get_mut(name) {
            handle
                .with(|s| ps.commit(s))
                .map_err(|e| format!("store: {e}"))?;
        }
        Ok(())
    }
}

/// The serve loop: reads one JSON request per stdin line, writes one
/// JSON response per stdout line. See [`crate::USAGE_SERVE`] and the
/// module docs for the protocol.
pub(crate) fn run_serve(p: &Parsed) -> Result<ExitCode, String> {
    let (t, models) = load(p, "serve")?;
    if models.len() != t.arity() {
        return Err(format!(
            "transformation expects {} models, got {}",
            t.arity(),
            models.len()
        ));
    }
    let opts = SessionOptions {
        engine: p.engine.unwrap_or(EngineKind::Search),
        repair: repair_options(&t, p)?,
    };
    let hub = SyncHub::new();
    // Registration lints the spec: error findings refuse to serve at
    // all; warnings go to stderr (stdout is the protocol stream) and
    // stay queryable through the `lint` verb.
    let t = hub.register("default", t).map_err(|e| e.to_string())?;
    if let Ok(report) = hub.lint_report("default") {
        if report.warnings() > 0 {
            eprintln!(
                "lint: {} warning(s) in the registered spec (send {{\"cmd\":\"lint\"}} or run `mmt lint` for details)",
                report.warnings()
            );
        }
    }
    // With --store, recover every session the previous process left
    // behind before serving the first request.
    let mut store = match &p.store {
        None => None,
        Some(dir) => {
            let dir = PathBuf::from(dir);
            std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let mut sessions = HashMap::new();
            if dir.join("hub").is_file() {
                for (handle, ps) in hub
                    .restore_from(&dir, &opts)
                    .map_err(|e| format!("store: {e}"))?
                {
                    sessions.insert(handle.name().to_string(), ps);
                }
            }
            Some(ServeStore { dir, sessions })
        }
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    // Read raw byte lines: a line that is not UTF-8 is a bad request to
    // answer, not a reason to kill the loop.
    for raw in stdin.lock().split(b'\n') {
        let mut raw = raw.map_err(|e| format!("stdin: {e}"))?;
        if raw.last() == Some(&b'\r') {
            raw.pop();
        }
        let response = match String::from_utf8(raw) {
            Ok(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                respond(
                    &hub,
                    &t,
                    &models,
                    &opts,
                    p.out.as_deref(),
                    &mut store,
                    &line,
                )
            }
            Err(_) => "{\"id\":null,\"ok\":false,\"error\":\"bad request: line is not UTF-8\"}"
                .to_string(),
        };
        writeln!(stdout, "{response}").map_err(|e| format!("stdout: {e}"))?;
        stdout.flush().map_err(|e| format!("stdout: {e}"))?;
    }
    Ok(ExitCode::SUCCESS)
}

/// One request → one response line. Never errors the loop: every
/// failure becomes an `{"ok":false}` response carrying the request id
/// (when one could be parsed at all).
fn respond(
    hub: &SyncHub,
    t: &Transformation,
    seed_models: &[Model],
    opts: &SessionOptions,
    out_dir: Option<&str>,
    store: &mut Option<ServeStore>,
    line: &str,
) -> String {
    let (id, outcome) = match JsonReader::parse_request(line) {
        Err(e) => (Json::Null, Err(format!("bad request: {e}"))),
        Ok(obj) => {
            let id = field(&obj, "id").cloned().unwrap_or(Json::Null);
            (
                id,
                dispatch(hub, t, seed_models, opts, out_dir, store, &obj),
            )
        }
    };
    let id = id.render();
    match outcome {
        Ok(result) => format!("{{\"id\":{id},\"ok\":true,\"result\":{result}}}"),
        Err(e) => format!("{{\"id\":{id},\"ok\":false,\"error\":{}}}", json_str(&e)),
    }
}

/// Executes one parsed request against the hub; returns the `result`
/// payload as raw JSON text.
fn dispatch(
    hub: &SyncHub,
    t: &Transformation,
    seed_models: &[Model],
    opts: &SessionOptions,
    out_dir: Option<&str>,
    store: &mut Option<ServeStore>,
    obj: &[(String, Json)],
) -> Result<String, String> {
    let cmd = str_field(obj, "cmd")?;
    if cmd == "lint" {
        // The report recorded when the spec was registered; no session.
        let report = hub.lint_report("default").map_err(|e| e.to_string())?;
        return Ok(report.render_json());
    }
    let name = str_field(obj, "session")?;
    match cmd.as_str() {
        "open" => {
            // Session names become `--out` path components on close:
            // refuse anything that could escape the output directory.
            if name.is_empty()
                || name == "."
                || name == ".."
                || name.contains(['/', '\\'])
                || name.contains('\0')
            {
                return Err(format!(
                    "invalid session name {}: must be non-empty and contain no path separators",
                    json_str(&name)
                ));
            }
            // Durable names additionally become store manifest tokens.
            if store.is_some() && name.chars().any(char::is_whitespace) {
                return Err(format!(
                    "invalid session name {}: durable session names must carry no whitespace",
                    json_str(&name)
                ));
            }
            let handle = hub
                .open_with(&name, "default", seed_models, opts.clone())
                .map_err(|e| e.to_string())?;
            if let Some(st) = store {
                // Snapshot the fresh session; if the store cannot hold
                // it, the open fails as a whole (close the hub slot so
                // memory and disk never disagree about what exists).
                let created = handle
                    .with(|s| PersistentSession::create(&st.dir.join("sessions").join(&name), s))
                    .map_err(|e| format!("store: {e}"))
                    .and_then(|ps| {
                        st.sessions.insert(name.clone(), ps);
                        st.sync_manifest(hub)
                    });
                if let Err(e) = created {
                    let _ = hub.close(&name);
                    st.sessions.remove(&name);
                    return Err(e);
                }
            }
            Ok(handle.with(|s| status_json(s)))
        }
        "status" => {
            let handle = hub.get(&name).map_err(|e| e.to_string())?;
            Ok(handle.with(|s| status_json(s)))
        }
        "edit" => {
            let spec = str_field(obj, "edit")?;
            let handle = hub.get(&name).map_err(|e| e.to_string())?;
            let result =
                handle.with(|s| apply_session_edit(t, s, &spec).map(|_| status_json(s)))?;
            if let Some(st) = store {
                st.commit(&name, &handle)?;
            }
            Ok(result)
        }
        "repair" => {
            let shape = shape_of_names(t, &str_field(obj, "targets")?)?;
            let handle = hub.get(&name).map_err(|e| e.to_string())?;
            let result = handle.with(|s| match s.repair(shape).map_err(|e| e.to_string())? {
                None => Ok::<String, String>("{\"repaired\":false}".to_string()),
                Some(out) => {
                    let deltas: Vec<String> = out
                        .deltas
                        .iter()
                        .map(|d| json_str(&d.to_string()))
                        .collect();
                    Ok(format!(
                        "{{\"repaired\":true,\"cost\":{},\"deltas\":[{}]}}",
                        out.cost,
                        deltas.join(",")
                    ))
                }
            })?;
            if let Some(st) = store {
                st.commit(&name, &handle)?;
            }
            Ok(result)
        }
        "rollback" => {
            let n = match field(obj, "n") {
                Some(Json::Int(n)) if *n >= 0 => *n as usize,
                Some(Json::Str(s)) if s == "all" => usize::MAX,
                Some(_) => return Err("field \"n\" must be a non-negative int or \"all\"".into()),
                None => return Err("missing field \"n\"".into()),
            };
            let handle = hub.get(&name).map_err(|e| e.to_string())?;
            let result = handle.with(|s| {
                // `rollback` saturates at the journal length itself, so
                // the "all" sentinel needs no pre-clamping here.
                let undone = s.rollback(n).map_err(|e| e.to_string())?;
                Ok::<String, String>(format!("{{\"undone\":{undone}}}"))
            })?;
            if let Some(st) = store {
                st.commit(&name, &handle)?;
            }
            Ok(result)
        }
        "journal" => {
            let handle = hub.get(&name).map_err(|e| e.to_string())?;
            Ok(handle.with(|s| journal_json(s)))
        }
        "close" => {
            // Write the final tuple *before* unregistering: a failed
            // write leaves the session open so the client can retry,
            // instead of dropping the only copy of its state.
            let handle = hub.get(&name).map_err(|e| e.to_string())?;
            if let Some(dir) = out_dir {
                handle.with(|s| write_models_quiet(&Path::new(dir).join(&name), t, s.models()))?;
            }
            hub.close(&name).map_err(|e| e.to_string())?;
            if let Some(st) = store {
                // A closed session's story is over: retire its store and
                // drop it from the manifest.
                st.sessions.remove(&name);
                let dir = st.dir.join("sessions").join(&name);
                if dir.exists() {
                    std::fs::remove_dir_all(&dir)
                        .map_err(|e| format!("store: {}: {e}", dir.display()))?;
                }
                st.sync_manifest(hub)?;
            }
            Ok(format!("{{\"closed\":{}}}", json_str(&name)))
        }
        other => Err(format!("unknown cmd `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_reader_roundtrips_protocol_shapes() {
        let obj = JsonReader::parse_request(
            r#" {"id": 7, "cmd":"edit", "session":"a", "edit":"fm set @0.name = \"a#b\\\\c\"", "flag": true, "n": null, "list": [1, -2, "x"]} "#,
        )
        .unwrap();
        assert_eq!(field(&obj, "id"), Some(&Json::Int(7)));
        assert_eq!(str_field(&obj, "cmd").unwrap(), "edit");
        assert_eq!(
            str_field(&obj, "edit").unwrap(),
            r#"fm set @0.name = "a#b\\c""#
        );
        assert_eq!(field(&obj, "flag"), Some(&Json::Bool(true)));
        assert_eq!(field(&obj, "n"), Some(&Json::Null));
        assert_eq!(
            field(&obj, "list"),
            Some(&Json::Arr(vec![
                Json::Int(1),
                Json::Int(-2),
                Json::Str("x".into())
            ]))
        );
        // Ids echo verbatim through render().
        assert_eq!(Json::Int(7).render(), "7");
        assert_eq!(Json::Str("x\"y".into()).render(), r#""x\"y""#);
        assert_eq!(Json::Null.render(), "null");
    }

    #[test]
    fn json_reader_rejects_malformed_input() {
        for bad in [
            "",
            "[1,2]",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "{\"a\":1.5}",
            "{\"a\":\"unterminated}",
            "{'a':1}",
        ] {
            assert!(JsonReader::parse_request(bad).is_err(), "{bad:?}");
        }
    }
}
