//! `mmt` — command-line front-end for the multidirectional model
//! transformation framework.
//!
//! ```text
//! mmt check   -t F.qvtr -M CF.mm FM.mm -m cf1.model cf2.model fm.model
//! mmt enforce -t F.qvtr -M CF.mm FM.mm -m ... --targets cf1,cf2 [--engine sat]
//! mmt repair  -t F.qvtr -M CF.mm FM.mm --batch reqs/ --targets cf1,cf2 --jobs 4
//! mmt sync    session.mmts -t F.qvtr -M CF.mm FM.mm -m ... [--json] [--store dir]
//! mmt serve   -t F.qvtr -M CF.mm FM.mm -m ... [--out dir] [--store dir]
//! mmt lint    -t F.qvtr -M CF.mm FM.mm [--json] [--allow MMT0xx,...]
//! mmt deps    -t F.qvtr -M CF.mm FM.mm
//! ```

mod serve;

use mmt_core::{
    EngineKind, LintCode, LintOptions, RepairRequest, SessionOptions, Shape, SyncSession,
    Transformation,
};
use mmt_dist::{EditOp, TupleCost};
use mmt_enforce::RepairOptions;
use mmt_model::text::{parse_metamodel, parse_model, print_model};
use mmt_model::{AttrType, Metamodel, Model, ObjId, Sym, Value};
use mmt_store::PersistentSession;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = r#"mmt — multidirectional model transformations

USAGE:
  mmt <command> [options]
  mmt help [<command>]     per-command usage
  mmt --version            print the version

COMMANDS:
  check     run checkonly evaluation over a model tuple
  enforce   least-change repair of one tuple under a repair shape
  repair    enforce, or batch-enforce a directory of requests
  sync      drive a stateful session from an edit/repair script
  serve     serve concurrent sessions over a JSON line protocol on stdio
  lint      static analysis of a transformation spec (no models needed)
  deps      print the resolved transformation and its dependency sets

Models are bound to the transformation's parameters in order.
`--targets` takes comma-separated model parameter names (the repair shape).
"#;

const USAGE_CHECK: &str = r#"mmt check — checkonly evaluation

USAGE:
  mmt check -t <spec.qvtr> -M <mm>... -m <model>...

Prints the per-direction report; exits 0 when consistent, 1 otherwise.
"#;

const USAGE_ENFORCE: &str = r#"mmt enforce — least-change repair of one model tuple

USAGE:
  mmt enforce -t <spec.qvtr> -M <mm>... -m <model>... --targets <names>
              [--engine sat|search] [--max-cost <n>] [--weights <w,...>]
              [--jobs <n>] [--out <dir>]

`--targets` takes comma-separated model parameter names (the repair
shape: which models the repair may rewrite). With `--out <dir>` the
repaired tuple is written as `<dir>/<param>.model` files. Exits 0 on
repair, 1 when no repair exists within the shape and cost bound.
"#;

const USAGE_REPAIR: &str = r#"mmt repair — enforce, or batch-enforce a directory of requests

USAGE:
  mmt repair -t <spec.qvtr> -M <mm>... --targets <names>
             (--batch <dir> | -m <model>...)
             [--engine sat|search] [--jobs <n>] [--max-cost <n>]
             [--weights <w,...>] [--out <dir>]

Without `--batch`, identical to `mmt enforce`. With `--batch <dir>`,
every subdirectory of <dir> is one independent request holding a
`<param>.model` file per transformation parameter; requests are
repaired concurrently across `--jobs` workers (results are identical
for every job count). With `--out <dir>`, the repaired tuple of
request `req` is written to `<dir>/<req>/`.
"#;

const USAGE_SYNC: &str = r#"mmt sync — drive a stateful session from an edit/repair script

USAGE:
  mmt sync <script> -t <spec.qvtr> -M <mm>... -m <model>...
           [--json] [--engine sat|search] [--max-cost <n>]
           [--weights <w,...>] [--jobs <n>] [--out <dir>]
           [--store <dir>]

Opens one warm synchronization session over the model tuple (one cold
start, then O(|edit|) per command) and executes the script line by
line. `<script>` may be `-` to read the script from stdin, so sessions
can be piped. Script commands:

  edit <param> add <Class> [@id]        create an object
  edit <param> del @id                  delete an object
  edit <param> set @id.<attr> = <val>   overwrite an attribute
                                        (<val>: "str" | true|false | int)
  edit <param> link @src.<ref> @dst     insert a link
  edit <param> unlink @src.<ref> @dst   remove a link
  status                                print consistency status
  repair <names>                        least-change repair (auto-applied
                                        and journaled)
  rollback <n|all>                      undo the last n journal entries
  journal                               print the journal as one
                                        replayable per-model script
  # ...                                 comment

With `--json`, `status` dumps a JSON object instead of text. The repair
engine defaults to `search` (it reuses the warm state). With
`--out <dir>` the final tuple is written as `<dir>/<param>.model`.
Exits 0 when the final state is consistent, 1 otherwise.

With `--store <dir>`, the session is durable: every journal entry is
written to a write-ahead log (fsynced after each script line), and if
<dir> already holds a store, the session *resumes* from it — the seed
tuple and journal are recovered from disk (the `-m` models are ignored)
and the script continues where the previous run stopped. A crashed run
recovers to exactly its last committed script line.
"#;

const USAGE_SERVE: &str = r#"mmt serve — serve concurrent sessions over a JSON line protocol

USAGE:
  mmt serve -t <spec.qvtr> -M <mm>... -m <model>...
            [--engine sat|search] [--max-cost <n>] [--weights <w,...>]
            [--jobs <n>] [--out <dir>] [--store <dir>]

Loads the transformation once, then reads one JSON request per line
from stdin and writes one JSON response per line to stdout, serving
any number of named concurrent sessions (each opened over the seed
tuple given with -m). Requests:

  {"id":1,"cmd":"open","session":"a"}
  {"id":2,"cmd":"edit","session":"a","edit":"fm set @0.name = "x""}
  {"id":3,"cmd":"status","session":"a"}
  {"id":4,"cmd":"repair","session":"a","targets":"cf1,cf2"}
  {"id":5,"cmd":"rollback","session":"a","n":2}        (or "n":"all")
  {"id":6,"cmd":"journal","session":"a"}
  {"id":7,"cmd":"close","session":"a"}
  {"id":8,"cmd":"lint"}

Responses echo the request id: {"id":1,"ok":true,"result":...} on
success, {"id":1,"ok":false,"error":"..."} on failure (the loop keeps
serving). The `edit` string is exactly a `mmt sync` edit line without
the leading `edit` keyword, and `status`/`journal` results are byte-
identical to `mmt sync --json` output for the same commands. The
`lint` request needs no session and returns the static-analysis report
recorded when the spec was registered (same JSON as `mmt lint --json`);
a spec with lint errors refuses to serve at all. With
`--out <dir>`, `close` writes the session's final tuple to
`<dir>/<session>/<param>.model`. EOF on stdin exits 0.

With `--store <dir>`, sessions are durable: `open` snapshots the seed
tuple, every `edit`/`repair`/`rollback` appends to (or rewinds) a
per-session write-ahead log before answering, and `close` retires the
session's store. A restarted `mmt serve --store <dir>` recovers every
session that was open when the previous process died, with identical
`status`/`journal` answers. Durable session names must carry no
whitespace.
"#;

const USAGE_LINT: &str = r#"mmt lint — static analysis of a transformation spec

USAGE:
  mmt lint -t <spec.qvtr> -M <mm>... [--json] [--allow <codes>]

Runs the static-analysis pass over the resolved spec (no models
needed): well-formedness (unused/unbindable variables, unsatisfiable
`when`/`where`, unreachable relations, call cycles, uninstantiable
domains), repair-conflict analysis (relation pairs whose repairs write
what another relation reads — possible repair ping-pong), and
grounding-cost estimation (templates whose SAT grounding is
exponential in degree). The same pass runs at hub registration:
specs with error findings are rejected by `mmt serve`.

Findings carry stable codes (MMT001...); `--allow <codes>` takes
comma-separated codes to suppress (pinning intentional findings).
With `--json` the report is one JSON object. Exits 0 when no errors
(warnings allowed), 1 on error findings.
"#;

const USAGE_DEPS: &str = r#"mmt deps — print the resolved transformation

USAGE:
  mmt deps -t <spec.qvtr> -M <mm>...

Prints the resolved relations and their checking-dependency sets,
flagging which are standard-equivalent (§2.2).
"#;

fn usage_for(cmd: &str) -> &'static str {
    match cmd {
        "check" => USAGE_CHECK,
        "enforce" => USAGE_ENFORCE,
        "repair" => USAGE_REPAIR,
        "sync" => USAGE_SYNC,
        "serve" => USAGE_SERVE,
        "lint" => USAGE_LINT,
        "deps" => USAGE_DEPS,
        _ => USAGE,
    }
}

struct Parsed {
    spec: Option<String>,
    metamodels: Vec<String>,
    models: Vec<String>,
    targets: Option<String>,
    engine: Option<EngineKind>,
    max_cost: u64,
    weights: Option<Vec<u64>>,
    out: Option<String>,
    store: Option<String>,
    jobs: usize,
    batch: Option<String>,
    script: Option<String>,
    allow: Vec<String>,
    json: bool,
    help: bool,
    version: bool,
}

fn parse_flags(args: &[String]) -> Result<Parsed, String> {
    let mut p = Parsed {
        spec: None,
        metamodels: Vec::new(),
        models: Vec::new(),
        targets: None,
        engine: None,
        max_cost: 16,
        weights: None,
        out: None,
        store: None,
        jobs: 1,
        batch: None,
        script: None,
        allow: Vec::new(),
        json: false,
        help: false,
        version: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-t" | "--transformation" => {
                i += 1;
                p.spec = Some(args.get(i).ok_or("missing value for -t")?.clone());
            }
            "-M" | "--metamodels" => {
                i += 1;
                while i < args.len() && !args[i].starts_with('-') {
                    p.metamodels.push(args[i].clone());
                    i += 1;
                }
                continue;
            }
            "-m" | "--models" => {
                i += 1;
                while i < args.len() && !args[i].starts_with('-') {
                    p.models.push(args[i].clone());
                    i += 1;
                }
                continue;
            }
            "--targets" => {
                i += 1;
                p.targets = Some(args.get(i).ok_or("missing value for --targets")?.clone());
            }
            "--engine" => {
                i += 1;
                p.engine = match args.get(i).map(String::as_str) {
                    Some("sat") => Some(EngineKind::Sat),
                    Some("search") => Some(EngineKind::Search),
                    other => return Err(format!("unknown engine {other:?}")),
                };
            }
            "--max-cost" => {
                i += 1;
                p.max_cost = args
                    .get(i)
                    .ok_or("missing value for --max-cost")?
                    .parse()
                    .map_err(|e| format!("bad --max-cost: {e}"))?;
            }
            "--weights" => {
                i += 1;
                let raw = args.get(i).ok_or("missing value for --weights")?;
                let ws: Result<Vec<u64>, _> = raw.split(',').map(str::parse).collect();
                p.weights = Some(ws.map_err(|e| format!("bad --weights: {e}"))?);
            }
            "--out" | "-o" => {
                i += 1;
                p.out = Some(args.get(i).ok_or("missing value for --out")?.clone());
            }
            "--store" => {
                i += 1;
                p.store = Some(args.get(i).ok_or("missing value for --store")?.clone());
            }
            "--jobs" | "-j" => {
                i += 1;
                p.jobs = args
                    .get(i)
                    .ok_or("missing value for --jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if p.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--batch" => {
                i += 1;
                p.batch = Some(args.get(i).ok_or("missing value for --batch")?.clone());
            }
            "--script" => {
                i += 1;
                p.script = Some(args.get(i).ok_or("missing value for --script")?.clone());
            }
            "--allow" => {
                i += 1;
                let raw = args.get(i).ok_or("missing value for --allow")?;
                p.allow.extend(raw.split(',').map(|s| s.trim().to_string()));
            }
            "--json" => p.json = true,
            "--help" | "-h" => p.help = true,
            "--version" | "-V" => p.version = true,
            other if p.script.is_none() && (!other.starts_with('-') || other == "-") => {
                // Bare positional: the sync script path (`-` = stdin).
                p.script = Some(other.to_string());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(p)
}

fn print_version() {
    println!("mmt {}", env!("CARGO_PKG_VERSION"));
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

/// A missing-required-argument error carrying the command's usage text.
fn missing(what: &str, cmd: &str) -> String {
    format!("missing {what}\n\n{}", usage_for(cmd))
}

fn load(p: &Parsed, cmd: &str) -> Result<(Transformation, Vec<Model>), String> {
    let spec_path = p
        .spec
        .as_ref()
        .ok_or_else(|| missing("-t <spec.qvtr>", cmd))?;
    let spec_src = read(spec_path)?;
    let mm_srcs: Vec<String> = p
        .metamodels
        .iter()
        .map(|m| read(m))
        .collect::<Result<_, _>>()?;
    let metamodels: Vec<Arc<Metamodel>> = mm_srcs
        .iter()
        .map(|s| parse_metamodel(s).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let hir = mmt_qvtr::parse_and_resolve(&spec_src, &metamodels).map_err(|e| e.to_string())?;
    let t = Transformation::from_hir(hir);
    let mut models = Vec::new();
    for (i, path) in p.models.iter().enumerate() {
        let src = read(path)?;
        let param = t
            .hir()
            .models
            .get(i)
            .ok_or_else(|| format!("too many models (transformation has {})", t.arity()))?;
        let m = parse_model(&src, &param.meta).map_err(|e| format!("{path}: {e}"))?;
        models.push(m);
    }
    Ok((t, models))
}

/// The repair shape named by `--targets`.
fn parse_shape(t: &Transformation, p: &Parsed, cmd: &str) -> Result<Shape, String> {
    let target_names = p
        .targets
        .as_ref()
        .ok_or_else(|| missing("--targets <names>", cmd))?;
    shape_of_names(t, target_names)
}

/// A repair shape from comma-separated model parameter names.
fn shape_of_names(t: &Transformation, names: &str) -> Result<Shape, String> {
    let mut indices = Vec::new();
    for name in names.split(',') {
        let idx = t
            .hir()
            .model_named(name.trim())
            .ok_or_else(|| format!("unknown model parameter `{name}`"))?;
        indices.push(idx.index());
    }
    Ok(Shape::of(&indices))
}

/// Engine options from the shared flags (`--max-cost`, `--weights`,
/// `--jobs`).
fn repair_options(t: &Transformation, p: &Parsed) -> Result<RepairOptions, String> {
    let mut opts = RepairOptions {
        max_cost: p.max_cost,
        jobs: p.jobs,
        ..RepairOptions::default()
    };
    if let Some(ws) = &p.weights {
        if ws.len() != t.arity() {
            return Err(format!(
                "--weights needs {} values, got {}",
                t.arity(),
                ws.len()
            ));
        }
        opts.tuple = TupleCost::weighted(ws.clone());
    }
    Ok(opts)
}

/// Writes one repaired tuple as `<dir>/<param>.model` files, logging
/// each path. The serve loop uses [`write_models_quiet`] instead —
/// its stdout is the protocol stream and must stay pure JSON.
fn write_models(dir: &Path, t: &Transformation, models: &[Model]) -> Result<(), String> {
    for path in write_models_quiet(dir, t, models)? {
        println!("wrote {}", path.display());
    }
    Ok(())
}

/// As [`write_models`] without the stdout log; returns the paths.
fn write_models_quiet(
    dir: &Path,
    t: &Transformation,
    models: &[Model],
) -> Result<Vec<std::path::PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for (param, model) in t.hir().models.iter().zip(models) {
        let path = dir.join(format!("{}.model", param.name));
        std::fs::write(&path, print_model(model)).map_err(|e| e.to_string())?;
        out.push(path);
    }
    Ok(out)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    };
    match cmd.as_str() {
        "--version" | "-V" | "version" => {
            print_version();
            return Ok(ExitCode::SUCCESS);
        }
        "help" | "--help" | "-h" => {
            println!(
                "{}",
                usage_for(args.get(1).map(String::as_str).unwrap_or(""))
            );
            return Ok(ExitCode::SUCCESS);
        }
        _ => {}
    }
    let p = parse_flags(&args[1..])?;
    if p.version {
        print_version();
        return Ok(ExitCode::SUCCESS);
    }
    if p.help {
        println!("{}", usage_for(cmd));
        return Ok(ExitCode::SUCCESS);
    }
    if cmd != "sync" {
        // Only `sync` takes a positional argument (the script path);
        // anywhere else a stray positional is a mistake, not input to
        // silently ignore.
        if let Some(stray) = &p.script {
            return Err(format!(
                "unexpected argument `{stray}`\n\n{}",
                usage_for(cmd)
            ));
        }
    }
    match cmd.as_str() {
        "check" => {
            let (t, models) = load(&p, cmd)?;
            if models.len() != t.arity() {
                return Err(format!(
                    "transformation expects {} models, got {}",
                    t.arity(),
                    models.len()
                ));
            }
            let report = t.check(&models).map_err(|e| e.to_string())?;
            println!("{report}");
            Ok(if report.consistent() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "enforce" => {
            let (t, models) = load(&p, cmd)?;
            let shape = parse_shape(&t, &p, cmd)?;
            let opts = repair_options(&t, &p)?;
            let engine = p.engine.unwrap_or(EngineKind::Sat);
            match t
                .enforce_with(&models, shape, engine, opts)
                .map_err(|e| e.to_string())?
            {
                None => {
                    println!("no repair within the given shape and cost bound");
                    Ok(ExitCode::from(1))
                }
                Some(out) => {
                    println!("repaired at distance {}", out.cost);
                    for (param, delta) in t.hir().models.iter().zip(&out.deltas) {
                        if !delta.is_empty() {
                            println!("--- {} ---\n{delta}", param.name);
                        }
                    }
                    if let Some(dir) = &p.out {
                        write_models(Path::new(dir), &t, &out.models)?;
                    }
                    Ok(ExitCode::SUCCESS)
                }
            }
        }
        "repair" => {
            let Some(batch_dir) = p.batch.clone() else {
                // Without --batch, `repair` is a single-request enforce.
                return run(&{
                    let mut forwarded = args.to_vec();
                    forwarded[0] = "enforce".into();
                    forwarded
                });
            };
            let (t, extra) = load(&p, cmd)?;
            if !extra.is_empty() {
                return Err("-m and --batch are mutually exclusive".into());
            }
            let shape = parse_shape(&t, &p, cmd)?;
            let opts = repair_options(&t, &p)?;
            // Every subdirectory of the batch dir is one request holding
            // a `<param>.model` file per transformation parameter.
            let mut names: Vec<String> = std::fs::read_dir(&batch_dir)
                .map_err(|e| format!("{batch_dir}: {e}"))?
                .filter_map(|entry| {
                    let entry = entry.ok()?;
                    entry
                        .file_type()
                        .ok()?
                        .is_dir()
                        .then(|| entry.file_name().to_string_lossy().into_owned())
                })
                .collect();
            names.sort();
            if names.is_empty() {
                return Err(format!("{batch_dir}: no request subdirectories"));
            }
            let mut requests = Vec::with_capacity(names.len());
            for name in &names {
                let mut models = Vec::with_capacity(t.arity());
                for param in &t.hir().models {
                    let path = Path::new(&batch_dir)
                        .join(name)
                        .join(format!("{}.model", param.name));
                    let src = read(&path.to_string_lossy())?;
                    let m = parse_model(&src, &param.meta)
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                    models.push(m);
                }
                requests.push(RepairRequest {
                    models,
                    targets: shape.targets(),
                });
            }
            let engine = p.engine.unwrap_or(EngineKind::Sat);
            println!(
                "repairing {} requests with {} worker(s) [{} engine]",
                requests.len(),
                p.jobs,
                match engine {
                    EngineKind::Sat => "sat",
                    EngineKind::Search => "search",
                }
            );
            let outcomes = t.enforce_batch(&requests, engine, opts);
            let mut all_repaired = true;
            for (name, outcome) in names.iter().zip(&outcomes) {
                match outcome {
                    Err(e) => return Err(format!("{name}: {e}")),
                    Ok(None) => {
                        println!("{name}: no repair within the given shape and cost bound");
                        all_repaired = false;
                    }
                    Ok(Some(out)) => {
                        println!("{name}: repaired at distance {}", out.cost);
                        if let Some(dir) = &p.out {
                            write_models(&Path::new(dir).join(name), &t, &out.models)?;
                        }
                    }
                }
            }
            Ok(if all_repaired {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "sync" => run_sync(&p),
        "serve" => serve::run_serve(&p),
        "lint" => {
            let (t, _) = load(&p, cmd)?;
            let mut opts = LintOptions::default();
            for code in &p.allow {
                opts.allow.push(
                    LintCode::parse(code)
                        .ok_or_else(|| format!("unknown lint code `{code}` for --allow"))?,
                );
            }
            let report = t.lint_with(&opts);
            if p.json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            Ok(if report.has_errors() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            })
        }
        "deps" => {
            let spec_path = p
                .spec
                .as_ref()
                .ok_or_else(|| missing("-t <spec.qvtr>", cmd))?;
            let spec_src = read(spec_path)?;
            let mm_srcs: Vec<String> = p
                .metamodels
                .iter()
                .map(|m| read(m))
                .collect::<Result<_, _>>()?;
            let metamodels: Vec<Arc<Metamodel>> = mm_srcs
                .iter()
                .map(|s| parse_metamodel(s).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            let hir =
                mmt_qvtr::parse_and_resolve(&spec_src, &metamodels).map_err(|e| e.to_string())?;
            println!("{}", mmt_qvtr::print_hir(&hir));
            for rel in &hir.relations {
                println!(
                    "relation {}{}: deps {} ({})",
                    rel.name,
                    if rel.is_top { " (top)" } else { "" },
                    rel.deps,
                    if rel.deps.is_standard_equivalent() {
                        "standard-equivalent"
                    } else {
                        "extended"
                    }
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

/// Executes `mmt sync <script>`: one warm [`SyncSession`] over the
/// loaded tuple, driven line by line.
fn run_sync(p: &Parsed) -> Result<ExitCode, String> {
    let script_path = p
        .script
        .as_ref()
        .ok_or_else(|| missing("<script>", "sync"))?
        .clone();
    // `-` reads the script from stdin, so sessions can be piped.
    let (script_path, script_src) = if script_path == "-" {
        let mut src = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut src)
            .map_err(|e| format!("<stdin>: {e}"))?;
        ("<stdin>".to_string(), src)
    } else {
        let src = read(&script_path)?;
        (script_path, src)
    };
    let (t, models) = load(p, "sync")?;
    let t = Arc::new(t);
    let opts = SessionOptions {
        engine: p.engine.unwrap_or(EngineKind::Search),
        repair: repair_options(&t, p)?,
    };
    // With --store, a directory that already holds a session store wins
    // over -m: the session resumes from its persisted seed + journal.
    let store_dir = p.store.as_ref().map(Path::new);
    let (mut store, mut session) = match store_dir {
        Some(dir) if PersistentSession::exists(dir) => {
            let (ps, s) = PersistentSession::open(dir, &t, opts).map_err(|e| e.to_string())?;
            (Some(ps), s)
        }
        _ => {
            if models.len() != t.arity() {
                return Err(format!(
                    "transformation expects {} models, got {}",
                    t.arity(),
                    models.len()
                ));
            }
            let s = SyncSession::with_options(Arc::clone(&t), &models, opts)
                .map_err(|e| e.to_string())?;
            let ps = store_dir
                .map(|dir| PersistentSession::create(dir, &s))
                .transpose()
                .map_err(|e| e.to_string())?;
            (ps, s)
        }
    };
    for (lineno, raw) in script_src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        exec_sync_line(&t, &mut session, line, p.json)
            .map_err(|e| format!("{script_path}:{}: {e}", lineno + 1))?;
        // Commit point: each script line is durable before the next one
        // runs (a no-op when the line didn't touch the journal).
        if let Some(store) = &mut store {
            store
                .commit(&session)
                .map_err(|e| format!("{script_path}:{}: store: {e}", lineno + 1))?;
        }
    }
    let status = session.status();
    if !p.json {
        println!(
            "final: {} ({} journal entr{})",
            if status.consistent {
                "consistent".to_string()
            } else {
                format!("INCONSISTENT ({} violations)", status.violations)
            },
            session.journal().len(),
            if session.journal().len() == 1 {
                "y"
            } else {
                "ies"
            },
        );
    }
    if let Some(dir) = &p.out {
        write_models(Path::new(dir), &t, session.models())?;
    }
    Ok(if status.consistent {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// Strips a `# comment` from a script line, ignoring `#` inside quoted
/// string values (backslash escapes respected).
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Executes one script line against the live session.
fn exec_sync_line(
    t: &Transformation,
    session: &mut SyncSession,
    line: &str,
    json: bool,
) -> Result<(), String> {
    let mut words = line.split_whitespace();
    match words.next() {
        Some("status") => {
            if json {
                println!("{}", status_json(session));
            } else {
                let s = session.status();
                if s.consistent {
                    println!("status: consistent");
                } else {
                    println!("status: INCONSISTENT ({} violations)", s.violations);
                }
            }
            Ok(())
        }
        Some("repair") => {
            let names = words.next().ok_or("repair needs target names")?;
            let shape = shape_of_names(t, names)?;
            match session.repair(shape).map_err(|e| e.to_string())? {
                None => {
                    println!("repair {names}: no repair within the given shape and cost bound");
                }
                Some(out) => {
                    println!("repair {names}: repaired at distance {}", out.cost);
                    for (param, delta) in t.hir().models.iter().zip(&out.deltas) {
                        if !delta.is_empty() {
                            println!("--- {} ---\n{delta}", param.name);
                        }
                    }
                }
            }
            Ok(())
        }
        Some("rollback") => {
            let arg = words.next().ok_or("rollback needs <n|all>")?;
            let n = if arg == "all" {
                session.journal().len()
            } else {
                arg.parse::<usize>()
                    .map_err(|e| format!("bad count: {e}"))?
            };
            let undone = session.rollback(n).map_err(|e| e.to_string())?;
            println!(
                "rollback: undid {undone} entr{}",
                if undone == 1 { "y" } else { "ies" }
            );
            Ok(())
        }
        Some("journal") => {
            if json {
                println!("{}", journal_json(session));
            } else {
                let entries = session.journal().len();
                println!(
                    "journal: {entries} entr{}",
                    if entries == 1 { "y" } else { "ies" }
                );
                for (param, delta) in t.hir().models.iter().zip(&session.journal_script()) {
                    if !delta.is_empty() {
                        println!("--- {} ---\n{delta}", param.name);
                    }
                }
            }
            Ok(())
        }
        Some("edit") => {
            let spec = line
                .trim_start()
                .strip_prefix("edit")
                .map(str::trim_start)
                .ok_or("malformed edit line")?;
            apply_session_edit(t, session, spec).map(|_| ())
        }
        Some(other) => Err(format!("unknown sync command `{other}`")),
        None => Ok(()),
    }
}

/// Applies one edit to a live session from its textual form
/// `<param> <action...>` — the `mmt sync` edit line without the leading
/// `edit` keyword, which is also exactly what a `serve` request's
/// `"edit"` field carries. Returns the post-edit status.
fn apply_session_edit(
    t: &Transformation,
    session: &mut SyncSession,
    spec: &str,
) -> Result<mmt_core::SyncStatus, String> {
    let mut words = spec.split_whitespace();
    let param = words.next().ok_or("edit needs a model parameter")?;
    let model = t
        .hir()
        .model_named(param)
        .ok_or_else(|| format!("unknown model parameter `{param}`"))?;
    let meta = Arc::clone(&t.hir().models[model.index()].meta);
    let live = &session.models()[model.index()];
    // The action tail after `<param>`, stripped positionally — a
    // parameter name that happens to end in a keyword (`asset`,
    // `reset`, …) must not confuse parsing.
    let tail = spec
        .trim_start()
        .strip_prefix(param)
        .map(str::trim_start)
        .ok_or("malformed edit line")?;
    let op = parse_edit_op(&meta, live, tail, &mut words)?;
    session.apply(model, op).map_err(|e| e.to_string())
}

/// Parses the action tail of an `edit <param> ...` line. `tail` is the
/// line text starting at the action keyword; `words` is the same text
/// pre-tokenized.
fn parse_edit_op<'a>(
    meta: &Arc<Metamodel>,
    live: &Model,
    tail: &str,
    words: &mut impl Iterator<Item = &'a str>,
) -> Result<EditOp, String> {
    match words.next() {
        Some("add") => {
            let class_name = words.next().ok_or("add needs a class name")?;
            let class = meta
                .class_named(class_name)
                .ok_or_else(|| format!("unknown class `{class_name}`"))?;
            let id = match words.next() {
                Some(tok) => parse_obj(tok)?,
                None => ObjId(live.id_bound() as u32),
            };
            Ok(EditOp::AddObj { id, class })
        }
        Some("del") => {
            let id = parse_obj(words.next().ok_or("del needs @id")?)?;
            let class = live
                .class_of(id)
                .map_err(|_| format!("no object {} in the model", id.index()))?;
            Ok(EditOp::DelObj { id, class })
        }
        Some("set") => {
            // set @id.<attr> = <value> — the value may contain spaces,
            // so split the raw tail at the first `=` (the lhs never
            // contains one) instead of consuming tokens.
            let (lhs, rhs) = tail
                .strip_prefix("set")
                .and_then(|rest| rest.split_once('='))
                .ok_or("set needs `@id.<attr> = <value>`")?;
            let (id_tok, attr_name) = lhs.trim().split_once('.').ok_or("set needs `@id.<attr>`")?;
            let id = parse_obj(id_tok)?;
            let class = live
                .class_of(id)
                .map_err(|_| format!("no object {} in the model", id.index()))?;
            let attr = meta
                .attr_of(class, Sym::new(attr_name.trim()))
                .ok_or_else(|| format!("unknown attribute `{}`", attr_name.trim()))?;
            let value = parse_value(rhs.trim(), meta.attr(attr).ty)?;
            let old = live.attr(id, attr).unwrap_or(value);
            Ok(EditOp::SetAttr {
                id,
                attr,
                value,
                old,
            })
        }
        Some(verb @ ("link" | "unlink")) => {
            let (src_tok, ref_name) = words
                .next()
                .ok_or("link needs `@src.<ref>`")?
                .split_once('.')
                .ok_or("link needs `@src.<ref>`")?;
            let src = parse_obj(src_tok)?;
            let dst = parse_obj(words.next().ok_or("link needs `@dst`")?)?;
            let class = live
                .class_of(src)
                .map_err(|_| format!("no object {} in the model", src.index()))?;
            let r = meta
                .ref_of(class, Sym::new(ref_name))
                .ok_or_else(|| format!("unknown reference `{ref_name}`"))?;
            Ok(if verb == "link" {
                EditOp::AddLink { src, r, dst }
            } else {
                EditOp::DelLink { src, r, dst }
            })
        }
        other => Err(format!("unknown edit action {other:?}")),
    }
}

/// Parses an `@id` object token.
fn parse_obj(tok: &str) -> Result<ObjId, String> {
    let digits = tok
        .strip_prefix('@')
        .ok_or_else(|| format!("expected `@id`, got `{tok}`"))?;
    digits
        .parse::<u32>()
        .map(ObjId)
        .map_err(|e| format!("bad object id `{tok}`: {e}"))
}

/// Parses a script value against the attribute's declared type.
fn parse_value(raw: &str, ty: AttrType) -> Result<Value, String> {
    match ty {
        AttrType::Str => {
            let inner = raw
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("string value must be quoted, got `{raw}`"))?;
            Ok(Value::str(
                &inner.replace("\\\"", "\"").replace("\\\\", "\\"),
            ))
        }
        AttrType::Bool => match raw {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(format!("bool value must be true|false, got `{raw}`")),
        },
        AttrType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad int `{raw}`: {e}")),
    }
}

/// The `--json` status dump: consistency, journal size, fingerprint,
/// and every violating binding.
fn status_json(session: &SyncSession) -> String {
    let status = session.status();
    let report = session.report();
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"consistent\":{},\"violations\":{},\"journal\":{},\"fingerprint\":{},\"checks\":[",
        status.consistent,
        status.violations,
        session.journal().len(),
        session.fingerprint(),
    ));
    let mut first_check = true;
    for check in &report.checks {
        if !first_check {
            out.push(',');
        }
        first_check = false;
        out.push_str(&format!(
            "{{\"relation\":{},\"dep\":{},\"holds\":{},\"violations\":[",
            json_str(&check.relation_name.to_string()),
            json_str(&check.dep.to_string()),
            check.holds,
        ));
        let mut first_v = true;
        for v in &check.violations {
            if !first_v {
                out.push(',');
            }
            first_v = false;
            out.push('{');
            let mut first_b = true;
            for (var, val) in &v.vars {
                if !first_b {
                    out.push(',');
                }
                first_b = false;
                out.push_str(&format!("{}:{}", json_str(&var.to_string()), json_str(val)));
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// The `--json` journal dump (also the `serve` protocol's `journal`
/// result): entry count plus the flattened per-model replay script, in
/// model-space order.
fn journal_json(session: &SyncSession) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"entries\":{},\"script\":[",
        session.journal().len()
    ));
    for (i, delta) in session.journal_script().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(&delta.to_string()));
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
