//! `mmt` — command-line front-end for the multidirectional model
//! transformation framework.
//!
//! ```text
//! mmt check   -t F.qvtr -M CF.mm FM.mm -m cf1.model cf2.model fm.model
//! mmt enforce -t F.qvtr -M CF.mm FM.mm -m ... --targets cf1,cf2 [--engine sat]
//! mmt repair  -t F.qvtr -M CF.mm FM.mm --batch reqs/ --targets cf1,cf2 --jobs 4
//! mmt deps    -t F.qvtr -M CF.mm FM.mm
//! ```

use mmt_core::{EngineKind, RepairRequest, Shape, Transformation};
use mmt_dist::TupleCost;
use mmt_enforce::RepairOptions;
use mmt_model::text::{parse_metamodel, parse_model, print_model};
use mmt_model::{Metamodel, Model};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = r#"mmt — multidirectional model transformations

USAGE:
  mmt check   -t <spec.qvtr> -M <mm>... -m <model>...
  mmt enforce -t <spec.qvtr> -M <mm>... -m <model>... --targets <names>
              [--engine sat|search] [--max-cost <n>] [--weights <w,...>]
              [--jobs <n>] [--out <dir>]
  mmt repair  -t <spec.qvtr> -M <mm>... --targets <names>
              (--batch <dir> | -m <model>...)
              [--engine sat|search] [--jobs <n>] [--max-cost <n>]
              [--weights <w,...>] [--out <dir>]
  mmt deps    -t <spec.qvtr> -M <mm>...

Models are bound to the transformation's parameters in order.
`--targets` takes comma-separated model parameter names (the repair shape).
`mmt repair --batch <dir>` treats every subdirectory of <dir> as one
independent request holding a `<param>.model` file per transformation
parameter; requests are repaired concurrently across `--jobs` workers
(results are identical for every job count). With `--out <dir>`, the
repaired tuple of request `req` is written to `<dir>/<req>/`.
"#;

struct Parsed {
    spec: Option<String>,
    metamodels: Vec<String>,
    models: Vec<String>,
    targets: Option<String>,
    engine: EngineKind,
    max_cost: u64,
    weights: Option<Vec<u64>>,
    out: Option<String>,
    jobs: usize,
    batch: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Parsed, String> {
    let mut p = Parsed {
        spec: None,
        metamodels: Vec::new(),
        models: Vec::new(),
        targets: None,
        engine: EngineKind::Sat,
        max_cost: 16,
        weights: None,
        out: None,
        jobs: 1,
        batch: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-t" | "--transformation" => {
                i += 1;
                p.spec = Some(args.get(i).ok_or("missing value for -t")?.clone());
            }
            "-M" | "--metamodels" => {
                i += 1;
                while i < args.len() && !args[i].starts_with('-') {
                    p.metamodels.push(args[i].clone());
                    i += 1;
                }
                continue;
            }
            "-m" | "--models" => {
                i += 1;
                while i < args.len() && !args[i].starts_with('-') {
                    p.models.push(args[i].clone());
                    i += 1;
                }
                continue;
            }
            "--targets" => {
                i += 1;
                p.targets = Some(args.get(i).ok_or("missing value for --targets")?.clone());
            }
            "--engine" => {
                i += 1;
                p.engine = match args.get(i).map(String::as_str) {
                    Some("sat") => EngineKind::Sat,
                    Some("search") => EngineKind::Search,
                    other => return Err(format!("unknown engine {other:?}")),
                };
            }
            "--max-cost" => {
                i += 1;
                p.max_cost = args
                    .get(i)
                    .ok_or("missing value for --max-cost")?
                    .parse()
                    .map_err(|e| format!("bad --max-cost: {e}"))?;
            }
            "--weights" => {
                i += 1;
                let raw = args.get(i).ok_or("missing value for --weights")?;
                let ws: Result<Vec<u64>, _> = raw.split(',').map(str::parse).collect();
                p.weights = Some(ws.map_err(|e| format!("bad --weights: {e}"))?);
            }
            "--out" | "-o" => {
                i += 1;
                p.out = Some(args.get(i).ok_or("missing value for --out")?.clone());
            }
            "--jobs" | "-j" => {
                i += 1;
                p.jobs = args
                    .get(i)
                    .ok_or("missing value for --jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if p.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--batch" => {
                i += 1;
                p.batch = Some(args.get(i).ok_or("missing value for --batch")?.clone());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(p)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn load(p: &Parsed) -> Result<(Transformation, Vec<Model>), String> {
    let spec_path = p.spec.as_ref().ok_or("missing -t <spec.qvtr>")?;
    let spec_src = read(spec_path)?;
    let mm_srcs: Vec<String> = p
        .metamodels
        .iter()
        .map(|m| read(m))
        .collect::<Result<_, _>>()?;
    let metamodels: Vec<Arc<Metamodel>> = mm_srcs
        .iter()
        .map(|s| parse_metamodel(s).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let hir = mmt_qvtr::parse_and_resolve(&spec_src, &metamodels).map_err(|e| e.to_string())?;
    let t = Transformation::from_hir(hir);
    let mut models = Vec::new();
    for (i, path) in p.models.iter().enumerate() {
        let src = read(path)?;
        let param = t
            .hir()
            .models
            .get(i)
            .ok_or_else(|| format!("too many models (transformation has {})", t.arity()))?;
        let m = parse_model(&src, &param.meta).map_err(|e| format!("{path}: {e}"))?;
        models.push(m);
    }
    Ok((t, models))
}

/// The repair shape named by `--targets`.
fn parse_shape(t: &Transformation, p: &Parsed) -> Result<Shape, String> {
    let target_names = p.targets.as_ref().ok_or("missing --targets")?;
    let mut indices = Vec::new();
    for name in target_names.split(',') {
        let idx = t
            .hir()
            .model_named(name.trim())
            .ok_or_else(|| format!("unknown model parameter `{name}`"))?;
        indices.push(idx.index());
    }
    Ok(Shape::of(&indices))
}

/// Engine options from the shared flags (`--max-cost`, `--weights`,
/// `--jobs`).
fn repair_options(t: &Transformation, p: &Parsed) -> Result<RepairOptions, String> {
    let mut opts = RepairOptions {
        max_cost: p.max_cost,
        jobs: p.jobs,
        ..RepairOptions::default()
    };
    if let Some(ws) = &p.weights {
        if ws.len() != t.arity() {
            return Err(format!(
                "--weights needs {} values, got {}",
                t.arity(),
                ws.len()
            ));
        }
        opts.tuple = TupleCost::weighted(ws.clone());
    }
    Ok(opts)
}

/// Writes one repaired tuple as `<dir>/<param>.model` files.
fn write_models(dir: &Path, t: &Transformation, models: &[Model]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    for (param, model) in t.hir().models.iter().zip(models) {
        let path = dir.join(format!("{}.model", param.name));
        std::fs::write(&path, print_model(model)).map_err(|e| e.to_string())?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    };
    let p = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "check" => {
            let (t, models) = load(&p)?;
            if models.len() != t.arity() {
                return Err(format!(
                    "transformation expects {} models, got {}",
                    t.arity(),
                    models.len()
                ));
            }
            let report = t.check(&models).map_err(|e| e.to_string())?;
            println!("{report}");
            Ok(if report.consistent() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "enforce" => {
            let (t, models) = load(&p)?;
            let shape = parse_shape(&t, &p)?;
            let opts = repair_options(&t, &p)?;
            match t
                .enforce_with(&models, shape, p.engine, opts)
                .map_err(|e| e.to_string())?
            {
                None => {
                    println!("no repair within the given shape and cost bound");
                    Ok(ExitCode::from(1))
                }
                Some(out) => {
                    println!("repaired at distance {}", out.cost);
                    for (param, delta) in t.hir().models.iter().zip(&out.deltas) {
                        if !delta.is_empty() {
                            println!("--- {} ---\n{delta}", param.name);
                        }
                    }
                    if let Some(dir) = &p.out {
                        write_models(Path::new(dir), &t, &out.models)?;
                    }
                    Ok(ExitCode::SUCCESS)
                }
            }
        }
        "repair" => {
            let Some(batch_dir) = p.batch.clone() else {
                // Without --batch, `repair` is a single-request enforce.
                return run(&{
                    let mut forwarded = args.to_vec();
                    forwarded[0] = "enforce".into();
                    forwarded
                });
            };
            let (t, extra) = load(&p)?;
            if !extra.is_empty() {
                return Err("-m and --batch are mutually exclusive".into());
            }
            let shape = parse_shape(&t, &p)?;
            let opts = repair_options(&t, &p)?;
            // Every subdirectory of the batch dir is one request holding
            // a `<param>.model` file per transformation parameter.
            let mut names: Vec<String> = std::fs::read_dir(&batch_dir)
                .map_err(|e| format!("{batch_dir}: {e}"))?
                .filter_map(|entry| {
                    let entry = entry.ok()?;
                    entry
                        .file_type()
                        .ok()?
                        .is_dir()
                        .then(|| entry.file_name().to_string_lossy().into_owned())
                })
                .collect();
            names.sort();
            if names.is_empty() {
                return Err(format!("{batch_dir}: no request subdirectories"));
            }
            let mut requests = Vec::with_capacity(names.len());
            for name in &names {
                let mut models = Vec::with_capacity(t.arity());
                for param in &t.hir().models {
                    let path = Path::new(&batch_dir)
                        .join(name)
                        .join(format!("{}.model", param.name));
                    let src = read(&path.to_string_lossy())?;
                    let m = parse_model(&src, &param.meta)
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                    models.push(m);
                }
                requests.push(RepairRequest {
                    models,
                    targets: shape.targets(),
                });
            }
            println!(
                "repairing {} requests with {} worker(s) [{} engine]",
                requests.len(),
                p.jobs,
                match p.engine {
                    EngineKind::Sat => "sat",
                    EngineKind::Search => "search",
                }
            );
            let outcomes = t.enforce_batch(&requests, p.engine, opts);
            let mut all_repaired = true;
            for (name, outcome) in names.iter().zip(&outcomes) {
                match outcome {
                    Err(e) => return Err(format!("{name}: {e}")),
                    Ok(None) => {
                        println!("{name}: no repair within the given shape and cost bound");
                        all_repaired = false;
                    }
                    Ok(Some(out)) => {
                        println!("{name}: repaired at distance {}", out.cost);
                        if let Some(dir) = &p.out {
                            write_models(&Path::new(dir).join(name), &t, &out.models)?;
                        }
                    }
                }
            }
            Ok(if all_repaired {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "deps" => {
            let spec_path = p.spec.as_ref().ok_or("missing -t <spec.qvtr>")?;
            let spec_src = read(spec_path)?;
            let mm_srcs: Vec<String> = p
                .metamodels
                .iter()
                .map(|m| read(m))
                .collect::<Result<_, _>>()?;
            let metamodels: Vec<Arc<Metamodel>> = mm_srcs
                .iter()
                .map(|s| parse_metamodel(s).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            let hir =
                mmt_qvtr::parse_and_resolve(&spec_src, &metamodels).map_err(|e| e.to_string())?;
            println!("{}", mmt_qvtr::print_hir(&hir));
            for rel in &hir.relations {
                println!(
                    "relation {}{}: deps {} ({})",
                    rel.name,
                    if rel.is_top { " (top)" } else { "" },
                    rel.deps,
                    if rel.deps.is_standard_equivalent() {
                        "standard-equivalent"
                    } else {
                        "extended"
                    }
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}
