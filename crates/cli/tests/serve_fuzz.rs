//! Fuzz-style negative testing of the `mmt serve` request reader
//! (ISSUE 6): seeded destructive mutations of valid request lines —
//! truncations, flipped bytes, prepended garbage, pathological
//! nesting, invalid UTF-8 — must each be answered with `ok:false`
//! without killing the loop or poisoning the *next* request: a valid
//! `status` sent right after every mutant must return the exact same
//! payload as an undisturbed session.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn repo_file(rel: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(rel);
    p.to_string_lossy().into_owned()
}

/// The scenario corpus as served fixture tuples: `(spec, metamodels,
/// models)`, all under `examples/data`. The fuzz driver picks one per
/// seeded round so every scenario's session state goes through the
/// mutation gauntlet, not just the feature-model one.
const SCENARIOS: &[(&str, &[&str], &[&str])] = &[
    (
        "F.qvtr",
        &["CF.mm", "FM.mm"],
        &["cf1.model", "cf2.model", "fm.model"],
    ),
    (
        "W2C.qvtr",
        &["World.mm", "Company.mm"],
        &["world.model", "company.model"],
    ),
    (
        "C2T.qvtr",
        &["UML.mm", "RDB.mm"],
        &["uml.model", "rdb.model"],
    ),
];

fn serve_args(scenario: usize) -> Vec<String> {
    let (spec, mms, models) = SCENARIOS[scenario];
    let mut args = vec![
        "serve".to_string(),
        "-t".into(),
        repo_file(&format!("examples/data/{spec}")),
        "-M".into(),
    ];
    args.extend(mms.iter().map(|m| repo_file(&format!("examples/data/{m}"))));
    args.push("-m".into());
    args.extend(
        models
            .iter()
            .map(|m| repo_file(&format!("examples/data/{m}"))),
    );
    args
}

/// Runs `mmt serve` over raw stdin bytes (the mutants are not all
/// UTF-8) and returns stdout.
fn serve_bytes_on(scenario: usize, input: &[u8]) -> String {
    let args = serve_args(scenario);
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let mut child = Command::new(env!("CARGO_BIN_EXE_mmt"))
        .args(&argrefs)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(input)
        .unwrap();
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("binary exits");
    assert!(
        out.status.success(),
        "serve loop died: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Extracts the `result` payload of the response carrying `id`.
fn serve_result(stdout: &str, id: u64) -> String {
    let prefix = format!("{{\"id\":{id},\"ok\":true,\"result\":");
    for line in stdout.lines() {
        if let Some(body) = line.strip_prefix(&prefix) {
            return body
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated response: {line}"))
                .to_string();
        }
    }
    panic!("no ok response with id {id} in:\n{stdout}");
}

/// splitmix64 — a tiny deterministic PRNG, so the mutation schedule
/// is reproducible from the printed seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One destructive mutation of `line`. Every branch is guaranteed to
/// produce an *invalid* request: proper prefixes of a one-line JSON
/// object never close it, a high bit on an ASCII byte is never valid
/// UTF-8, and the rest break the grammar outright.
fn mutate(line: &str, rng: &mut Rng) -> Vec<u8> {
    let bytes = line.as_bytes();
    match rng.below(6) {
        // Truncation at every possible severity, torn-write style.
        0 => bytes[..1 + rng.below(bytes.len() - 1)].to_vec(),
        // A high bit flipped somewhere: a lone 0x80..0xFF byte inside
        // ASCII is invalid UTF-8.
        1 => {
            let mut m = bytes.to_vec();
            let i = rng.below(m.len());
            m[i] |= 0x80;
            m
        }
        // The opening brace replaced: not a JSON value at all.
        2 => {
            let mut m = bytes.to_vec();
            m[0] = b'?';
            m
        }
        // Garbage prepended before an otherwise valid object.
        3 => {
            let mut m = b"garbage ".to_vec();
            m.extend_from_slice(bytes);
            m
        }
        // Pathological nesting: thousands of unclosed brackets. This
        // must hit the reader's depth cap, not the process stack.
        4 => {
            let mut m = b"{\"id\":0,\"cmd\":".to_vec();
            m.extend(std::iter::repeat_n(b'[', 4000 + rng.below(4000)));
            m
        }
        // Valid JSON, wrong shapes: the dispatcher's problem.
        _ => {
            const SHAPES: &[&str] = &[
                "{\"id\":[],\"cmd\":42}",
                "[1,2,3]",
                "\"status\"",
                "{\"cmd\":\"edit\",\"session\":\"s\",\"edit\":7}",
                "{\"id\":0,\"cmd\":\"nonsense\",\"session\":\"s\"}",
                "null",
            ];
            SHAPES[rng.below(SHAPES.len())].as_bytes().to_vec()
        }
    }
}

#[test]
fn mutated_requests_never_poison_the_next_one() {
    const SEED: u64 = 0x6d6d_7466_2d36; // printed in failures via step index
    const ROUNDS: usize = 16; // per scenario

    for (scenario, &(name, _, _)) in SCENARIOS.iter().enumerate() {
        // Baseline: what `status` answers in an undisturbed session of
        // this scenario.
        let baseline = serve_bytes_on(
            scenario,
            b"{\"id\":1,\"cmd\":\"open\",\"session\":\"s\"}\n{\"id\":2,\"cmd\":\"status\",\"session\":\"s\"}\n",
        );
        let want = serve_result(&baseline, 2);

        // One long-lived serve process per scenario: open once, then
        // alternate mutants with probe requests. The schedule is seeded
        // per scenario so the corpus does not share one mutation path.
        let status_line = "{\"id\":9,\"cmd\":\"status\",\"session\":\"s\"}";
        let mut rng = Rng(SEED.wrapping_add(scenario as u64));
        let mut input: Vec<u8> = b"{\"id\":1,\"cmd\":\"open\",\"session\":\"s\"}\n".to_vec();
        let mut probes = Vec::new();
        for round in 0..ROUNDS {
            input.extend(mutate(status_line, &mut rng));
            input.push(b'\n');
            let probe_id = 100 + round as u64;
            input.extend(
                format!("{{\"id\":{probe_id},\"cmd\":\"status\",\"session\":\"s\"}}\n").as_bytes(),
            );
            probes.push(probe_id);
        }
        let stdout = serve_bytes_on(scenario, &input);

        // Every mutant was answered with ok:false — none were dropped,
        // none crashed the loop, and none were mistaken for a command.
        let rejected = stdout
            .lines()
            .filter(|l| l.contains("\"ok\":false"))
            .count();
        assert_eq!(
            rejected, ROUNDS,
            "{name}: expected {ROUNDS} rejections, got {rejected}:\n{stdout}"
        );
        // And every probe right after a mutant sees the untouched session.
        for (round, id) in probes.iter().enumerate() {
            assert_eq!(
                serve_result(&stdout, *id),
                want,
                "{name}: probe after mutant #{round} saw a poisoned session"
            );
        }
    }
}

/// The depth cap itself: a single line with tens of thousands of
/// brackets must come back as a plain `ok:false`, not a stack
/// overflow (which would kill the child and fail `serve_bytes_on`).
/// Served over the Company scenario — the cap is tuple-independent.
#[test]
fn pathological_nesting_is_rejected_flat() {
    let mut input: Vec<u8> = Vec::new();
    input.extend_from_slice(b"{\"id\":0,\"cmd\":");
    input.extend(std::iter::repeat_n(b'[', 100_000));
    input.push(b'\n');
    input.extend_from_slice(b"{\"id\":1,\"cmd\":\"open\",\"session\":\"s\"}\n");
    let stdout = serve_bytes_on(1, &input);
    assert!(
        stdout
            .lines()
            .any(|l| l.contains("\"ok\":false") && l.contains("nesting")),
        "no depth-cap rejection in:\n{stdout}"
    );
    assert!(
        stdout
            .lines()
            .any(|l| l.starts_with("{\"id\":1,\"ok\":true")),
        "loop did not survive the nesting bomb:\n{stdout}"
    );
}

/// Raw invalid UTF-8 on stdin is answered (id `null`) and the loop
/// keeps serving. Served over the class↔RDBMS scenario.
#[test]
fn invalid_utf8_lines_are_answered_not_fatal() {
    let mut input: Vec<u8> = Vec::new();
    input.extend_from_slice(b"\xff\xfe\x80 not text\n");
    input.extend_from_slice(b"{\"id\":1,\"cmd\":\"open\",\"session\":\"s\"}\n");
    input.extend_from_slice(b"{\"id\":2,\"cmd\":\"status\",\"session\":\"s\"}\n");
    let stdout = serve_bytes_on(2, &input);
    assert!(
        stdout
            .lines()
            .any(|l| l.starts_with("{\"id\":null,\"ok\":false") && l.contains("UTF-8")),
        "no UTF-8 rejection in:\n{stdout}"
    );
    let baseline = serve_bytes_on(
        2,
        b"{\"id\":1,\"cmd\":\"open\",\"session\":\"s\"}\n{\"id\":2,\"cmd\":\"status\",\"session\":\"s\"}\n",
    );
    assert_eq!(serve_result(&stdout, 2), serve_result(&baseline, 2));
}
