//! End-to-end tests driving the `mmt` binary.

use std::path::PathBuf;
use std::process::Command;

fn repo_file(rel: &str) -> String {
    // examples/data lives at the workspace root, two levels up from the
    // cli crate.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(rel);
    p.to_string_lossy().into_owned()
}

fn mmt(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_mmt"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn data_args() -> Vec<String> {
    vec![
        "-t".into(),
        repo_file("examples/data/F.qvtr"),
        "-M".into(),
        repo_file("examples/data/CF.mm"),
        repo_file("examples/data/FM.mm"),
        "-m".into(),
        repo_file("examples/data/cf1.model"),
        repo_file("examples/data/cf2.model"),
        repo_file("examples/data/fm.model"),
    ]
}

#[test]
fn check_reports_violation_with_exit_code_one() {
    let mut args = vec!["check".to_string()];
    args.extend(data_args());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("VIOLATED"));
    assert!(stdout.contains("brakes"));
}

#[test]
fn enforce_repairs_and_writes_models() {
    let outdir = std::env::temp_dir().join(format!("mmt-cli-test-{}", std::process::id()));
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1,cf2".into());
    args.push("--out".into());
    args.push(outdir.to_string_lossy().into_owned());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("repaired at distance 4"), "{stdout}");
    let written = std::fs::read_to_string(outdir.join("cf2.model")).unwrap();
    assert!(written.contains("brakes"));
    std::fs::remove_dir_all(&outdir).ok();
}

#[test]
fn enforce_with_impossible_shape_exits_one() {
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1".into());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("no repair"));
}

#[test]
fn deps_prints_dependency_sets() {
    let args = vec![
        "deps".to_string(),
        "-t".into(),
        repo_file("examples/data/F.qvtr"),
        "-M".into(),
        repo_file("examples/data/CF.mm"),
        repo_file("examples/data/FM.mm"),
    ];
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("relation MF (top)"));
    assert!(stdout.contains("extended"));
}

#[test]
fn unknown_flags_and_commands_error() {
    let (_, stderr, code) = mmt(&["check", "--bogus"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown flag"));
    let (_, stderr, code) = mmt(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));
}

#[test]
fn no_args_prints_usage() {
    let (stdout, _, code) = mmt(&[]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("USAGE"));
}

#[test]
fn weights_validation() {
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1,cf2".into());
    args.push("--weights".into());
    args.push("1,2".into()); // needs 3
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (_, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--weights needs 3"));
}
