//! End-to-end tests driving the `mmt` binary.

use std::path::PathBuf;
use std::process::Command;

fn repo_file(rel: &str) -> String {
    // examples/data lives at the workspace root, two levels up from the
    // cli crate.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(rel);
    p.to_string_lossy().into_owned()
}

fn mmt(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_mmt"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn data_args() -> Vec<String> {
    vec![
        "-t".into(),
        repo_file("examples/data/F.qvtr"),
        "-M".into(),
        repo_file("examples/data/CF.mm"),
        repo_file("examples/data/FM.mm"),
        "-m".into(),
        repo_file("examples/data/cf1.model"),
        repo_file("examples/data/cf2.model"),
        repo_file("examples/data/fm.model"),
    ]
}

#[test]
fn check_reports_violation_with_exit_code_one() {
    let mut args = vec!["check".to_string()];
    args.extend(data_args());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("VIOLATED"));
    assert!(stdout.contains("brakes"));
}

#[test]
fn enforce_repairs_and_writes_models() {
    let outdir = std::env::temp_dir().join(format!("mmt-cli-test-{}", std::process::id()));
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1,cf2".into());
    args.push("--out".into());
    args.push(outdir.to_string_lossy().into_owned());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("repaired at distance 4"), "{stdout}");
    let written = std::fs::read_to_string(outdir.join("cf2.model")).unwrap();
    assert!(written.contains("brakes"));
    std::fs::remove_dir_all(&outdir).ok();
}

#[test]
fn enforce_with_impossible_shape_exits_one() {
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1".into());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("no repair"));
}

/// `mmt repair --batch <dir> --jobs N`: every subdirectory is one
/// request; results are per-request and written under `--out/<request>/`.
#[test]
fn repair_batch_fans_requests_across_workers() {
    let base = std::env::temp_dir().join(format!("mmt-cli-batch-{}", std::process::id()));
    let batch = base.join("requests");
    let outdir = base.join("out");
    for req in ["r1", "r2", "r3"] {
        let dir = batch.join(req);
        std::fs::create_dir_all(&dir).unwrap();
        for model in ["cf1.model", "cf2.model", "fm.model"] {
            std::fs::copy(
                repo_file(&format!("examples/data/{model}")),
                dir.join(model),
            )
            .unwrap();
        }
    }
    let args = vec![
        "repair".to_string(),
        "-t".into(),
        repo_file("examples/data/F.qvtr"),
        "-M".into(),
        repo_file("examples/data/CF.mm"),
        repo_file("examples/data/FM.mm"),
        "--batch".into(),
        batch.to_string_lossy().into_owned(),
        "--targets".into(),
        "cf1,cf2".into(),
        "--jobs".into(),
        "2".into(),
        "--out".into(),
        outdir.to_string_lossy().into_owned(),
    ];
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("repairing 3 requests with 2 worker(s)"),
        "{stdout}"
    );
    for req in ["r1", "r2", "r3"] {
        assert!(
            stdout.contains(&format!("{req}: repaired at distance 4")),
            "{stdout}"
        );
        let written = std::fs::read_to_string(outdir.join(req).join("cf2.model")).unwrap();
        assert!(written.contains("brakes"));
    }
    std::fs::remove_dir_all(&base).ok();
}

/// Without `--batch`, `mmt repair` is a single-request enforce (and
/// accepts `--jobs` for the parallel search frontier).
#[test]
fn repair_without_batch_is_single_request_enforce() {
    let mut args = vec!["repair".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1,cf2".into());
    args.push("--engine".into());
    args.push("search".into());
    args.push("--jobs".into());
    args.push("2".into());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("repaired at distance 4"), "{stdout}");
}

/// An unrepairable request in a batch yields exit code 1 but still
/// reports every request.
#[test]
fn repair_batch_reports_unrepairable_requests() {
    let base = std::env::temp_dir().join(format!("mmt-cli-batch-un-{}", std::process::id()));
    let batch = base.join("requests");
    let dir = batch.join("only");
    std::fs::create_dir_all(&dir).unwrap();
    for model in ["cf1.model", "cf2.model", "fm.model"] {
        std::fs::copy(
            repo_file(&format!("examples/data/{model}")),
            dir.join(model),
        )
        .unwrap();
    }
    let args = vec![
        "repair".to_string(),
        "-t".into(),
        repo_file("examples/data/F.qvtr"),
        "-M".into(),
        repo_file("examples/data/CF.mm"),
        repo_file("examples/data/FM.mm"),
        "--batch".into(),
        batch.to_string_lossy().into_owned(),
        "--targets".into(),
        "cf1".into(),
    ];
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("only: no repair"), "{stdout}");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn deps_prints_dependency_sets() {
    let args = [
        "deps".to_string(),
        "-t".into(),
        repo_file("examples/data/F.qvtr"),
        "-M".into(),
        repo_file("examples/data/CF.mm"),
        repo_file("examples/data/FM.mm"),
    ];
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("relation MF (top)"));
    assert!(stdout.contains("extended"));
}

#[test]
fn unknown_flags_and_commands_error() {
    let (_, stderr, code) = mmt(&["check", "--bogus"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown flag"));
    let (_, stderr, code) = mmt(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));
}

#[test]
fn no_args_prints_usage() {
    let (stdout, _, code) = mmt(&[]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("USAGE"));
}

#[test]
fn weights_validation() {
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1,cf2".into());
    args.push("--weights".into());
    args.push("1,2".into()); // needs 3
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (_, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--weights needs 3"));
}

// --- Scenario corpus fixtures (ISSUE 7): every corpus scenario is
// CLI-drivable from checked-in examples/data files. ---

fn fixture_args(spec: &str, mms: &[&str], models: &[&str]) -> Vec<String> {
    let mut args = vec![
        "-t".to_string(),
        repo_file(&format!("examples/data/{spec}")),
    ];
    args.push("-M".into());
    args.extend(mms.iter().map(|m| repo_file(&format!("examples/data/{m}"))));
    args.push("-m".into());
    args.extend(
        models
            .iter()
            .map(|m| repo_file(&format!("examples/data/{m}"))),
    );
    args
}

fn company_args() -> Vec<String> {
    fixture_args(
        "W2C.qvtr",
        &["World.mm", "Company.mm"],
        &["world.model", "company.model"],
    )
}

fn class2rdbms_args() -> Vec<String> {
    fixture_args(
        "C2T.qvtr",
        &["UML.mm", "RDB.mm"],
        &["uml.model", "rdb.model"],
    )
}

fn run(mut args: Vec<String>, extra: &[&str]) -> (String, String, Option<i32>) {
    args.extend(extra.iter().map(|s| s.to_string()));
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    mmt(&argrefs)
}

/// The Company HR fixture tuple: bob exists in the world but not in the
/// company, so both relations flag him; the repair materializes him in
/// one direction and retracts him in the other.
#[test]
fn company_fixtures_check_and_enforce_both_directions() {
    let mut args = vec!["check".to_string()];
    args.extend(company_args());
    let (stdout, _, code) = run(args, &[]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(
        stdout.contains("PersonToEmployee M0 → M1: VIOLATED"),
        "{stdout}"
    );
    assert!(stdout.contains("SalaryCap M0 → M1: VIOLATED"), "{stdout}");
    assert!(stdout.contains(r#"[n = "bob""#), "{stdout}");

    let mut args = vec!["enforce".to_string()];
    args.extend(company_args());
    let (stdout, _, code) = run(args, &["--targets", "company"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("repaired at distance 2"), "{stdout}");
    assert!(stdout.contains(r#"@1.attr#0 = "bob""#), "{stdout}");

    let mut args = vec!["enforce".to_string()];
    args.extend(company_args());
    let (stdout, _, code) = run(args, &["--targets", "world"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("repaired at distance 1"), "{stdout}");
    assert!(stdout.contains("- @1 : class#0"), "{stdout}");
}

/// The class↔RDBMS fixture: the `age` attribute has no column. The
/// forward repair grows a linked Column (distance 3: object + name +
/// link); the backward repair just unhooks the attribute (distance 1).
/// Both engines agree through the CLI.
#[test]
fn class2rdbms_fixtures_round_trip() {
    let mut args = vec!["check".to_string()];
    args.extend(class2rdbms_args());
    let (stdout, _, code) = run(args, &[]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("AttrToCol M0 → M1: VIOLATED"), "{stdout}");
    assert!(stdout.contains(r#"an = "age""#), "{stdout}");
    assert!(stdout.contains("ClassToTable M0 → M1: holds"), "{stdout}");

    for engine in ["search", "sat"] {
        let mut args = vec!["enforce".to_string()];
        args.extend(class2rdbms_args());
        let (stdout, _, code) = run(args, &["--targets", "rdb", "--engine", engine]);
        assert_eq!(code, Some(0), "{engine}: {stdout}");
        assert!(
            stdout.contains("repaired at distance 3"),
            "{engine}: {stdout}"
        );
        assert!(stdout.contains(r#"= "age""#), "{engine}: {stdout}");

        let mut args = vec!["enforce".to_string()];
        args.extend(class2rdbms_args());
        let (stdout, _, code) = run(args, &["--targets", "uml", "--engine", engine]);
        // Two cost-1 repairs exist (drop the link, drop the whole
        // attribute); the tie-break is engine-internal, so only the
        // distance is pinned.
        assert_eq!(code, Some(0), "{engine}: {stdout}");
        assert!(
            stdout.contains("repaired at distance 1"),
            "{engine}: {stdout}"
        );
        assert!(stdout.contains("--- uml ---"), "{engine}: {stdout}");
    }
}

/// The snippet-2 HR history as one warm `mmt sync` session: repair the
/// missing hire, push the salary beyond the cap, watch the least-change
/// clamp bring it back.
#[test]
fn sync_company_salary_clamp_loop() {
    let script = write_script(
        "company",
        "status\nrepair company\nedit company set @1.salary = 12\nstatus\nrepair company\nstatus\n",
    );
    let mut args = vec!["sync".to_string(), script.to_string_lossy().into_owned()];
    args.extend(company_args());
    let (stdout, _, code) = run(args, &[]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        stdout.contains("status: INCONSISTENT (2 violations)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("repair company: repaired at distance 2"),
        "{stdout}"
    );
    assert!(
        stdout.contains("status: INCONSISTENT (1 violations)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("repair company: repaired at distance 1"),
        "{stdout}"
    );
    assert!(stdout.contains("@1.attr#1 = 3 (was 12)"), "{stdout}");
    assert!(stdout.contains("final: consistent"), "{stdout}");
    std::fs::remove_file(&script).ok();
}

// --- ISSUE 4: `mmt sync`, --version, per-subcommand usage ---

fn write_script(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("mmt-cli-{name}-{}.mmts", std::process::id()));
    std::fs::write(&path, body).unwrap();
    path
}

/// One warm session drives edit/status/repair/rollback from a script;
/// the repair distance matches the stateless `mmt enforce` on the same
/// tuple (4, as `enforce_repairs_and_writes_models` asserts).
#[test]
fn sync_script_drives_a_session() {
    let script = write_script(
        "session",
        r#"# fixture tuple is inconsistent: brakes is mandatory, selected nowhere
status
repair cf1,cf2
status
edit cf1 set @0.name = "motor"   # drift again
status
rollback 1
status
"#,
    );
    let outdir = std::env::temp_dir().join(format!("mmt-cli-sync-{}", std::process::id()));
    let mut args = vec!["sync".to_string(), script.to_string_lossy().into_owned()];
    args.extend(data_args());
    args.push("--out".into());
    args.push(outdir.to_string_lossy().into_owned());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("status: INCONSISTENT (2 violations)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("repair cf1,cf2: repaired at distance 4"),
        "{stdout}"
    );
    assert!(stdout.contains("rollback: undid 1 entry"), "{stdout}");
    assert!(stdout.contains("final: consistent"), "{stdout}");
    // The final tuple (repaired, drift rolled back) was written out.
    let written = std::fs::read_to_string(outdir.join("cf1.model")).unwrap();
    assert!(written.contains("brakes"), "{written}");
    assert!(!written.contains("motor"), "{written}");
    std::fs::remove_dir_all(&outdir).ok();
    std::fs::remove_file(&script).ok();
}

/// `--json` turns `status` into a machine-readable dump.
#[test]
fn sync_json_status_dump() {
    let script = write_script("json", "status\n");
    let mut args = vec![
        "sync".to_string(),
        script.to_string_lossy().into_owned(),
        "--json".into(),
    ];
    args.extend(data_args());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(1), "stdout: {stdout}\nstderr: {stderr}");
    let line = stdout.lines().next().unwrap();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"consistent\":false"), "{line}");
    assert!(line.contains("\"violations\":2"), "{line}");
    assert!(line.contains("\"fingerprint\":"), "{line}");
    assert!(line.contains("\\\"brakes\\\""), "{line}");
    std::fs::remove_file(&script).ok();
}

/// A rollback after `repair` undoes the auto-applied repair: the final
/// state is inconsistent again and the exit code says so.
#[test]
fn sync_rollback_of_repair_exits_one() {
    let script = write_script("rollrepair", "repair cf1,cf2\nrollback all\n");
    let mut args = vec!["sync".to_string(), script.to_string_lossy().into_owned()];
    args.extend(data_args());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("final: INCONSISTENT"), "{stdout}");
    std::fs::remove_file(&script).ok();
}

/// A script error reports file and line and exits 2.
#[test]
fn sync_bad_script_line_reports_position() {
    let script = write_script("bad", "status\nfrobnicate everything\n");
    let mut args = vec!["sync".to_string(), script.to_string_lossy().into_owned()];
    args.extend(data_args());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (_, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(
        stderr.contains(":2: unknown sync command `frobnicate`"),
        "{stderr}"
    );
    std::fs::remove_file(&script).ok();
}

#[test]
fn version_flag_prints_version() {
    for flag in ["--version", "-V", "version"] {
        let (stdout, _, code) = mmt(&[flag]);
        assert_eq!(code, Some(0), "{flag}");
        assert_eq!(
            stdout.trim(),
            format!("mmt {}", env!("CARGO_PKG_VERSION")),
            "{flag}"
        );
    }
}

#[test]
fn unknown_subcommand_exits_nonzero_with_usage() {
    let (_, stderr, code) = mmt(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command `frobnicate`"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

/// Missing required arguments exit non-zero and print the *owning
/// subcommand's* usage.
#[test]
fn missing_arguments_print_subcommand_usage() {
    // No -t at all.
    let (_, stderr, code) = mmt(&["enforce"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("missing -t <spec.qvtr>"), "{stderr}");
    assert!(stderr.contains("mmt enforce"), "{stderr}");
    // Tuple given but no --targets.
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (_, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("missing --targets <names>"), "{stderr}");
    assert!(stderr.contains("mmt enforce"), "{stderr}");
    // sync without a script.
    let (_, stderr, code) = mmt(&["sync", "-t", "x.qvtr"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("missing <script>"), "{stderr}");
    assert!(stderr.contains("mmt sync"), "{stderr}");
    // deps without -t.
    let (_, stderr, code) = mmt(&["deps"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("missing -t <spec.qvtr>"), "{stderr}");
}

#[test]
fn per_subcommand_help_text() {
    for (cmd, needle) in [
        ("check", "mmt check"),
        ("enforce", "mmt enforce"),
        ("repair", "mmt repair"),
        ("sync", "mmt sync"),
        ("deps", "mmt deps"),
    ] {
        let (stdout, _, code) = mmt(&["help", cmd]);
        assert_eq!(code, Some(0), "help {cmd}");
        assert!(stdout.contains(needle), "help {cmd}: {stdout}");
        assert!(stdout.contains("USAGE"), "help {cmd}: {stdout}");
        // `--help` on the subcommand prints the same text.
        let (stdout2, _, code2) = mmt(&[cmd, "--help"]);
        assert_eq!(code2, Some(0), "{cmd} --help");
        assert_eq!(stdout, stdout2, "{cmd} --help");
    }
}

/// Comment stripping is quote-aware: a `#` inside a quoted value is
/// data, not a comment; `=` inside the value survives too.
#[test]
fn sync_value_may_contain_hash_and_equals() {
    let script = write_script(
        "hash",
        "edit fm set @0.name = \"a#b=c\"  # real comment\nrollback all\n",
    );
    let mut args = vec!["sync".to_string(), script.to_string_lossy().into_owned()];
    args.extend(data_args());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt(&argrefs);
    // The edit applied (then rolled back): no parse error, exit 1 only
    // because the fixture tuple is inconsistent to begin with.
    assert_eq!(code, Some(1), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stderr.is_empty(), "{stderr}");
    assert!(stdout.contains("rollback: undid 1 entry"), "{stdout}");
}

/// Non-sync commands reject stray positional arguments instead of
/// silently ignoring them.
#[test]
fn stray_positional_argument_is_rejected() {
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1,cf2".into());
    args.push("stray.model".into());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (_, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(
        stderr.contains("unexpected argument `stray.model`"),
        "{stderr}"
    );
}

// --- ISSUE 5: `mmt serve`, `mmt sync -`, and the serve↔sync differential ---

fn mmt_with_stdin(args: &[&str], input: &str) -> (String, String, Option<i32>) {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_mmt"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .unwrap();
    drop(child.stdin.take()); // EOF ends the serve loop / stdin script
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

/// Extracts the `result` payload of the serve response carrying `id`.
fn serve_result(stdout: &str, id: u64) -> String {
    let prefix = format!("{{\"id\":{id},\"ok\":true,\"result\":");
    for line in stdout.lines() {
        if let Some(body) = line.strip_prefix(&prefix) {
            return body
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated response: {line}"))
                .to_string();
        }
    }
    panic!("no ok response with id {id} in:\n{stdout}");
}

/// The ISSUE 5 acceptance differential: one session driven through the
/// `mmt serve` line protocol is **byte-identical** — status JSON at
/// every checkpoint, journal dump, and the final written model tuple —
/// to the same command sequence run through `mmt sync`.
#[test]
fn serve_session_is_byte_identical_to_sync() {
    let base = std::env::temp_dir().join(format!("mmt-cli-serve-diff-{}", std::process::id()));
    let sync_out = base.join("sync");
    let serve_out = base.join("serve");

    // The shared command sequence: drift, repair, drift again, rollback.
    let script = write_script(
        "serve-diff",
        r#"status
repair cf1,cf2
status
edit cf1 set @0.name = "motor"
status
rollback 1
status
journal
"#,
    );
    let mut sync_args = vec![
        "sync".to_string(),
        script.to_string_lossy().into_owned(),
        "--json".into(),
    ];
    sync_args.extend(data_args());
    sync_args.push("--out".into());
    sync_args.push(sync_out.to_string_lossy().into_owned());
    let argrefs: Vec<&str> = sync_args.iter().map(String::as_str).collect();
    let (sync_stdout, sync_stderr, sync_code) = mmt(&argrefs);
    assert_eq!(sync_code, Some(0), "sync: {sync_stdout}\n{sync_stderr}");
    // The 5 JSON lines: four status dumps and one journal dump.
    let sync_json: Vec<&str> = sync_stdout.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(sync_json.len(), 5, "{sync_stdout}");

    // The same sequence over the serve protocol, one session "s".
    let requests = r#"{"id":1,"cmd":"open","session":"s"}
{"id":2,"cmd":"status","session":"s"}
{"id":3,"cmd":"repair","session":"s","targets":"cf1,cf2"}
{"id":4,"cmd":"status","session":"s"}
{"id":5,"cmd":"edit","session":"s","edit":"cf1 set @0.name = \"motor\""}
{"id":6,"cmd":"status","session":"s"}
{"id":7,"cmd":"rollback","session":"s","n":1}
{"id":8,"cmd":"status","session":"s"}
{"id":9,"cmd":"journal","session":"s"}
{"id":10,"cmd":"close","session":"s"}
"#;
    let mut serve_args = vec!["serve".to_string()];
    serve_args.extend(data_args());
    serve_args.push("--out".into());
    serve_args.push(serve_out.to_string_lossy().into_owned());
    let argrefs: Vec<&str> = serve_args.iter().map(String::as_str).collect();
    let (serve_stdout, serve_stderr, serve_code) = mmt_with_stdin(&argrefs, requests);
    assert_eq!(serve_code, Some(0), "serve: {serve_stdout}\n{serve_stderr}");

    // Status JSON byte-identity at every checkpoint, and the journal.
    for (sync_line, id) in sync_json.iter().zip([2u64, 4, 6, 8, 9]) {
        assert_eq!(
            serve_result(&serve_stdout, id),
            **sync_line,
            "serve response {id} diverged from the sync --json line"
        );
    }
    // The repair reported the same least-change distance.
    assert!(
        serve_result(&serve_stdout, 3).contains("\"repaired\":true,\"cost\":4"),
        "{serve_stdout}"
    );
    assert!(serve_result(&serve_stdout, 7).contains("\"undone\":1"));
    // And the written tuples agree byte for byte.
    for param in ["cf1", "cf2", "fm"] {
        let from_sync = std::fs::read_to_string(sync_out.join(format!("{param}.model"))).unwrap();
        let from_serve =
            std::fs::read_to_string(serve_out.join("s").join(format!("{param}.model"))).unwrap();
        assert_eq!(from_sync, from_serve, "{param}.model diverged");
    }
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_file(&script).ok();
}

/// Multiple named sessions stay independent inside one serve process,
/// and protocol errors answer `ok:false` without killing the loop.
#[test]
fn serve_runs_concurrent_sessions_and_survives_errors() {
    let requests = r#"{"id":1,"cmd":"open","session":"a"}
{"id":2,"cmd":"open","session":"b"}
{"id":3,"cmd":"open","session":"a"}
{"id":30,"cmd":"open","session":"../evil"}
{"id":31,"cmd":"open","session":"/abs"}
{"id":32,"cmd":"open","session":""}
not json at all
{"id":4,"cmd":"frobnicate","session":"a"}
{"id":5,"cmd":"status","session":"ghost"}
{"id":6,"cmd":"edit","session":"a","edit":"cf1 set @0.name = \"motor\""}
{"id":7,"cmd":"status","session":"b"}
{"id":8,"cmd":"repair","session":"b","targets":"cf1,cf2"}
{"id":9,"cmd":"status","session":"b"}
{"id":10,"cmd":"status","session":"a"}
{"id":11,"cmd":"close","session":"a"}
{"id":12,"cmd":"close","session":"b"}
"#;
    let mut args = vec!["serve".to_string()];
    args.extend(data_args());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt_with_stdin(&argrefs, requests);
    assert_eq!(code, Some(0), "{stdout}\n{stderr}");
    // Errors are typed responses, not crashes.
    assert!(
        stdout.contains("{\"id\":3,\"ok\":false,\"error\":\"a session is already open as `a`\""),
        "{stdout}"
    );
    // Session names become --out path components: traversal attempts,
    // absolute paths, and empty names are rejected at open.
    for id in [30, 31, 32] {
        assert!(
            stdout.contains(&format!(
                "{{\"id\":{id},\"ok\":false,\"error\":\"invalid session name"
            )),
            "id {id}: {stdout}"
        );
    }
    assert!(
        stdout.contains("{\"id\":null,\"ok\":false,\"error\":\"bad request:"),
        "{stdout}"
    );
    assert!(
        stdout.contains("{\"id\":4,\"ok\":false,\"error\":\"unknown cmd `frobnicate`\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("{\"id\":5,\"ok\":false,\"error\":\"no session open as `ghost`\""),
        "{stdout}"
    );
    // Session b repaired to consistency; session a's independent drift
    // left it inconsistent (its own edit, b's repair not shared).
    assert!(serve_result(&stdout, 9).contains("\"consistent\":true"));
    assert!(serve_result(&stdout, 10).contains("\"consistent\":false"));
    assert!(serve_result(&stdout, 8).contains("\"repaired\":true,\"cost\":4"));
    // Both closes succeeded.
    assert_eq!(serve_result(&stdout, 11), "{\"closed\":\"a\"}");
    assert_eq!(serve_result(&stdout, 12), "{\"closed\":\"b\"}");
}

/// `mmt sync -` reads the script from stdin and behaves exactly like
/// the same script from a file.
#[test]
fn sync_reads_script_from_stdin() {
    let body = "status\nrepair cf1,cf2\nstatus\njournal\n";
    let script = write_script("stdin-ref", body);
    let mut file_args = vec![
        "sync".to_string(),
        script.to_string_lossy().into_owned(),
        "--json".into(),
    ];
    file_args.extend(data_args());
    let argrefs: Vec<&str> = file_args.iter().map(String::as_str).collect();
    let (from_file, _, file_code) = mmt(&argrefs);

    let mut stdin_args = vec!["sync".to_string(), "-".into(), "--json".into()];
    stdin_args.extend(data_args());
    let argrefs: Vec<&str> = stdin_args.iter().map(String::as_str).collect();
    let (from_stdin, stderr, stdin_code) = mmt_with_stdin(&argrefs, body);
    assert_eq!(stdin_code, Some(0), "{from_stdin}\n{stderr}");
    assert_eq!(stdin_code, file_code);
    assert_eq!(from_stdin, from_file, "stdin and file scripts diverged");

    // Script errors still carry a position, now under the <stdin> name.
    let (_, stderr, code) = mmt_with_stdin(&argrefs, "status\nfrobnicate\n");
    assert_eq!(code, Some(2), "{stderr}");
    assert!(
        stderr.contains("<stdin>:2: unknown sync command"),
        "{stderr}"
    );
}

// --- ISSUE 6: `--store` durability across invocations ---

/// `mmt sync --store` persists the session; a second invocation picks
/// it up where the first left off (the `-m` tuple is ignored on
/// resume) and sees the identical status JSON.
#[test]
fn sync_store_resumes_across_invocations() {
    let store = std::env::temp_dir().join(format!("mmt-cli-sync-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // First life: drift the session, dump status, crash (exit).
    let script1 = write_script("store-life1", "edit cf1 set @0.name = \"motor\"\nstatus\n");
    let mut args1 = vec![
        "sync".to_string(),
        script1.to_string_lossy().into_owned(),
        "--json".into(),
    ];
    args1.extend(data_args());
    args1.push("--store".into());
    args1.push(store.to_string_lossy().into_owned());
    let argrefs: Vec<&str> = args1.iter().map(String::as_str).collect();
    let (out1, err1, code1) = mmt(&argrefs);
    // Exit 1: the drifted tuple is (deliberately) left inconsistent.
    assert_eq!(code1, Some(1), "{out1}\n{err1}");
    let last_status = out1
        .lines()
        .rfind(|l| l.starts_with('{'))
        .unwrap()
        .to_string();

    // Second life: `status` alone must reproduce the first life's
    // final status byte for byte, then keep editing and roll back —
    // proof the journal (not just the tuple) survived.
    let script2 = write_script(
        "store-life2",
        "status\nedit fm add Feature @2\nrollback 2\nstatus\n",
    );
    let mut args2 = vec![
        "sync".to_string(),
        script2.to_string_lossy().into_owned(),
        "--json".into(),
    ];
    args2.extend(data_args());
    args2.push("--store".into());
    args2.push(store.to_string_lossy().into_owned());
    let argrefs: Vec<&str> = args2.iter().map(String::as_str).collect();
    let (out2, err2, code2) = mmt(&argrefs);
    // Exit 1 again: the rollback lands on the (inconsistent) seed.
    assert_eq!(code2, Some(1), "{out2}\n{err2}");
    let mut lines = out2.lines().filter(|l| l.starts_with('{'));
    assert_eq!(lines.next().unwrap(), last_status, "resume diverged");
    // rollback 2 unwound both the new edit and the first life's edit.
    let final_status = lines.next().unwrap();
    assert!(final_status.contains("\"journal\":0"), "{final_status}");

    let _ = std::fs::remove_dir_all(&store);
}

/// The crash half of the durability story: `mmt serve --store` is
/// SIGKILLed mid-session after an edit was acknowledged; a second
/// invocation recovers the session and answers `status` with the
/// identical payload.
#[test]
fn serve_store_recovers_after_kill() {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::process::Stdio;

    let store = std::env::temp_dir().join(format!("mmt-cli-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let mut args = vec!["serve".to_string()];
    args.extend(data_args());
    args.push("--store".into());
    args.push(store.to_string_lossy().into_owned());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();

    // First life: open + edit + status, then SIGKILL — no close, no
    // clean shutdown, no EOF.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_mmt"))
        .args(&argrefs)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary runs");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    stdin
        .write_all(
            b"{\"id\":1,\"cmd\":\"open\",\"session\":\"s\"}\n\
              {\"id\":2,\"cmd\":\"edit\",\"session\":\"s\",\"edit\":\"cf1 set @0.name = \\\"motor\\\"\"}\n\
              {\"id\":3,\"cmd\":\"status\",\"session\":\"s\"}\n",
        )
        .unwrap();
    stdin.flush().unwrap();
    let mut first_life = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        stdout.read_line(&mut line).unwrap();
        first_life.push(line.trim_end().to_string());
    }
    // The edit was acknowledged — and therefore committed — before
    // the kill.
    child.kill().unwrap();
    child.wait().unwrap();

    // Second life: no open — recovery must have done it.
    let (out2, err2, code2) = mmt_with_stdin(
        &argrefs,
        "{\"id\":3,\"cmd\":\"status\",\"session\":\"s\"}\n{\"id\":4,\"cmd\":\"journal\",\"session\":\"s\"}\n",
    );
    assert_eq!(code2, Some(0), "{out2}\n{err2}");
    assert_eq!(
        serve_result(&out2, 3),
        serve_result(&first_life.join("\n"), 3),
        "recovered status diverged from the killed session's"
    );
    // The journal carries the acknowledged edit.
    assert!(serve_result(&out2, 4).contains("motor"), "{out2}");

    let _ = std::fs::remove_dir_all(&store);
}

/// Durable session names must be filesystem- and manifest-safe:
/// whitespace is rejected up front (only when a store is attached).
#[test]
fn serve_store_rejects_unsafe_names() {
    let store = std::env::temp_dir().join(format!("mmt-cli-serve-names-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let mut args = vec!["serve".to_string()];
    args.extend(data_args());
    args.push("--store".into());
    args.push(store.to_string_lossy().into_owned());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt_with_stdin(
        &argrefs,
        "{\"id\":1,\"cmd\":\"open\",\"session\":\"a b\"}\n{\"id\":2,\"cmd\":\"open\",\"session\":\"ok\"}\n",
    );
    assert_eq!(code, Some(0), "{stdout}\n{stderr}");
    assert!(
        stdout.contains("{\"id\":1,\"ok\":false,\"error\":\"invalid session name"),
        "{stdout}"
    );
    assert!(stdout.contains("{\"id\":2,\"ok\":true"), "{stdout}");
    let _ = std::fs::remove_dir_all(&store);
}

// --- ISSUE 8: `mmt lint` and the serve `lint` verb ---

/// Writes a throwaway spec/metamodel fixture and returns its path.
fn write_fixture(name: &str, ext: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("mmt-cli-{name}-{}.{ext}", std::process::id()));
    std::fs::write(&path, body).unwrap();
    path
}

/// Linting the shipped car/feature spec needs no models, reports the
/// repair-conflict and coupling findings, and exits 0 (warnings only).
#[test]
fn lint_shipped_spec_warns_and_exits_zero() {
    let args = [
        "lint",
        "-t",
        &repo_file("examples/data/F.qvtr"),
        "-M",
        &repo_file("examples/data/CF.mm"),
        &repo_file("examples/data/FM.mm"),
    ];
    let (stdout, stderr, code) = mmt(&args
        .map(|s| s.to_string())
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>());
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("MMT010"), "{stdout}");
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

/// `--json` emits the machine-readable report; `--allow` suppresses the
/// listed codes down to a clean report.
#[test]
fn lint_json_and_allow() {
    let spec = repo_file("examples/data/F.qvtr");
    let cf = repo_file("examples/data/CF.mm");
    let fm = repo_file("examples/data/FM.mm");
    let (stdout, _, code) = mmt(&["lint", "-t", &spec, "-M", &cf, &fm, "--json"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.starts_with("{\"errors\":0,"), "{stdout}");
    assert!(stdout.contains("\"code\":\"MMT010\""), "{stdout}");
    assert!(stdout.contains("\"severity\":\"warning\""), "{stdout}");

    let (stdout, _, code) = mmt(&[
        "lint",
        "-t",
        &spec,
        "-M",
        &cf,
        &fm,
        "--json",
        "--allow",
        "MMT010,MMT011",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        stdout.starts_with("{\"errors\":0,\"warnings\":0,\"infos\":0"),
        "{stdout}"
    );
}

/// A statically broken spec (unsatisfiable `when`) exits 1 and names
/// the offending relation.
#[test]
fn lint_broken_spec_exits_one() {
    let mmf = write_fixture("lint-mm", "mm", "metamodel M { class A { attr x: Str; } }");
    let spec = write_fixture(
        "lint-bad",
        "qvtr",
        r#"transformation T(l : M, r : M) {
          top relation R {
            n : Str;
            domain l a : A { x = "p" };
            domain r b : A { x = n };
            when { a.x = "q" }
            depend l -> r;
          }
        }"#,
    );
    let (stdout, stderr, code) = mmt(&[
        "lint",
        "-t",
        &spec.to_string_lossy(),
        "-M",
        &mmf.to_string_lossy(),
    ]);
    assert_eq!(code, Some(1), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("error[MMT003]"), "{stdout}");
    assert!(stdout.contains("relation `R`"), "{stdout}");
    std::fs::remove_file(&spec).ok();
    std::fs::remove_file(&mmf).ok();
}

/// Unknown `--allow` codes are usage errors (exit 2), and `mmt help
/// lint` documents the flag.
#[test]
fn lint_rejects_unknown_allow_code_and_has_help() {
    let spec = repo_file("examples/data/F.qvtr");
    let cf = repo_file("examples/data/CF.mm");
    let fm = repo_file("examples/data/FM.mm");
    let (_, stderr, code) = mmt(&["lint", "-t", &spec, "-M", &cf, &fm, "--allow", "MMT999"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown lint code `MMT999`"), "{stderr}");

    let (stdout, _, code) = mmt(&["help", "lint"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("--allow"), "{stdout}");
    assert!(stdout.contains("Exits 0"), "{stdout}");
}

/// The serve protocol answers a session-less `lint` request with the
/// registration-time report, and announces warnings on stderr without
/// polluting the JSON stream on stdout.
#[test]
fn serve_answers_lint_requests() {
    let requests = "{\"id\":1,\"cmd\":\"lint\"}\n{\"id\":2,\"cmd\":\"open\",\"session\":\"s\"}\n{\"id\":3,\"cmd\":\"close\",\"session\":\"s\"}\n";
    let mut args = vec!["serve".to_string()];
    args.extend(data_args());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt_with_stdin(&argrefs, requests);
    assert_eq!(code, Some(0), "{stdout}\n{stderr}");
    let report = serve_result(&stdout, 1);
    assert!(report.starts_with("{\"errors\":0,"), "{report}");
    assert!(report.contains("\"code\":\"MMT010\""), "{report}");
    assert!(
        stderr.contains("warning(s) in the registered spec"),
        "{stderr}"
    );
    // Every stdout line is still a protocol response.
    for line in stdout.lines() {
        assert!(line.starts_with("{\"id\":"), "non-protocol stdout: {line}");
    }
}
