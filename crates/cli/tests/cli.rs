//! End-to-end tests driving the `mmt` binary.

use std::path::PathBuf;
use std::process::Command;

fn repo_file(rel: &str) -> String {
    // examples/data lives at the workspace root, two levels up from the
    // cli crate.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(rel);
    p.to_string_lossy().into_owned()
}

fn mmt(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_mmt"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn data_args() -> Vec<String> {
    vec![
        "-t".into(),
        repo_file("examples/data/F.qvtr"),
        "-M".into(),
        repo_file("examples/data/CF.mm"),
        repo_file("examples/data/FM.mm"),
        "-m".into(),
        repo_file("examples/data/cf1.model"),
        repo_file("examples/data/cf2.model"),
        repo_file("examples/data/fm.model"),
    ]
}

#[test]
fn check_reports_violation_with_exit_code_one() {
    let mut args = vec!["check".to_string()];
    args.extend(data_args());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("VIOLATED"));
    assert!(stdout.contains("brakes"));
}

#[test]
fn enforce_repairs_and_writes_models() {
    let outdir = std::env::temp_dir().join(format!("mmt-cli-test-{}", std::process::id()));
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1,cf2".into());
    args.push("--out".into());
    args.push(outdir.to_string_lossy().into_owned());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("repaired at distance 4"), "{stdout}");
    let written = std::fs::read_to_string(outdir.join("cf2.model")).unwrap();
    assert!(written.contains("brakes"));
    std::fs::remove_dir_all(&outdir).ok();
}

#[test]
fn enforce_with_impossible_shape_exits_one() {
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1".into());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("no repair"));
}

/// `mmt repair --batch <dir> --jobs N`: every subdirectory is one
/// request; results are per-request and written under `--out/<request>/`.
#[test]
fn repair_batch_fans_requests_across_workers() {
    let base = std::env::temp_dir().join(format!("mmt-cli-batch-{}", std::process::id()));
    let batch = base.join("requests");
    let outdir = base.join("out");
    for req in ["r1", "r2", "r3"] {
        let dir = batch.join(req);
        std::fs::create_dir_all(&dir).unwrap();
        for model in ["cf1.model", "cf2.model", "fm.model"] {
            std::fs::copy(
                repo_file(&format!("examples/data/{model}")),
                dir.join(model),
            )
            .unwrap();
        }
    }
    let args = vec![
        "repair".to_string(),
        "-t".into(),
        repo_file("examples/data/F.qvtr"),
        "-M".into(),
        repo_file("examples/data/CF.mm"),
        repo_file("examples/data/FM.mm"),
        "--batch".into(),
        batch.to_string_lossy().into_owned(),
        "--targets".into(),
        "cf1,cf2".into(),
        "--jobs".into(),
        "2".into(),
        "--out".into(),
        outdir.to_string_lossy().into_owned(),
    ];
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("repairing 3 requests with 2 worker(s)"),
        "{stdout}"
    );
    for req in ["r1", "r2", "r3"] {
        assert!(
            stdout.contains(&format!("{req}: repaired at distance 4")),
            "{stdout}"
        );
        let written = std::fs::read_to_string(outdir.join(req).join("cf2.model")).unwrap();
        assert!(written.contains("brakes"));
    }
    std::fs::remove_dir_all(&base).ok();
}

/// Without `--batch`, `mmt repair` is a single-request enforce (and
/// accepts `--jobs` for the parallel search frontier).
#[test]
fn repair_without_batch_is_single_request_enforce() {
    let mut args = vec!["repair".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1,cf2".into());
    args.push("--engine".into());
    args.push("search".into());
    args.push("--jobs".into());
    args.push("2".into());
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("repaired at distance 4"), "{stdout}");
}

/// An unrepairable request in a batch yields exit code 1 but still
/// reports every request.
#[test]
fn repair_batch_reports_unrepairable_requests() {
    let base = std::env::temp_dir().join(format!("mmt-cli-batch-un-{}", std::process::id()));
    let batch = base.join("requests");
    let dir = batch.join("only");
    std::fs::create_dir_all(&dir).unwrap();
    for model in ["cf1.model", "cf2.model", "fm.model"] {
        std::fs::copy(
            repo_file(&format!("examples/data/{model}")),
            dir.join(model),
        )
        .unwrap();
    }
    let args = vec![
        "repair".to_string(),
        "-t".into(),
        repo_file("examples/data/F.qvtr"),
        "-M".into(),
        repo_file("examples/data/CF.mm"),
        repo_file("examples/data/FM.mm"),
        "--batch".into(),
        batch.to_string_lossy().into_owned(),
        "--targets".into(),
        "cf1".into(),
    ];
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("only: no repair"), "{stdout}");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn deps_prints_dependency_sets() {
    let args = vec![
        "deps".to_string(),
        "-t".into(),
        repo_file("examples/data/F.qvtr"),
        "-M".into(),
        repo_file("examples/data/CF.mm"),
        repo_file("examples/data/FM.mm"),
    ];
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stdout, _, code) = mmt(&argrefs);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("relation MF (top)"));
    assert!(stdout.contains("extended"));
}

#[test]
fn unknown_flags_and_commands_error() {
    let (_, stderr, code) = mmt(&["check", "--bogus"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown flag"));
    let (_, stderr, code) = mmt(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));
}

#[test]
fn no_args_prints_usage() {
    let (stdout, _, code) = mmt(&[]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("USAGE"));
}

#[test]
fn weights_validation() {
    let mut args = vec!["enforce".to_string()];
    args.extend(data_args());
    args.push("--targets".into());
    args.push("cf1,cf2".into());
    args.push("--weights".into());
    args.push("1,2".into()); // needs 3
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let (_, stderr, code) = mmt(&argrefs);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--weights needs 3"));
}
